#ifndef LAKE_INDEX_HNSW_H_
#define LAKE_INDEX_HNSW_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "index/vector_ops.h"
#include "util/random.h"
#include "util/status.h"

namespace lake {

/// Distance used by the vector indexes. Cosine normalizes inputs at insert
/// and query time and ranks by (1 - dot).
enum class VectorMetric { kCosine, kL2 };

/// Result of a kNN query: caller id plus similarity score (higher is
/// better: cosine similarity, or negative L2 distance).
struct VectorHit {
  uint64_t id = 0;
  double score = 0;
};

/// Hierarchical Navigable Small World graph (Malkov & Yashunin, TPAMI
/// 2020) — the graph ANN index Starmie uses for column-embedding search
/// and the survey highlights for lake-scale vector indexing.
///
/// Implements the full construction of the paper: exponentially-distributed
/// node levels, greedy descent through upper layers, beam search
/// (SEARCH-LAYER) with efConstruction, and the diversity heuristic
/// (Algorithm 4) for neighbor selection with bidirectional link repair.
class HnswIndex {
 public:
  struct Options {
    size_t dim = 64;
    VectorMetric metric = VectorMetric::kCosine;
    size_t m = 16;                 // max links per node on layers > 0
    size_t ef_construction = 200;  // beam width during construction
    uint64_t seed = 42;            // level sampling seed
  };

  explicit HnswIndex(Options options);

  /// Inserts a vector under a caller id. Dimension must match (checked).
  Status Insert(uint64_t id, Vector vec);

  /// Approximate k nearest neighbors; `ef_search` is the query beam width
  /// (clamped up to k). Results sorted by descending score.
  Result<std::vector<VectorHit>> Search(const Vector& query, size_t k,
                                        size_t ef_search = 64) const;

  size_t size() const { return nodes_.size(); }
  const Options& options() const { return options_; }
  int max_level() const { return max_level_; }

  /// Total number of directed links (memory proxy for benchmarks).
  size_t TotalLinks() const;

  /// Persists the graph (options, vectors, links). Loaded indexes answer
  /// queries identically; further inserts are allowed but draw levels from
  /// a reseeded generator, so an index saved and extended will differ from
  /// one built in a single run.
  Status Save(std::ostream* out) const;

  /// Restores an index persisted with Save, replacing this instance.
  Status Load(std::istream* in);

  /// Persists the graph to `path` inside a checksummed snapshot envelope
  /// (sections "meta" = kind tag, "index" = Save payload), written
  /// atomically. A reader detects any single corrupted byte instead of
  /// deserializing garbage.
  Status SaveToFile(const std::string& path) const;

  /// Restores an index written by SaveToFile; CRC-verifies both sections
  /// before touching this instance, so a failed load leaves it unchanged.
  Status LoadFromFile(const std::string& path);

 private:
  struct Node {
    uint64_t id;
    Vector vec;
    // links[l] = neighbor node indices on layer l (0..level).
    std::vector<std::vector<uint32_t>> links;
  };

  /// Smaller is closer (1-dot for cosine on normalized vectors, squared L2).
  double Distance(const Vector& a, const Vector& b) const;

  /// Beam search on one layer from `entry`; returns up to `ef` closest
  /// (distance, node) pairs, ascending by distance.
  std::vector<std::pair<double, uint32_t>> SearchLayer(
      const Vector& query, uint32_t entry, size_t ef, int layer) const;

  /// Algorithm-4 neighbor selection: greedily keeps candidates closer to
  /// the base point than to any already-selected neighbor.
  std::vector<uint32_t> SelectNeighbors(
      std::vector<std::pair<double, uint32_t>> candidates,
      size_t m) const;

  size_t MaxLinks(int layer) const { return layer == 0 ? 2 * options_.m : options_.m; }

  Options options_;
  double level_lambda_;  // 1 / ln(M)
  mutable Rng rng_;
  std::vector<Node> nodes_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;
};

}  // namespace lake

#endif  // LAKE_INDEX_HNSW_H_
