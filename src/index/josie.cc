#include "index/josie.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "store/snapshot.h"
#include "text/normalizer.h"
#include "util/serialize.h"
#include "util/top_k.h"

namespace lake {

Status JosieIndex::AddSet(uint64_t external_id,
                          const std::vector<std::string>& values) {
  if (built_) return Status::FailedPrecondition("index already built");
  std::vector<uint32_t> tokens;
  tokens.reserve(values.size());
  for (const std::string& v : values) {
    const std::string norm = NormalizeValue(v);
    if (norm.empty()) continue;
    tokens.push_back(vocab_.GetOrAdd(norm));
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  for (uint32_t t : tokens) vocab_.IncrementFrequency(t);
  external_ids_.push_back(external_id);
  sets_.push_back(std::move(tokens));
  return Status::OK();
}

Status JosieIndex::Build() {
  if (built_) return Status::FailedPrecondition("index already built");
  built_ = true;

  // Global rarest-first order: rank 0 is the least frequent token.
  const std::vector<uint32_t> by_freq = vocab_.IdsByAscendingFrequency();
  token_to_rank_.assign(vocab_.size(), 0);
  for (uint32_t rank = 0; rank < by_freq.size(); ++rank) {
    token_to_rank_[by_freq[rank]] = rank;
  }

  postings_.assign(vocab_.size(), {});
  for (uint32_t s = 0; s < sets_.size(); ++s) {
    for (uint32_t& t : sets_[s]) t = token_to_rank_[t];
    std::sort(sets_[s].begin(), sets_[s].end());
    for (uint32_t pos = 0; pos < sets_[s].size(); ++pos) {
      postings_[sets_[s][pos]].push_back(Posting{s, pos});
    }
  }
  return Status::OK();
}

std::vector<uint32_t> JosieIndex::QueryRanks(
    const std::vector<std::string>& query_values) const {
  std::vector<uint32_t> ranks;
  ranks.reserve(query_values.size());
  for (const std::string& v : query_values) {
    const std::string norm = NormalizeValue(v);
    if (norm.empty()) continue;
    const int64_t id = vocab_.Find(norm);
    if (id < 0) continue;  // token absent from the lake: contributes nothing
    ranks.push_back(token_to_rank_[static_cast<uint32_t>(id)]);
  }
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  return ranks;
}

Result<std::vector<JosieIndex::Hit>> JosieIndex::TopK(
    const std::vector<std::string>& query_values, size_t k, QueryStats* stats,
    const CancelToken* cancel) const {
  if (!built_) return Status::FailedPrecondition("call Build() first");
  if (k == 0) return std::vector<Hit>{};
  QueryStats local;

  const std::vector<uint32_t> q = QueryRanks(query_values);
  // partial[s]: exact overlap among query tokens read so far.
  // last_pos[s]: the set position of the last matched token (for the
  // position filter).
  std::unordered_map<uint32_t, uint32_t> partial;
  std::unordered_map<uint32_t, uint32_t> last_pos;

  ::lake::TopK<uint32_t> heap(k);  // holds set indices scored by exact overlap

  // Read lists rare-first, accumulating exact partial counts. The k-th
  // largest partial count is a lower bound on the k-th best final overlap;
  // once the number of unread lists (the max overlap of any *unseen* set)
  // cannot exceed it, no new candidate can enter the top-k and reading
  // stops (prefix filter). Seen candidates are finished by verification.
  std::vector<uint32_t> scratch;
  size_t read = 0;
  for (; read < q.size(); ++read) {
    if (cancel != nullptr && ShouldCheck(read, 16)) {
      LAKE_RETURN_IF_ERROR(cancel->Check());
    }
    const size_t unseen_max = q.size() - read;
    if (partial.size() >= k) {
      scratch.clear();
      scratch.reserve(partial.size());
      for (const auto& [s, count] : partial) scratch.push_back(count);
      std::nth_element(scratch.begin(), scratch.begin() + (k - 1),
                       scratch.end(), std::greater<uint32_t>());
      const uint32_t kth_partial = scratch[k - 1];
      if (unseen_max <= kth_partial) break;
    }
    const auto& list = postings_[q[read]];
    ++local.lists_read;
    local.posting_entries_read += list.size();
    for (const Posting& p : list) {
      auto [it, fresh] = partial.try_emplace(p.set_index, 0);
      if (fresh) ++local.candidates_seen;
      ++it->second;
      last_pos[p.set_index] = p.position;
    }
  }

  if (read == q.size()) {
    // All lists read: partial counts are exact overlaps.
    for (const auto& [s, count] : partial) {
      heap.Push(static_cast<double>(count), s);
    }
  } else {
    // Position-filter verification for every seen candidate: bound the
    // remaining overlap by both the unread query suffix and the candidate's
    // own suffix beyond its last matched position.
    // First seed the heap with candidates that cannot grow (cheap wins).
    const size_t q_remaining = q.size() - read;
    std::vector<std::pair<uint32_t, uint32_t>> pending;  // (set, partial)
    pending.reserve(partial.size());
    for (const auto& [s, count] : partial) pending.push_back({s, count});
    // Process most-promising first so the heap threshold rises quickly.
    std::sort(pending.begin(), pending.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    size_t processed = 0;
    for (const auto& [s, count] : pending) {
      if (cancel != nullptr && ShouldCheck(processed++, 64)) {
        LAKE_RETURN_IF_ERROR(cancel->Check());
      }
      const std::vector<uint32_t>& set = sets_[s];
      const size_t set_remaining = set.size() - (last_pos.at(s) + 1);
      const double upper =
          static_cast<double>(count) +
          static_cast<double>(std::min(q_remaining, set_remaining));
      if (heap.Full() && upper <= heap.Threshold(0.0)) continue;
      ++local.candidates_verified;
      // Exact suffix merge: unread query ranks vs the set's ranks.
      uint32_t extra = 0;
      size_t i = read, j = 0;
      while (i < q.size() && j < set.size()) {
        if (q[i] == set[j]) {
          ++extra;
          ++i;
          ++j;
        } else if (q[i] < set[j]) {
          ++i;
        } else {
          ++j;
        }
      }
      heap.Push(static_cast<double>(count + extra), s);
    }
  }

  std::vector<Hit> hits;
  for (auto& [score, s] : heap.Take()) {
    if (score <= 0) continue;
    hits.push_back(Hit{external_ids_[s], static_cast<uint32_t>(score)});
  }
  if (stats != nullptr) *stats = local;
  return hits;
}

Result<std::vector<JosieIndex::Hit>> JosieIndex::TopKBruteForce(
    const std::vector<std::string>& query_values, size_t k) const {
  if (!built_) return Status::FailedPrecondition("call Build() first");
  const std::vector<uint32_t> q = QueryRanks(query_values);
  ::lake::TopK<uint32_t> heap(k);
  for (uint32_t s = 0; s < sets_.size(); ++s) {
    const std::vector<uint32_t>& set = sets_[s];
    uint32_t overlap = 0;
    size_t i = 0, j = 0;
    while (i < q.size() && j < set.size()) {
      if (q[i] == set[j]) {
        ++overlap;
        ++i;
        ++j;
      } else if (q[i] < set[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (overlap > 0) heap.Push(overlap, s);
  }
  std::vector<Hit> hits;
  for (auto& [score, s] : heap.Take()) {
    hits.push_back(Hit{external_ids_[s], static_cast<uint32_t>(score)});
  }
  return hits;
}

}  // namespace lake

namespace lake {

namespace {
constexpr uint64_t kJosieMagic = 0x314a4b4c;  // "LKJ1"
}  // namespace

Status JosieIndex::Save(std::ostream* out) const {
  if (!built_) return Status::FailedPrecondition("save requires a built index");
  BinaryWriter w(out);
  w.WriteVarint(kJosieMagic);
  w.WriteVarint(vocab_.size());
  for (uint32_t id = 0; id < vocab_.size(); ++id) {
    w.WriteString(vocab_.token(id));
    w.WriteVarint(vocab_.frequency(id));
  }
  w.WriteU64Vector(external_ids_);
  w.WriteVarint(sets_.size());
  for (const auto& set : sets_) w.WriteU32Vector(set);
  w.WriteU32Vector(token_to_rank_);
  if (!w.ok()) return Status::IoError("write failed");
  return Status::OK();
}

Status JosieIndex::Load(std::istream* in) {
  BinaryReader r(in);
  LAKE_ASSIGN_OR_RETURN(uint64_t magic, r.ReadVarint());
  if (magic != kJosieMagic) return Status::IoError("not a JOSIE index file");

  JosieIndex fresh;
  LAKE_ASSIGN_OR_RETURN(uint64_t vocab_size, r.ReadVarint());
  for (uint64_t id = 0; id < vocab_size; ++id) {
    LAKE_ASSIGN_OR_RETURN(std::string token, r.ReadString());
    LAKE_ASSIGN_OR_RETURN(uint64_t freq, r.ReadVarint());
    const uint32_t got = fresh.vocab_.GetOrAdd(token);
    if (got != id) return Status::IoError("duplicate token in dictionary");
    fresh.vocab_.SetFrequency(got, freq);
  }
  LAKE_ASSIGN_OR_RETURN(fresh.external_ids_, r.ReadU64Vector());
  LAKE_ASSIGN_OR_RETURN(uint64_t num_sets, r.ReadVarint());
  if (num_sets != fresh.external_ids_.size()) {
    return Status::IoError("set/id count mismatch");
  }
  fresh.sets_.reserve(num_sets);
  for (uint64_t s = 0; s < num_sets; ++s) {
    LAKE_ASSIGN_OR_RETURN(std::vector<uint32_t> set, r.ReadU32Vector());
    for (uint32_t rank : set) {
      if (rank >= vocab_size) return Status::IoError("rank out of range");
    }
    fresh.sets_.push_back(std::move(set));
  }
  LAKE_ASSIGN_OR_RETURN(fresh.token_to_rank_, r.ReadU32Vector());
  if (fresh.token_to_rank_.size() != vocab_size) {
    return Status::IoError("rank table size mismatch");
  }

  // Rebuild postings from the rank arrays.
  fresh.postings_.assign(vocab_size, {});
  for (uint32_t s = 0; s < fresh.sets_.size(); ++s) {
    const auto& set = fresh.sets_[s];
    for (uint32_t pos = 0; pos < set.size(); ++pos) {
      fresh.postings_[set[pos]].push_back(Posting{s, pos});
    }
  }
  fresh.built_ = true;
  *this = std::move(fresh);
  return Status::OK();
}

Status JosieIndex::SaveToFile(const std::string& path) const {
  store::SnapshotWriter snapshot;
  snapshot.AddSection("meta", "josie");
  std::ostringstream payload;
  LAKE_RETURN_IF_ERROR(Save(&payload));
  snapshot.AddSection("index", std::move(payload).str());
  return snapshot.WriteToFile(path);
}

Status JosieIndex::LoadFromFile(const std::string& path) {
  LAKE_ASSIGN_OR_RETURN(store::SnapshotReader reader,
                        store::SnapshotReader::OpenFile(path));
  LAKE_ASSIGN_OR_RETURN(std::string kind, reader.ReadSection("meta"));
  if (kind != "josie") {
    return Status::IoError("snapshot holds a \"" + kind +
                           "\" index, not a JOSIE index");
  }
  LAKE_ASSIGN_OR_RETURN(std::string payload, reader.ReadSection("index"));
  std::istringstream in(payload);
  return Load(&in);
}

}  // namespace lake
