#ifndef LAKE_ANNOTATE_FEATURES_H_
#define LAKE_ANNOTATE_FEATURES_H_

#include <vector>

#include "embed/word_embedding.h"
#include "table/column.h"
#include "table/table.h"

namespace lake {

/// Sherlock-style feature extraction for semantic type detection
/// (Hulsebos et al., KDD 2019), with Sato's table-context extension
/// (Zhang et al., VLDB 2020).
///
/// Feature groups, each independently switchable so the E10 ablation can
/// reproduce the Sherlock→Sato quality ordering:
///  - statistics: cardinality, null fraction, uniqueness, length and
///    character-class distributions, numeric moments (Sherlock's
///    "global statistics" group);
///  - embeddings: the mean value embedding (Sherlock's "word embedding"
///    group, via the hash embedding substitute);
///  - context: the mean embedding of *sibling* columns (Sato's
///    table-context/topic signal).
class FeatureExtractor {
 public:
  struct Options {
    bool use_stats = true;
    bool use_embedding = true;
    bool use_context = false;
    size_t max_values = 128;  // values sampled per column, deterministic
  };

  explicit FeatureExtractor(const WordEmbedding* words)
      : FeatureExtractor(words, Options{}) {}
  FeatureExtractor(const WordEmbedding* words, Options options)
      : words_(words), options_(options) {}

  /// Total feature-vector length under the current options.
  size_t FeatureDim() const;

  /// Features of a standalone column (context features are zero).
  std::vector<double> Extract(const Column& column) const;

  /// Features of column `index` within its table (enables context group).
  std::vector<double> ExtractInContext(const Table& table, size_t index) const;

  const Options& options() const { return options_; }

 private:
  void AppendStats(const Column& column, std::vector<double>& out) const;
  void AppendEmbedding(const Column& column, std::vector<double>& out) const;
  void AppendContext(const Table& table, size_t index,
                     std::vector<double>& out) const;

  const WordEmbedding* words_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_ANNOTATE_FEATURES_H_
