#include "annotate/knowledge_base.h"

#include <algorithm>

namespace lake {

void KnowledgeBase::AddType(const std::string& type,
                            const std::string& parent) {
  if (!parent.empty() && !types_.count(parent)) types_[parent] = "";
  auto it = types_.find(type);
  if (it == types_.end()) {
    types_[type] = parent;
  } else if (it->second.empty() && !parent.empty()) {
    it->second = parent;
  }
}

void KnowledgeBase::AddEntity(const std::string& entity,
                              const std::string& type) {
  AddType(type);
  std::vector<std::string>& types = entity_types_[entity];
  if (std::find(types.begin(), types.end(), type) == types.end()) {
    types.push_back(type);
  }
}

void KnowledgeBase::AddRelation(const std::string& subject,
                                const std::string& predicate,
                                const std::string& object) {
  std::vector<std::string>& preds = relations_[{subject, object}];
  if (std::find(preds.begin(), preds.end(), predicate) == preds.end()) {
    preds.push_back(predicate);
  }
  ++num_relation_instances_;
}

std::string KnowledgeBase::ParentOf(const std::string& type) const {
  auto it = types_.find(type);
  return it == types_.end() ? "" : it->second;
}

bool KnowledgeBase::IsSubtypeOf(const std::string& descendant,
                                const std::string& ancestor) const {
  std::string cur = descendant;
  // Hierarchies are shallow; bound the walk defensively anyway.
  for (int depth = 0; depth < 64 && !cur.empty(); ++depth) {
    if (cur == ancestor) return true;
    cur = ParentOf(cur);
  }
  return false;
}

std::vector<std::string> KnowledgeBase::TypesOf(
    const std::string& entity) const {
  auto it = entity_types_.find(entity);
  return it == entity_types_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> KnowledgeBase::RelationsBetween(
    const std::string& subject, const std::string& object) const {
  auto it = relations_.find({subject, object});
  return it == relations_.end() ? std::vector<std::string>{} : it->second;
}

Result<TypeVote> KnowledgeBase::ColumnType(
    const std::vector<std::string>& values) const {
  if (values.empty()) return Status::InvalidArgument("no values");
  std::unordered_map<std::string, size_t> votes;
  size_t grounded = 0;
  for (const std::string& v : values) {
    const std::vector<std::string> types = TypesOf(v);
    if (types.empty()) continue;
    ++grounded;
    for (const std::string& t : types) ++votes[t];
  }
  if (grounded == 0) return Status::NotFound("no value grounds in the KB");
  std::string best;
  size_t best_votes = 0;
  for (const auto& [type, count] : votes) {
    if (count > best_votes || (count == best_votes && type < best)) {
      best = type;
      best_votes = count;
    }
  }
  return TypeVote{best, static_cast<double>(best_votes) / values.size()};
}

Result<RelationVote> KnowledgeBase::ColumnPairRelation(
    const std::vector<std::string>& subjects,
    const std::vector<std::string>& objects) const {
  const size_t n = std::min(subjects.size(), objects.size());
  if (n == 0) return Status::InvalidArgument("no pairs");
  std::unordered_map<std::string, size_t> votes;
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& p : RelationsBetween(subjects[i], objects[i])) {
      ++votes[p];
    }
  }
  if (votes.empty()) return Status::NotFound("no pair grounds in the KB");
  std::string best;
  size_t best_votes = 0;
  for (const auto& [pred, count] : votes) {
    if (count > best_votes || (count == best_votes && pred < best)) {
      best = pred;
      best_votes = count;
    }
  }
  return RelationVote{best, static_cast<double>(best_votes) / n};
}

}  // namespace lake
