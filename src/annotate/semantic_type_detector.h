#ifndef LAKE_ANNOTATE_SEMANTIC_TYPE_DETECTOR_H_
#define LAKE_ANNOTATE_SEMANTIC_TYPE_DETECTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "annotate/features.h"
#include "annotate/softmax_model.h"
#include "table/catalog.h"

namespace lake {

/// A labeled training/evaluation example: one column (possibly inside its
/// table, for context features) and its semantic type name.
struct LabeledColumn {
  const Table* table = nullptr;  // may be null (no context available)
  size_t column_index = 0;
  std::string type_label;
};

/// Prediction for one column.
struct TypeAnnotation {
  std::string type_label;
  double confidence = 0;
};

/// Supervised semantic column-type detection (the table-annotation task of
/// §2.2): a feature extractor plus a softmax classifier trained on labeled
/// columns, applied to unlabeled lake columns. With
/// `FeatureExtractor::Options.use_context = true` this is the Sato
/// configuration; without it, Sherlock's.
class SemanticTypeDetector {
 public:
  SemanticTypeDetector(const WordEmbedding* words,
                       FeatureExtractor::Options feature_options = {},
                       SoftmaxModel::Options model_options = {})
      : extractor_(words, feature_options), model_options_(model_options) {}

  /// Trains on labeled columns. Label strings define the class set.
  Status Train(const std::vector<LabeledColumn>& examples);

  /// Predicts the semantic type of a standalone column.
  Result<TypeAnnotation> Annotate(const Column& column) const;

  /// Predicts using table context (required for Sato-style features).
  Result<TypeAnnotation> AnnotateInContext(const Table& table,
                                           size_t column_index) const;

  /// Accuracy over labeled examples.
  Result<double> Evaluate(const std::vector<LabeledColumn>& examples) const;

  /// Annotates every column of every table in a catalog; returns a map
  /// from column ref to its predicted annotation.
  Result<std::unordered_map<ColumnRef, TypeAnnotation, ColumnRefHash>>
  AnnotateCatalog(const DataLakeCatalog& catalog) const;

  const std::vector<std::string>& labels() const { return labels_; }

 private:
  std::vector<double> Features(const LabeledColumn& ex) const;
  Result<TypeAnnotation> FromProbs(const std::vector<double>& probs) const;

  FeatureExtractor extractor_;
  SoftmaxModel::Options model_options_;
  SoftmaxModel model_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, int> label_ids_;
};

}  // namespace lake

#endif  // LAKE_ANNOTATE_SEMANTIC_TYPE_DETECTOR_H_
