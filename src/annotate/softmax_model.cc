#include "annotate/softmax_model.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace lake {

Status SoftmaxModel::Train(const std::vector<std::vector<double>>& x,
                           const std::vector<int>& y, int num_classes,
                           Options options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("empty or mismatched training data");
  }
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  dim_ = x[0].size();
  for (const auto& row : x) {
    if (row.size() != dim_) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  for (int label : y) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("label out of range");
    }
  }
  num_classes_ = num_classes;

  // Standardization statistics.
  mean_.assign(dim_, 0.0);
  inv_std_.assign(dim_, 1.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < dim_; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(x.size());
  std::vector<double> var(dim_, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < dim_; ++j) {
      const double d = row[j] - mean_[j];
      var[j] += d * d;
    }
  }
  for (size_t j = 0; j < dim_; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(x.size()));
    inv_std_[j] = sd > 1e-9 ? 1.0 / sd : 1.0;
  }

  const size_t cols = dim_ + 1;
  weights_.assign(static_cast<size_t>(num_classes_) * cols, 0.0);

  std::vector<std::vector<double>> xs(x.size());
  for (size_t i = 0; i < x.size(); ++i) xs[i] = Standardize(x[i]);

  Rng rng(options.seed);
  std::vector<size_t> order(x.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> logits(num_classes_);
  std::vector<double> grad(weights_.size());
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        options.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t start = 0; start < order.size();
         start += options.batch_size) {
      const size_t end = std::min(order.size(), start + options.batch_size);
      std::fill(grad.begin(), grad.end(), 0.0);
      for (size_t b = start; b < end; ++b) {
        const size_t i = order[b];
        const std::vector<double>& row = xs[i];
        double max_logit = -1e300;
        for (int c = 0; c < num_classes_; ++c) {
          double z = weights_[c * cols + dim_];  // bias
          const double* w = &weights_[c * cols];
          for (size_t j = 0; j < dim_; ++j) z += w[j] * row[j];
          logits[c] = z;
          max_logit = std::max(max_logit, z);
        }
        double sum = 0;
        for (int c = 0; c < num_classes_; ++c) {
          logits[c] = std::exp(logits[c] - max_logit);
          sum += logits[c];
        }
        for (int c = 0; c < num_classes_; ++c) {
          const double p = logits[c] / sum;
          const double err = p - (c == y[i] ? 1.0 : 0.0);
          double* g = &grad[c * cols];
          for (size_t j = 0; j < dim_; ++j) g[j] += err * row[j];
          g[dim_] += err;
        }
      }
      const double scale = lr / static_cast<double>(end - start);
      for (size_t w = 0; w < weights_.size(); ++w) {
        weights_[w] -= scale * (grad[w] + options.l2 * weights_[w]);
      }
    }
  }
  return Status::OK();
}

std::vector<double> SoftmaxModel::Standardize(
    const std::vector<double>& x) const {
  std::vector<double> out(dim_);
  for (size_t j = 0; j < dim_; ++j) out[j] = (x[j] - mean_[j]) * inv_std_[j];
  return out;
}

Result<std::vector<double>> SoftmaxModel::PredictProba(
    const std::vector<double>& x) const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  if (x.size() != dim_) return Status::InvalidArgument("feature dim mismatch");
  const std::vector<double> row = Standardize(x);
  const size_t cols = dim_ + 1;
  std::vector<double> probs(num_classes_);
  double max_logit = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double z = weights_[c * cols + dim_];
    const double* w = &weights_[c * cols];
    for (size_t j = 0; j < dim_; ++j) z += w[j] * row[j];
    probs[c] = z;
    max_logit = std::max(max_logit, z);
  }
  double sum = 0;
  for (double& p : probs) {
    p = std::exp(p - max_logit);
    sum += p;
  }
  for (double& p : probs) p /= sum;
  return probs;
}

Result<int> SoftmaxModel::Predict(const std::vector<double>& x) const {
  LAKE_ASSIGN_OR_RETURN(std::vector<double> probs, PredictProba(x));
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

Result<double> SoftmaxModel::Evaluate(
    const std::vector<std::vector<double>>& x,
    const std::vector<int>& y) const {
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("empty or mismatched eval data");
  }
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    LAKE_ASSIGN_OR_RETURN(int pred, Predict(x[i]));
    if (pred == y[i]) ++correct;
  }
  return static_cast<double>(correct) / x.size();
}

}  // namespace lake
