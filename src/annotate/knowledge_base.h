#ifndef LAKE_ANNOTATE_KNOWLEDGE_BASE_H_
#define LAKE_ANNOTATE_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace lake {

/// A (type, coverage) answer for column-level semantics: the fraction of
/// the column's values the KB could ground in that type.
struct TypeVote {
  std::string type;
  double coverage = 0;
};

/// A (predicate, coverage) answer for column-pair semantics.
struct RelationVote {
  std::string predicate;
  double coverage = 0;
};

/// In-memory knowledge base: a type hierarchy, typed entities, and binary
/// relations between entities. Plays the role YAGO plays for SANTOS and the
/// ontology plays for TUS's semantic unionability (DESIGN.md substitution
/// 3). A second, lake-*synthesized* KB (kb_synthesis.h) can be layered on
/// top, exactly as SANTOS layers its synthesized KB over an existing one.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Declares a type, optionally under a parent (parent auto-declared).
  void AddType(const std::string& type, const std::string& parent = "");

  /// Grounds an entity string (normalized by the caller) in a type.
  void AddEntity(const std::string& entity, const std::string& type);

  /// Asserts a binary relation instance between two entities.
  void AddRelation(const std::string& subject, const std::string& predicate,
                   const std::string& object);

  size_t num_types() const { return types_.size(); }
  size_t num_entities() const { return entity_types_.size(); }
  size_t num_relation_instances() const { return num_relation_instances_; }

  bool HasType(const std::string& type) const { return types_.count(type) > 0; }
  /// Parent of a type ("" at a root or for unknown types).
  std::string ParentOf(const std::string& type) const;
  /// True when `descendant` equals or transitively specializes `ancestor`.
  bool IsSubtypeOf(const std::string& descendant,
                   const std::string& ancestor) const;

  /// Direct types of an entity (empty when unknown).
  std::vector<std::string> TypesOf(const std::string& entity) const;

  /// Predicates asserted between (subject, object), in insertion order.
  std::vector<std::string> RelationsBetween(const std::string& subject,
                                            const std::string& object) const;

  /// Column-level semantics: the type grounding the largest fraction of
  /// `values`, with its coverage (SANTOS column semantics). NotFound when
  /// nothing grounds.
  Result<TypeVote> ColumnType(const std::vector<std::string>& values) const;

  /// Column-pair semantics: the predicate grounding the largest fraction
  /// of row-aligned (a, b) pairs (SANTOS relationship semantics). NotFound
  /// when nothing grounds. Input vectors must be equal length (shorter is
  /// used).
  Result<RelationVote> ColumnPairRelation(
      const std::vector<std::string>& subjects,
      const std::vector<std::string>& objects) const;

 private:
  struct PairHash {
    size_t operator()(const std::pair<std::string, std::string>& p) const {
      return std::hash<std::string>()(p.first) * 1000003 ^
             std::hash<std::string>()(p.second);
    }
  };

  std::unordered_map<std::string, std::string> types_;  // type -> parent
  std::unordered_map<std::string, std::vector<std::string>> entity_types_;
  std::unordered_map<std::pair<std::string, std::string>,
                     std::vector<std::string>, PairHash>
      relations_;
  size_t num_relation_instances_ = 0;
};

}  // namespace lake

#endif  // LAKE_ANNOTATE_KNOWLEDGE_BASE_H_
