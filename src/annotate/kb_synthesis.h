#ifndef LAKE_ANNOTATE_KB_SYNTHESIS_H_
#define LAKE_ANNOTATE_KB_SYNTHESIS_H_

#include "annotate/knowledge_base.h"
#include "table/catalog.h"

namespace lake {

/// Synthesizes a knowledge base from the data lake itself, following
/// SANTOS (Khatiwada et al., SIGMOD 2023): when the curated KB does not
/// cover a lake's vocabulary, mine column and column-pair semantics from
/// the lake's own co-occurrence structure.
///
///  - Entities: every normalized string value of an eligible column,
///    typed by the column's normalized attribute name (the lake's own
///    vocabulary becomes the type system).
///  - Relations: for every pair of string columns in one table, each
///    row's (value_a, value_b) pair is asserted under the predicate
///    "<name_a>|<name_b>". Tables that realize the same relationship
///    therefore ground each other's pairs, which is precisely the signal
///    SANTOS's relationship-based union search consumes.
class KbSynthesizer {
 public:
  struct Options {
    /// Columns with uniqueness below this look like free text / ids and
    /// pollute the type system; skip them as relation subjects.
    size_t max_distinct_per_column = 10000;
    /// Cap rows mined per table (cost control; deterministic prefix).
    size_t max_rows_per_table = 2000;
    /// Minimum times a (subject, predicate, object) pattern must repeat
    /// across the lake before the relation instance is asserted. Requiring
    /// repeated evidence (SANTOS weights relationships by votes) is what
    /// keeps one-off co-occurrences — e.g. tables whose column alignment
    /// is accidental — out of the synthesized KB.
    size_t min_support = 2;
  };

  KbSynthesizer() : KbSynthesizer(Options{}) {}
  explicit KbSynthesizer(Options options) : options_(options) {}

  /// Builds a fresh synthesized KB from the catalog.
  KnowledgeBase Synthesize(const DataLakeCatalog& catalog) const;

  /// Augments an existing KB in place (the SANTOS layered configuration).
  void AugmentInPlace(const DataLakeCatalog& catalog, KnowledgeBase* kb) const;

 private:
  Options options_;
};

}  // namespace lake

#endif  // LAKE_ANNOTATE_KB_SYNTHESIS_H_
