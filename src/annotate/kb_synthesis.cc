#include "annotate/kb_synthesis.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "text/normalizer.h"

namespace lake {

KnowledgeBase KbSynthesizer::Synthesize(const DataLakeCatalog& catalog) const {
  KnowledgeBase kb;
  AugmentInPlace(catalog, &kb);
  return kb;
}

void KbSynthesizer::AugmentInPlace(const DataLakeCatalog& catalog,
                                   KnowledgeBase* kb) const {
  // First pass: collect candidate triples with support counts so that
  // min_support can filter spurious single-row co-occurrences.
  std::map<std::tuple<std::string, std::string, std::string>, size_t>
      triple_support;

  for (TableId t : catalog.AllTables()) {
    const Table& table = catalog.table(t);
    const size_t rows =
        std::min(table.num_rows(), options_.max_rows_per_table);

    // Eligible columns: non-numeric, with a usable attribute name and a
    // bounded vocabulary.
    std::vector<size_t> eligible;
    std::vector<std::string> type_names;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.IsNumeric()) continue;
      const std::string name = NormalizeAttributeName(col.name());
      if (name.empty()) continue;
      if (catalog.stats(ColumnRef{t, static_cast<uint32_t>(c)})
              .distinct_count > options_.max_distinct_per_column) {
        continue;
      }
      eligible.push_back(c);
      type_names.push_back("synth:" + name);
    }

    // Entities typed by attribute name.
    for (size_t e = 0; e < eligible.size(); ++e) {
      const Column& col = table.column(eligible[e]);
      for (size_t r = 0; r < rows; ++r) {
        if (col.cell(r).is_null()) continue;
        const std::string v = NormalizeValue(col.cell(r).ToString());
        if (!v.empty()) kb->AddEntity(v, type_names[e]);
      }
    }

    // Relation instances from row-aligned column pairs.
    for (size_t a = 0; a < eligible.size(); ++a) {
      for (size_t b = a + 1; b < eligible.size(); ++b) {
        const Column& ca = table.column(eligible[a]);
        const Column& cb = table.column(eligible[b]);
        const std::string pred = "synth:" +
                                 NormalizeAttributeName(ca.name()) + "|" +
                                 NormalizeAttributeName(cb.name());
        for (size_t r = 0; r < rows; ++r) {
          if (ca.cell(r).is_null() || cb.cell(r).is_null()) continue;
          const std::string va = NormalizeValue(ca.cell(r).ToString());
          const std::string vb = NormalizeValue(cb.cell(r).ToString());
          if (va.empty() || vb.empty()) continue;
          ++triple_support[{va, pred, vb}];
        }
      }
    }
  }

  for (const auto& [triple, support] : triple_support) {
    if (support < options_.min_support) continue;
    const auto& [subject, predicate, object] = triple;
    kb->AddRelation(subject, predicate, object);
  }
}

}  // namespace lake
