#ifndef LAKE_ANNOTATE_DOMAIN_DISCOVERY_H_
#define LAKE_ANNOTATE_DOMAIN_DISCOVERY_H_

#include <string>
#include <vector>

#include "table/catalog.h"

namespace lake {

/// One discovered domain: a set of terms believed to instantiate a single
/// semantic concept, the columns that drew from it, and a representative
/// term (Li et al., KDD 2017 select a representative for the concept).
struct Domain {
  std::vector<std::string> values;       // sorted, deduplicated
  std::vector<ColumnRef> member_columns; // columns assigned to this domain
  std::string representative;            // most frequent member term
};

/// Unsupervised, data-driven domain discovery in the style of D4
/// (Ota et al., VLDB 2020): string columns whose value sets strongly
/// overlap are clustered (single-linkage over a similarity graph), and
/// each cluster's united value set becomes a domain. Co-occurrence across
/// many columns is the only signal — no ontology, no labels — matching
/// §2.2's description of the task.
class DomainDiscovery {
 public:
  struct Options {
    /// Minimum set containment (smaller in larger) to draw a cluster edge.
    double containment_threshold = 0.5;
    /// Columns with fewer distinct values are ignored (noise).
    size_t min_distinct = 3;
    /// Only string columns participate by default; numeric "domains" are
    /// rarely meaningful concepts.
    bool include_numeric = false;
  };

  DomainDiscovery() : DomainDiscovery(Options{}) {}
  explicit DomainDiscovery(Options options) : options_(options) {}

  /// Discovers domains over every eligible column of the catalog. Domains
  /// are returned largest-first (by member column count, then value count).
  std::vector<Domain> Discover(const DataLakeCatalog& catalog) const;

 private:
  Options options_;
};

}  // namespace lake

#endif  // LAKE_ANNOTATE_DOMAIN_DISCOVERY_H_
