#include "annotate/semantic_type_detector.h"

#include <algorithm>

namespace lake {

std::vector<double> SemanticTypeDetector::Features(
    const LabeledColumn& ex) const {
  if (ex.table != nullptr) {
    return extractor_.ExtractInContext(*ex.table, ex.column_index);
  }
  // Standalone column examples are only valid when the caller also owns
  // the column; LabeledColumn requires a table pointer for storage, so
  // this path is unreachable by construction (kept for safety).
  return {};
}

Status SemanticTypeDetector::Train(const std::vector<LabeledColumn>& examples) {
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  labels_.clear();
  label_ids_.clear();
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(examples.size());
  y.reserve(examples.size());
  for (const LabeledColumn& ex : examples) {
    if (ex.table == nullptr || ex.column_index >= ex.table->num_columns()) {
      return Status::InvalidArgument("labeled column without valid table");
    }
    auto [it, fresh] =
        label_ids_.try_emplace(ex.type_label,
                               static_cast<int>(labels_.size()));
    if (fresh) labels_.push_back(ex.type_label);
    x.push_back(Features(ex));
    y.push_back(it->second);
  }
  if (labels_.size() < 2) {
    return Status::InvalidArgument("need >= 2 distinct type labels");
  }
  return model_.Train(x, y, static_cast<int>(labels_.size()),
                      model_options_);
}

Result<TypeAnnotation> SemanticTypeDetector::FromProbs(
    const std::vector<double>& probs) const {
  const size_t best =
      std::max_element(probs.begin(), probs.end()) - probs.begin();
  return TypeAnnotation{labels_[best], probs[best]};
}

Result<TypeAnnotation> SemanticTypeDetector::Annotate(
    const Column& column) const {
  // Wrap in a single-column table so context features (if enabled) are a
  // well-defined zero.
  Table wrapper("__single__");
  LAKE_RETURN_IF_ERROR(wrapper.AddColumn(column));
  return AnnotateInContext(wrapper, 0);
}

Result<TypeAnnotation> SemanticTypeDetector::AnnotateInContext(
    const Table& table, size_t column_index) const {
  if (column_index >= table.num_columns()) {
    return Status::OutOfRange("column index");
  }
  LAKE_ASSIGN_OR_RETURN(
      std::vector<double> probs,
      model_.PredictProba(extractor_.ExtractInContext(table, column_index)));
  return FromProbs(probs);
}

Result<double> SemanticTypeDetector::Evaluate(
    const std::vector<LabeledColumn>& examples) const {
  if (examples.empty()) return Status::InvalidArgument("no examples");
  size_t correct = 0;
  for (const LabeledColumn& ex : examples) {
    LAKE_ASSIGN_OR_RETURN(TypeAnnotation ann,
                          AnnotateInContext(*ex.table, ex.column_index));
    if (ann.type_label == ex.type_label) ++correct;
  }
  return static_cast<double>(correct) / examples.size();
}

Result<std::unordered_map<ColumnRef, TypeAnnotation, ColumnRefHash>>
SemanticTypeDetector::AnnotateCatalog(const DataLakeCatalog& catalog) const {
  std::unordered_map<ColumnRef, TypeAnnotation, ColumnRefHash> out;
  for (TableId t : catalog.AllTables()) {
    const Table& table = catalog.table(t);
    for (uint32_t c = 0; c < table.num_columns(); ++c) {
      LAKE_ASSIGN_OR_RETURN(TypeAnnotation ann, AnnotateInContext(table, c));
      out[ColumnRef{t, c}] = std::move(ann);
    }
  }
  return out;
}

}  // namespace lake
