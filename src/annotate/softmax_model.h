#ifndef LAKE_ANNOTATE_SOFTMAX_MODEL_H_
#define LAKE_ANNOTATE_SOFTMAX_MODEL_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace lake {

/// Multinomial logistic regression trained with mini-batch SGD — the
/// in-process stand-in for Sherlock/Sato's neural classifiers (DESIGN.md,
/// substitution 4). Features are standardized with train-set statistics;
/// L2 regularization keeps the model stable on the hash-embedding features.
class SoftmaxModel {
 public:
  struct Options {
    size_t epochs = 60;
    size_t batch_size = 32;
    double learning_rate = 0.15;
    double l2 = 1e-4;
    uint64_t seed = 13;
  };

  SoftmaxModel() = default;

  /// Trains on row-major features `x` with labels in [0, num_classes).
  /// All rows must share one dimension. Replaces any previous model.
  Status Train(const std::vector<std::vector<double>>& x,
               const std::vector<int>& y, int num_classes, Options options);
  Status Train(const std::vector<std::vector<double>>& x,
               const std::vector<int>& y, int num_classes) {
    return Train(x, y, num_classes, Options{});
  }

  /// Class probabilities for one feature vector (dimension checked).
  Result<std::vector<double>> PredictProba(const std::vector<double>& x) const;

  /// Arg-max class.
  Result<int> Predict(const std::vector<double>& x) const;

  /// Mean accuracy over a labeled set.
  Result<double> Evaluate(const std::vector<std::vector<double>>& x,
                          const std::vector<int>& y) const;

  bool trained() const { return num_classes_ > 0; }
  int num_classes() const { return num_classes_; }
  size_t feature_dim() const { return dim_; }

 private:
  std::vector<double> Standardize(const std::vector<double>& x) const;

  int num_classes_ = 0;
  size_t dim_ = 0;
  std::vector<double> mean_, inv_std_;
  // Row-major [num_classes x (dim+1)]; last column is the bias.
  std::vector<double> weights_;
};

}  // namespace lake

#endif  // LAKE_ANNOTATE_SOFTMAX_MODEL_H_
