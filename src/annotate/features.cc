#include "annotate/features.h"

#include <algorithm>
#include <cmath>

#include "table/stats.h"
#include "text/normalizer.h"

namespace lake {

namespace {
constexpr size_t kStatsDim = 12;
}  // namespace

size_t FeatureExtractor::FeatureDim() const {
  size_t dim = 0;
  if (options_.use_stats) dim += kStatsDim;
  if (options_.use_embedding) dim += words_->dim();
  if (options_.use_context) dim += words_->dim();
  return dim;
}

void FeatureExtractor::AppendStats(const Column& column,
                                   std::vector<double>& out) const {
  const ColumnStats s = ComputeColumnStats(column);
  out.push_back(std::log1p(static_cast<double>(s.row_count)));
  out.push_back(s.NullFraction());
  out.push_back(s.Uniqueness());
  out.push_back(std::log1p(static_cast<double>(s.distinct_count)));
  out.push_back(std::log1p(s.mean_length));
  out.push_back(std::log1p(s.max_length));
  out.push_back(s.digit_fraction);
  out.push_back(s.alpha_fraction);
  out.push_back(s.space_fraction);
  const double numeric_frac =
      s.row_count == 0
          ? 0.0
          : static_cast<double>(s.numeric_count) / s.row_count;
  out.push_back(numeric_frac);
  out.push_back(s.numeric_count > 0 ? std::tanh(s.mean / 1e6) : 0.0);
  out.push_back(s.numeric_count > 0 ? std::tanh(s.stddev / 1e6) : 0.0);
}

void FeatureExtractor::AppendEmbedding(const Column& column,
                                       std::vector<double>& out) const {
  Vector acc(words_->dim(), 0.0f);
  size_t used = 0;
  for (const std::string& v : column.DistinctStrings()) {
    if (used >= options_.max_values) break;
    AddInPlace(acc, words_->EmbedText(NormalizeValue(v)));
    ++used;
  }
  NormalizeInPlace(acc);
  for (float x : acc) out.push_back(x);
}

void FeatureExtractor::AppendContext(const Table& table, size_t index,
                                     std::vector<double>& out) const {
  // Context sampling is kept cheap but never collapses to zero values,
  // even under a 1-value main budget — Sato's point is that the context
  // can be informative when the column's own sample is not.
  const size_t per_sibling = std::max<size_t>(4, options_.max_values / 4);
  Vector acc(words_->dim(), 0.0f);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c == index) continue;
    Vector sibling(words_->dim(), 0.0f);
    size_t used = 0;
    for (const std::string& v : table.column(c).DistinctStrings()) {
      if (used >= per_sibling) break;
      AddInPlace(sibling, words_->EmbedText(NormalizeValue(v)));
      ++used;
    }
    NormalizeInPlace(sibling);
    AddInPlace(acc, sibling);
  }
  NormalizeInPlace(acc);
  for (float x : acc) out.push_back(x);
}

std::vector<double> FeatureExtractor::Extract(const Column& column) const {
  std::vector<double> out;
  out.reserve(FeatureDim());
  if (options_.use_stats) AppendStats(column, out);
  if (options_.use_embedding) AppendEmbedding(column, out);
  if (options_.use_context) out.resize(out.size() + words_->dim(), 0.0);
  return out;
}

std::vector<double> FeatureExtractor::ExtractInContext(const Table& table,
                                                       size_t index) const {
  std::vector<double> out;
  out.reserve(FeatureDim());
  const Column& column = table.column(index);
  if (options_.use_stats) AppendStats(column, out);
  if (options_.use_embedding) AppendEmbedding(column, out);
  if (options_.use_context) AppendContext(table, index, out);
  return out;
}

}  // namespace lake
