#include "annotate/domain_discovery.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "sketch/set_ops.h"
#include "text/normalizer.h"

namespace lake {

namespace {

/// Union-find over dense indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<Domain> DomainDiscovery::Discover(
    const DataLakeCatalog& catalog) const {
  // Collect eligible columns with normalized distinct value sets.
  std::vector<ColumnRef> refs;
  std::vector<std::vector<std::string>> value_sets;
  std::vector<HashedSet> hashed;
  catalog.ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (!options_.include_numeric && col.IsNumeric()) return;
    std::vector<std::string> values;
    for (const std::string& v : col.DistinctStrings()) {
      const std::string norm = NormalizeValue(v);
      if (!norm.empty()) values.push_back(norm);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < options_.min_distinct) return;
    refs.push_back(ref);
    hashed.push_back(HashedSet::FromValues(values));
    value_sets.push_back(std::move(values));
  });

  // Single-linkage clustering on the containment graph. An inverted index
  // from value hash to columns avoids the quadratic all-pairs scan.
  std::unordered_map<uint64_t, std::vector<size_t>> by_value;
  for (size_t i = 0; i < hashed.size(); ++i) {
    for (uint64_t h : hashed[i].hashes()) by_value[h].push_back(i);
  }
  DisjointSets clusters(refs.size());
  std::unordered_map<size_t, size_t> overlap;  // per-anchor overlap counts
  for (size_t i = 0; i < hashed.size(); ++i) {
    overlap.clear();
    for (uint64_t h : hashed[i].hashes()) {
      for (size_t j : by_value[h]) {
        if (j > i) ++overlap[j];
      }
    }
    for (const auto& [j, inter] : overlap) {
      const size_t smaller = std::min(hashed[i].size(), hashed[j].size());
      if (smaller == 0) continue;
      const double containment = static_cast<double>(inter) / smaller;
      if (containment >= options_.containment_threshold) {
        clusters.Union(i, j);
      }
    }
  }

  // Materialize domains per cluster root.
  std::unordered_map<size_t, Domain> domains;
  std::unordered_map<size_t, std::unordered_map<std::string, size_t>> counts;
  for (size_t i = 0; i < refs.size(); ++i) {
    const size_t root = clusters.Find(i);
    Domain& d = domains[root];
    d.member_columns.push_back(refs[i]);
    for (const std::string& v : value_sets[i]) {
      ++counts[root][v];
    }
  }
  std::vector<Domain> out;
  out.reserve(domains.size());
  for (auto& [root, d] : domains) {
    size_t best_count = 0;
    for (auto& [value, count] : counts[root]) {
      d.values.push_back(value);
      // Representative: the term shared by the most member columns, ties
      // broken lexicographically for determinism.
      if (count > best_count ||
          (count == best_count && value < d.representative)) {
        best_count = count;
        d.representative = value;
      }
    }
    std::sort(d.values.begin(), d.values.end());
    std::sort(d.member_columns.begin(), d.member_columns.end());
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const Domain& a, const Domain& b) {
    if (a.member_columns.size() != b.member_columns.size()) {
      return a.member_columns.size() > b.member_columns.size();
    }
    if (a.values.size() != b.values.size()) {
      return a.values.size() > b.values.size();
    }
    return a.representative < b.representative;
  });
  return out;
}

}  // namespace lake
