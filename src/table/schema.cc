#include "table/schema.h"

namespace lake {

int Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace lake
