#include "table/table_meta.h"

#include <sstream>

#include "util/serialize.h"

namespace lake {

namespace {
constexpr uint64_t kVersion = 1;
}  // namespace

bool HasMetadata(const TableMetadata& meta) {
  return !meta.description.empty() || !meta.tags.empty() ||
         !meta.source.empty();
}

std::string SerializeTableMetadata(const TableMetadata& meta) {
  std::ostringstream buf;
  BinaryWriter w(&buf);
  w.WriteVarint(kVersion);
  w.WriteString(meta.description);
  w.WriteVarint(meta.tags.size());
  for (const std::string& tag : meta.tags) w.WriteString(tag);
  w.WriteString(meta.source);
  return std::move(buf).str();
}

Result<TableMetadata> ParseTableMetadata(const std::string& bytes) {
  std::istringstream in(bytes);
  BinaryReader r(&in);
  LAKE_ASSIGN_OR_RETURN(uint64_t version, r.ReadVarint());
  if (version != kVersion) {
    return Status::IoError("unknown table metadata version");
  }
  TableMetadata meta;
  LAKE_ASSIGN_OR_RETURN(meta.description, r.ReadString());
  LAKE_ASSIGN_OR_RETURN(uint64_t num_tags, r.ReadVarint());
  meta.tags.reserve(num_tags);
  for (uint64_t i = 0; i < num_tags; ++i) {
    LAKE_ASSIGN_OR_RETURN(std::string tag, r.ReadString());
    meta.tags.push_back(std::move(tag));
  }
  LAKE_ASSIGN_OR_RETURN(meta.source, r.ReadString());
  return meta;
}

}  // namespace lake
