#ifndef LAKE_TABLE_CATALOG_H_
#define LAKE_TABLE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/snapshot.h"
#include "table/stats.h"
#include "table/table.h"
#include "util/status.h"

namespace lake {

/// Identifier of a table inside one catalog (dense, assigned at add time).
using TableId = uint32_t;

/// Identifier of a column inside one catalog: (table, column index).
struct ColumnRef {
  TableId table_id = 0;
  uint32_t column_index = 0;

  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.table_id == b.table_id && a.column_index == b.column_index;
  }
  friend bool operator<(const ColumnRef& a, const ColumnRef& b) {
    if (a.table_id != b.table_id) return a.table_id < b.table_id;
    return a.column_index < b.column_index;
  }
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& c) const {
    return (static_cast<size_t>(c.table_id) << 20) ^ c.column_index;
  }
};

/// The Data Lake Management System substrate of Figure 1: owns all ingested
/// tables, assigns ids, computes and caches per-column profiles, and is the
/// single source the table-understanding and search layers read from.
class DataLakeCatalog {
 public:
  DataLakeCatalog() = default;

  // The catalog owns large table storage; keep it move-only.
  DataLakeCatalog(const DataLakeCatalog&) = delete;
  DataLakeCatalog& operator=(const DataLakeCatalog&) = delete;
  DataLakeCatalog(DataLakeCatalog&&) = default;
  DataLakeCatalog& operator=(DataLakeCatalog&&) = default;

  /// Adds a table; names must be unique within the catalog.
  Result<TableId> AddTable(Table table);

  /// One casualty of a bulk load: the file (or snapshot section) that was
  /// skipped, and why. Real lakes always contain some broken inputs; the
  /// catalog records them instead of aborting the whole ingest.
  struct QuarantinedFile {
    std::string path;  // file path, or snapshot section name
    Status status;
  };

  /// Loads every *.csv file in a directory (non-recursive). Files that
  /// fail to parse or to register are quarantined (see quarantined()) and
  /// loading continues; the returned ids cover the successes.
  Result<std::vector<TableId>> LoadDirectory(const std::string& dir);

  /// What the last LoadDirectory / LoadSnapshot skipped, in ingest order.
  const std::vector<QuarantinedFile>& quarantined() const {
    return quarantined_;
  }

  /// Adds one checksummed "table/<name>" CSV section per table to
  /// `snapshot`; commit through a store::SnapshotStore for a crash-safe
  /// catalog checkpoint.
  Status SaveSnapshot(store::SnapshotWriter* snapshot) const;

  /// Loads every "table/" section of `reader` that CRC-verifies and
  /// parses; corrupt or rejected sections are quarantined and loading
  /// continues, so one flipped bit costs one table, not the lake.
  Result<std::vector<TableId>> LoadSnapshot(
      const store::SnapshotReader& reader);

  /// Writes every table to `<dir>/<table name>.csv` (creating the
  /// directory), so a lake survives process restarts as plain CSVs —
  /// reloadable with LoadDirectory. Table names containing '/' are
  /// rejected.
  Status SaveToDirectory(const std::string& dir) const;

  size_t num_tables() const { return tables_.size(); }

  /// Total number of columns across all tables.
  size_t num_columns() const;

  const Table& table(TableId id) const { return tables_[id]; }
  Table& mutable_table(TableId id) { return tables_[id]; }

  /// Id lookup by name; NotFound when absent.
  Result<TableId> FindTable(const std::string& name) const;

  /// The column a ref points at. Ref must be valid (checked).
  const Column& column(const ColumnRef& ref) const;

  /// Cached profile of a column (computed on first request).
  const ColumnStats& stats(const ColumnRef& ref) const;

  /// Invokes fn for every column in the lake.
  void ForEachColumn(
      const std::function<void(const ColumnRef&, const Column&)>& fn) const;

  /// All column refs, ordered by (table, index).
  std::vector<ColumnRef> AllColumns() const;

  /// All table ids (dense 0..n-1).
  std::vector<TableId> AllTables() const;

 private:
  std::vector<Table> tables_;
  std::unordered_map<std::string, TableId> by_name_;
  std::vector<QuarantinedFile> quarantined_;
  // Lazily filled stats cache. Mutable via const accessor; single-threaded
  // fill is guaranteed by computing stats eagerly in AddTable.
  std::vector<std::vector<ColumnStats>> stats_;
};

}  // namespace lake

#endif  // LAKE_TABLE_CATALOG_H_
