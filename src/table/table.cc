#include "table/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace lake {

Status Table::AddColumn(Column col) {
  if (!columns_.empty() && col.size() != num_rows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows, table has %zu",
                  col.name().c_str(), col.size(), num_rows()));
  }
  columns_.push_back(std::move(col));
  return Status::OK();
}

int Table::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].Append(std::move(row[i]));
  }
  return Status::OK();
}

Schema Table::GetSchema() const {
  Schema schema;
  for (const Column& c : columns_) {
    schema.AddField(Field{c.name(), c.type()});
  }
  return schema;
}

Result<Table> Table::Project(const std::vector<size_t>& col_indices) const {
  Table out(name_);
  out.metadata_ = metadata_;
  for (size_t idx : col_indices) {
    if (idx >= columns_.size()) {
      return Status::OutOfRange(
          StrFormat("column index %zu out of range (%zu columns)", idx,
                    columns_.size()));
    }
    out.columns_.push_back(columns_[idx]);
  }
  return out;
}

Result<Table> Table::Slice(size_t begin, size_t end) const {
  if (begin > end || end > num_rows()) {
    return Status::OutOfRange(StrFormat("slice [%zu, %zu) of %zu rows", begin,
                                        end, num_rows()));
  }
  Table out(name_);
  out.metadata_ = metadata_;
  for (const Column& c : columns_) {
    Column nc(c.name(), c.type());
    nc.Reserve(end - begin);
    for (size_t r = begin; r < end; ++r) nc.Append(c.cell(r));
    out.columns_.push_back(std::move(nc));
  }
  return out;
}

std::string Table::Preview(size_t max_rows) const {
  const size_t rows = std::min(max_rows, num_rows());
  std::vector<size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(rows);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].name().size();
  }
  for (size_t r = 0; r < rows; ++r) {
    cells[r].resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = columns_[c].cell(r).ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out = name_ + " (" + std::to_string(num_rows()) + " rows)\n";
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += columns_[c].name();
    out.append(widths[c] - columns_[c].name().size() + 2, ' ');
  }
  out += "\n";
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += "\n";
  }
  if (rows < num_rows()) out += "...\n";
  return out;
}

}  // namespace lake
