#include "table/column.h"

namespace lake {

size_t Column::NullCount() const {
  size_t n = 0;
  for (const Value& v : cells_) {
    if (v.is_null()) ++n;
  }
  return n;
}

std::vector<std::string> Column::DistinctStrings() const {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (const Value& v : cells_) {
    if (v.is_null()) continue;
    std::string s = v.ToString();
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> Column::NonNullStrings() const {
  std::vector<std::string> out;
  out.reserve(cells_.size());
  for (const Value& v : cells_) {
    if (!v.is_null()) out.push_back(v.ToString());
  }
  return out;
}

std::vector<double> Column::Numbers() const {
  std::vector<double> out;
  out.reserve(cells_.size());
  for (const Value& v : cells_) {
    double d;
    if (v.ToDouble(&d)) out.push_back(d);
  }
  return out;
}

}  // namespace lake
