#include "table/stats.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_set>

namespace lake {

ColumnStats ComputeColumnStats(const Column& column) {
  ColumnStats s;
  s.row_count = column.size();

  std::unordered_set<std::string> distinct;
  size_t total_chars = 0, digits = 0, alphas = 0, spaces = 0;
  double sum = 0, sum_sq = 0;

  for (const Value& v : column.cells()) {
    if (v.is_null()) {
      ++s.null_count;
      continue;
    }
    const std::string str = v.ToString();
    distinct.insert(str);
    total_chars += str.size();
    s.max_length = std::max(s.max_length, static_cast<double>(str.size()));
    for (char c : str) {
      const unsigned char uc = static_cast<unsigned char>(c);
      if (std::isdigit(uc)) ++digits;
      else if (std::isalpha(uc)) ++alphas;
      else if (std::isspace(uc)) ++spaces;
    }
    double d;
    if (v.ToDouble(&d)) {
      if (s.numeric_count == 0) {
        s.min = d;
        s.max = d;
      } else {
        s.min = std::min(s.min, d);
        s.max = std::max(s.max, d);
      }
      ++s.numeric_count;
      sum += d;
      sum_sq += d * d;
    }
  }

  s.distinct_count = distinct.size();
  const size_t non_null = s.row_count - s.null_count;
  if (non_null > 0) {
    s.mean_length = static_cast<double>(total_chars) / non_null;
  }
  if (total_chars > 0) {
    s.digit_fraction = static_cast<double>(digits) / total_chars;
    s.alpha_fraction = static_cast<double>(alphas) / total_chars;
    s.space_fraction = static_cast<double>(spaces) / total_chars;
  }
  if (s.numeric_count > 0) {
    s.mean = sum / s.numeric_count;
    const double var =
        std::max(0.0, sum_sq / s.numeric_count - s.mean * s.mean);
    s.stddev = std::sqrt(var);
  }
  return s;
}

}  // namespace lake
