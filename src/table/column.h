#ifndef LAKE_TABLE_COLUMN_H_
#define LAKE_TABLE_COLUMN_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "table/value.h"

namespace lake {

/// A named, typed column of cells. Tables are stored column-major because
/// every discovery primitive (sketching, embedding, annotation) consumes
/// whole columns.
class Column {
 public:
  Column() = default;
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}
  Column(std::string name, DataType type, std::vector<Value> cells)
      : name_(std::move(name)), type_(type), cells_(std::move(cells)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }
  void set_type(DataType t) { type_ = t; }

  size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }
  const Value& cell(size_t i) const { return cells_[i]; }
  Value& cell(size_t i) { return cells_[i]; }
  const std::vector<Value>& cells() const { return cells_; }

  void Append(Value v) { cells_.push_back(std::move(v)); }
  void Reserve(size_t n) { cells_.reserve(n); }

  /// True when the inferred type is int or double.
  bool IsNumeric() const {
    return type_ == DataType::kInt || type_ == DataType::kDouble;
  }

  /// Number of null cells.
  size_t NullCount() const;

  /// Distinct canonical string renderings of non-null cells. This is the
  /// "set semantics" view used by joinability measures (Jaccard,
  /// containment) and sketches.
  std::vector<std::string> DistinctStrings() const;

  /// Canonical strings of all non-null cells, in row order (bag semantics).
  std::vector<std::string> NonNullStrings() const;

  /// Numeric view of all non-null numeric cells, in row order. Cells that
  /// cannot convert are skipped.
  std::vector<double> Numbers() const;

 private:
  std::string name_;
  DataType type_ = DataType::kString;
  std::vector<Value> cells_;
};

}  // namespace lake

#endif  // LAKE_TABLE_COLUMN_H_
