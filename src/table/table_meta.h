#ifndef LAKE_TABLE_TABLE_META_H_
#define LAKE_TABLE_TABLE_META_H_

#include <string>

#include "table/table.h"
#include "util/status.h"

namespace lake {

/// Binary round-trip for TableMetadata (description, tags, source).
///
/// CSV carries a table's cells but not its free-text metadata, and keyword
/// search scores over that metadata — so a catalog persisted as CSV alone
/// answers keyword queries differently after recovery. Snapshots therefore
/// pair every "table/<name>" (and "ingest/delta/<name>") section that has
/// metadata with a companion section holding this encoding.
constexpr const char* kTableMetaPrefix = "tablemeta/";
constexpr const char* kDeltaMetaPrefix = "ingest/deltameta/";

bool HasMetadata(const TableMetadata& meta);

std::string SerializeTableMetadata(const TableMetadata& meta);

/// Errors (never aborts) on truncated or over-versioned payloads; callers
/// drop the metadata and keep the table.
Result<TableMetadata> ParseTableMetadata(const std::string& bytes);

}  // namespace lake

#endif  // LAKE_TABLE_TABLE_META_H_
