#include "table/csv.h"

#include <fstream>
#include <sstream>

#include "table/type_infer.h"
#include "util/string_util.h"

namespace lake {

namespace internal_csv {

std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    // Skip rows that are entirely empty (e.g. trailing newline).
    if (row.size() == 1 && row[0].empty()) {
      row.clear();
      return;
    }
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      if (i + 1 < n && text[i + 1] == '\n') ++i;
      end_row();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  // Flush a final unterminated row.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace internal_csv

Result<Table> ReadCsvString(std::string_view text, std::string table_name,
                            const CsvOptions& options) {
  auto rows = internal_csv::ParseRows(text, options.delimiter);
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input for table " + table_name);
  }

  std::vector<std::string> header;
  size_t data_begin = 0;
  if (options.has_header) {
    header = rows[0];
    data_begin = 1;
  } else {
    for (size_t i = 0; i < rows[0].size(); ++i) {
      header.push_back("col" + std::to_string(i));
    }
  }
  const size_t width = header.size();

  // Column-major raw cells; ragged rows padded with empties.
  std::vector<std::vector<std::string>> raw(width);
  for (size_t r = data_begin; r < rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      raw[c].push_back(c < rows[r].size() ? std::move(rows[r][c])
                                          : std::string());
    }
  }

  Table table(std::move(table_name));
  for (size_t c = 0; c < width; ++c) {
    const DataType type =
        options.infer_types ? InferColumnType(raw[c]) : DataType::kString;
    Column col(header[c].empty() ? "col" + std::to_string(c) : header[c],
               type);
    col.Reserve(raw[c].size());
    for (const std::string& cell : raw[c]) {
      col.Append(ParseCell(cell, type));
    }
    LAKE_RETURN_IF_ERROR(table.AddColumn(std::move(col)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  auto result = ReadCsvString(buf.str(), std::move(name), options);
  if (result.ok()) result.value().metadata().source = path;
  return result;
}

namespace {
std::string EscapeField(const std::string& s, char delimiter) {
  bool needs_quotes = false;
  for (char c : s) {
    if (c == '"' || c == delimiter || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) out += delimiter;
    out += EscapeField(table.column(c).name(), delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out += delimiter;
      out += EscapeField(table.column(c).cell(r).ToString(), delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace lake
