#ifndef LAKE_TABLE_STATS_H_
#define LAKE_TABLE_STATS_H_

#include <cstddef>
#include <string>

#include "table/column.h"

namespace lake {

/// Data profile of one column, in the style of discovery-system profilers
/// (Aurum, Auctus, Juneau). Cheap to compute in one pass plus a distinct
/// scan; used as features for annotation and as pre-filters for search.
struct ColumnStats {
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;

  // Text statistics over canonical strings (non-null cells).
  double mean_length = 0;
  double max_length = 0;
  double digit_fraction = 0;   // fraction of characters that are digits
  double alpha_fraction = 0;   // fraction of characters that are letters
  double space_fraction = 0;

  // Numeric statistics (valid only when `numeric_count > 0`).
  size_t numeric_count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;

  /// distinct / non-null count; 1.0 means key-like.
  double Uniqueness() const {
    const size_t nn = row_count - null_count;
    return nn == 0 ? 0.0 : static_cast<double>(distinct_count) / nn;
  }

  /// null_count / row_count.
  double NullFraction() const {
    return row_count == 0 ? 0.0 : static_cast<double>(null_count) / row_count;
  }
};

/// Computes the full profile of a column.
ColumnStats ComputeColumnStats(const Column& column);

}  // namespace lake

#endif  // LAKE_TABLE_STATS_H_
