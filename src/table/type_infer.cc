#include "table/type_infer.h"

#include "util/string_util.h"

namespace lake {

DataType InferColumnType(const std::vector<std::string>& raw_cells) {
  bool saw_value = false;
  bool all_bool = true;
  bool all_int = true;
  bool all_double = true;
  for (const std::string& raw : raw_cells) {
    const std::string_view cell = TrimAscii(raw);
    if (cell.empty()) continue;
    saw_value = true;
    bool b;
    int64_t i;
    double d;
    if (all_bool && !ParseBool(cell, &b)) all_bool = false;
    if (all_int && !ParseInt64(cell, &i)) all_int = false;
    if (all_double && !ParseDouble(cell, &d)) all_double = false;
    if (!all_bool && !all_int && !all_double) return DataType::kString;
  }
  if (!saw_value) return DataType::kNull;
  // "0"/"1" columns parse as bool, int, and double; prefer int for numeric
  // digits unless the column contains t/f/yes/no style literals only.
  if (all_int) return DataType::kInt;
  if (all_double) return DataType::kDouble;
  if (all_bool) return DataType::kBool;
  return DataType::kString;
}

Value ParseCell(std::string_view raw, DataType target) {
  const std::string_view cell = TrimAscii(raw);
  if (cell.empty()) return Value::Null();
  switch (target) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      bool b;
      if (ParseBool(cell, &b)) return Value(b);
      break;
    }
    case DataType::kInt: {
      int64_t i;
      if (ParseInt64(cell, &i)) return Value(i);
      break;
    }
    case DataType::kDouble: {
      double d;
      if (ParseDouble(cell, &d)) return Value(d);
      break;
    }
    case DataType::kString:
      break;
  }
  return Value(std::string(cell));
}

}  // namespace lake
