#include "table/value.h"

#include <cmath>
#include <cstdio>

namespace lake {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

bool Value::ToDouble(double* out) const {
  if (is_int()) {
    *out = static_cast<double>(as_int());
    return true;
  }
  if (is_double()) {
    *out = as_double();
    return true;
  }
  if (is_bool()) {
    *out = as_bool() ? 1.0 : 0.0;
    return true;
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[32];
    // %.17g round-trips doubles; trim to %.12g for readable canonical text
    // that still distinguishes generated values.
    std::snprintf(buf, sizeof(buf), "%.12g", as_double());
    return buf;
  }
  return as_string();
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

}  // namespace lake
