#ifndef LAKE_TABLE_VALUE_H_
#define LAKE_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace lake {

/// Primitive cell types recognized by the table model. Data-lake CSVs carry
/// no type information, so types are assigned by inference (type_infer.h).
enum class DataType {
  kNull = 0,   // column of only empty cells
  kBool,
  kInt,
  kDouble,
  kString,
};

/// Returns a stable name ("null", "bool", "int", "double", "string").
const char* DataTypeToString(DataType t);

/// A single table cell. Null is represented explicitly; numeric types are
/// normalized at parse time.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric view: ints and doubles convert; bools map to 0/1. Returns false
  /// for nulls and strings.
  bool ToDouble(double* out) const;

  /// Canonical text rendering used for tokenization, sketching and CSV
  /// output. Null renders as the empty string.
  std::string ToString() const;

  /// Runtime type of this cell.
  DataType type() const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

}  // namespace lake

#endif  // LAKE_TABLE_VALUE_H_
