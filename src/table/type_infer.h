#ifndef LAKE_TABLE_TYPE_INFER_H_
#define LAKE_TABLE_TYPE_INFER_H_

#include <string>
#include <string_view>
#include <vector>

#include "table/value.h"

namespace lake {

/// Infers the narrowest DataType that accommodates every non-empty cell in
/// `raw_cells` (bool < int < double < string). Returns kNull when every
/// cell is empty. Mirrors how lake ingestion must recover types from
/// untyped CSV, the "primitive formats" problem highlighted in §2.1 of the
/// survey.
DataType InferColumnType(const std::vector<std::string>& raw_cells);

/// Parses a raw cell under a target type; empty cells become Null. Cells
/// that fail to parse under the target degrade to strings (never lost).
Value ParseCell(std::string_view raw, DataType target);

}  // namespace lake

#endif  // LAKE_TABLE_TYPE_INFER_H_
