#ifndef LAKE_TABLE_TABLE_H_
#define LAKE_TABLE_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "table/column.h"
#include "table/schema.h"
#include "util/status.h"

namespace lake {

/// Free-text metadata attached to a lake table. Often missing or
/// inconsistent in real lakes — keyword search must tolerate empty fields.
struct TableMetadata {
  std::string description;
  std::vector<std::string> tags;
  std::string source;  // e.g. originating portal or file path
};

/// A relational table: a name, metadata, and equal-length columns.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const TableMetadata& metadata() const { return metadata_; }
  TableMetadata& metadata() { return metadata_; }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Adds a column; all columns must have equal length (checked).
  Status AddColumn(Column col);

  /// Index of the first column with this name, or -1.
  int FindColumn(const std::string& name) const;

  /// Appends one row; `row` must have num_columns() values.
  Status AppendRow(std::vector<Value> row);

  /// Derives the schema from column names and types.
  Schema GetSchema() const;

  /// A new table containing only the given column indices (projection).
  Result<Table> Project(const std::vector<size_t>& col_indices) const;

  /// Rows [begin, end) as a new table.
  Result<Table> Slice(size_t begin, size_t end) const;

  /// Renders first `max_rows` rows as aligned text (debugging, examples).
  std::string Preview(size_t max_rows = 10) const;

 private:
  std::string name_;
  TableMetadata metadata_;
  std::vector<Column> columns_;
};

}  // namespace lake

#endif  // LAKE_TABLE_TABLE_H_
