#include "table/catalog.h"

#include <filesystem>

#include "table/csv.h"
#include "table/table_meta.h"
#include "util/logging.h"

namespace lake {

Result<TableId> DataLakeCatalog::AddTable(Table table) {
  if (by_name_.count(table.name())) {
    return Status::AlreadyExists("table " + table.name());
  }
  const TableId id = static_cast<TableId>(tables_.size());
  by_name_[table.name()] = id;

  // Profile columns eagerly so reads are lock-free and const-correct.
  std::vector<ColumnStats> table_stats;
  table_stats.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    table_stats.push_back(ComputeColumnStats(table.column(c)));
  }
  stats_.push_back(std::move(table_stats));
  tables_.push_back(std::move(table));
  return id;
}

Result<std::vector<TableId>> DataLakeCatalog::LoadDirectory(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IoError("not a directory: " + dir);
  }
  std::vector<std::string> paths;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list " + dir + ": " + ec.message());
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  // Deterministic ingest order: directory_iterator order is
  // filesystem-specific, so sort by byte-wise filename (not the full
  // path, whose spelling of `dir` — trailing slash, "./" prefix — must
  // not influence table id assignment).
  std::sort(paths.begin(), paths.end(),
            [](const std::string& a, const std::string& b) {
              const std::string fa = fs::path(a).filename().string();
              const std::string fb = fs::path(b).filename().string();
              return fa != fb ? fa < fb : a < b;
            });
  quarantined_.clear();
  std::vector<TableId> ids;
  for (const std::string& path : paths) {
    auto table = ReadCsvFile(path);
    if (!table.ok()) {
      LAKE_LOG(Warning) << "quarantining " << path << ": "
                        << table.status().ToString();
      quarantined_.push_back(QuarantinedFile{path, table.status()});
      continue;
    }
    Result<TableId> id = AddTable(std::move(table).value());
    if (!id.ok()) {
      LAKE_LOG(Warning) << "quarantining " << path << ": "
                        << id.status().ToString();
      quarantined_.push_back(QuarantinedFile{path, id.status()});
      continue;
    }
    ids.push_back(id.value());
  }
  return ids;
}

Status DataLakeCatalog::SaveSnapshot(store::SnapshotWriter* snapshot) const {
  for (const Table& table : tables_) {
    snapshot->AddSection("table/" + table.name(), WriteCsvString(table));
    // CSV loses the free-text metadata keyword search scores over, so a
    // companion section carries it (see table_meta.h).
    if (HasMetadata(table.metadata())) {
      snapshot->AddSection(kTableMetaPrefix + table.name(),
                           SerializeTableMetadata(table.metadata()));
    }
  }
  return Status::OK();
}

Result<std::vector<TableId>> DataLakeCatalog::LoadSnapshot(
    const store::SnapshotReader& reader) {
  quarantined_.clear();
  std::vector<TableId> ids;
  for (const store::SnapshotReader::SectionInfo& section : reader.sections()) {
    if (section.name.rfind("table/", 0) != 0) continue;
    const std::string name = section.name.substr(6);
    Result<std::string> csv = reader.ReadSection(section.name);
    if (!csv.ok()) {
      LAKE_LOG(Warning) << "quarantining " << section.name << ": "
                        << csv.status().ToString();
      quarantined_.push_back(QuarantinedFile{section.name, csv.status()});
      continue;
    }
    Result<Table> table = ReadCsvString(*csv, name);
    if (!table.ok()) {
      LAKE_LOG(Warning) << "quarantining " << section.name << ": "
                        << table.status().ToString();
      quarantined_.push_back(QuarantinedFile{section.name, table.status()});
      continue;
    }
    // Companion metadata, when present. A damaged metadata section costs
    // the metadata, never the table.
    const std::string meta_section = kTableMetaPrefix + name;
    if (reader.has_section(meta_section)) {
      Result<std::string> meta_bytes = reader.ReadSection(meta_section);
      Result<TableMetadata> meta =
          meta_bytes.ok() ? ParseTableMetadata(*meta_bytes)
                          : Result<TableMetadata>(meta_bytes.status());
      if (meta.ok()) {
        table->metadata() = std::move(meta).value();
      } else {
        LAKE_LOG(Warning) << "quarantining " << meta_section << ": "
                          << meta.status().ToString();
        quarantined_.push_back(QuarantinedFile{meta_section, meta.status()});
      }
    }
    Result<TableId> id = AddTable(std::move(table).value());
    if (!id.ok()) {
      LAKE_LOG(Warning) << "quarantining " << section.name << ": "
                        << id.status().ToString();
      quarantined_.push_back(QuarantinedFile{section.name, id.status()});
      continue;
    }
    ids.push_back(id.value());
  }
  return ids;
}

Status DataLakeCatalog::SaveToDirectory(const std::string& dir) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir);
  for (const Table& table : tables_) {
    if (table.name().find('/') != std::string::npos) {
      return Status::InvalidArgument("table name contains '/': " +
                                     table.name());
    }
    LAKE_RETURN_IF_ERROR(
        WriteCsvFile(table, dir + "/" + table.name() + ".csv"));
  }
  return Status::OK();
}

size_t DataLakeCatalog::num_columns() const {
  size_t n = 0;
  for (const Table& t : tables_) n += t.num_columns();
  return n;
}

Result<TableId> DataLakeCatalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("table " + name);
  return it->second;
}

const Column& DataLakeCatalog::column(const ColumnRef& ref) const {
  LAKE_CHECK(ref.table_id < tables_.size());
  const Table& t = tables_[ref.table_id];
  LAKE_CHECK(ref.column_index < t.num_columns());
  return t.column(ref.column_index);
}

const ColumnStats& DataLakeCatalog::stats(const ColumnRef& ref) const {
  LAKE_CHECK(ref.table_id < stats_.size());
  LAKE_CHECK(ref.column_index < stats_[ref.table_id].size());
  return stats_[ref.table_id][ref.column_index];
}

void DataLakeCatalog::ForEachColumn(
    const std::function<void(const ColumnRef&, const Column&)>& fn) const {
  for (TableId t = 0; t < tables_.size(); ++t) {
    for (uint32_t c = 0; c < tables_[t].num_columns(); ++c) {
      fn(ColumnRef{t, c}, tables_[t].column(c));
    }
  }
}

std::vector<ColumnRef> DataLakeCatalog::AllColumns() const {
  std::vector<ColumnRef> out;
  out.reserve(num_columns());
  for (TableId t = 0; t < tables_.size(); ++t) {
    for (uint32_t c = 0; c < tables_[t].num_columns(); ++c) {
      out.push_back(ColumnRef{t, c});
    }
  }
  return out;
}

std::vector<TableId> DataLakeCatalog::AllTables() const {
  std::vector<TableId> out(tables_.size());
  for (TableId t = 0; t < tables_.size(); ++t) out[t] = t;
  return out;
}

}  // namespace lake
