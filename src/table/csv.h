#ifndef LAKE_TABLE_CSV_H_
#define LAKE_TABLE_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace lake {

/// CSV parsing options (RFC 4180 semantics: quoted fields, doubled quotes,
/// embedded newlines inside quotes).
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// When true (default) column types are inferred; otherwise everything is
  /// kept as strings.
  bool infer_types = true;
};

/// Parses CSV text into a table. Ragged rows are padded/truncated to the
/// header width — real lake CSVs are frequently malformed and discovery
/// systems must not reject them outright.
Result<Table> ReadCsvString(std::string_view text, std::string table_name,
                            const CsvOptions& options = {});

/// Reads and parses a CSV file; the table name defaults to the basename
/// without extension.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table to RFC 4180 CSV.
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

namespace internal_csv {
/// Splits raw CSV text into rows of fields. Exposed for testing.
std::vector<std::vector<std::string>> ParseRows(std::string_view text,
                                                char delimiter);
}  // namespace internal_csv

}  // namespace lake

#endif  // LAKE_TABLE_CSV_H_
