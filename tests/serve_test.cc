#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "serve/result_cache.h"
#include "util/cancel.h"

namespace lake::serve {
namespace {

// ---------------------------------------------------------------- metrics

TEST(LatencyHistogramTest, BucketBoundsAreConsistent) {
  for (uint64_t us : {0ull, 1ull, 3ull, 4ull, 7ull, 100ull, 1023ull, 1024ull,
                      999999ull, 123456789ull}) {
    const size_t index = LatencyHistogram::BucketIndex(us);
    EXPECT_GE(us, LatencyHistogram::BucketLowerBound(index))
        << "us=" << us << " index=" << index;
    if (index + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_LT(us, LatencyHistogram::BucketLowerBound(index + 1))
          << "us=" << us << " index=" << index;
    }
  }
}

TEST(LatencyHistogramTest, QuantilesOfUniformSamples) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  const LatencyHistogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 1000u);
  // Log-scale buckets bound relative error by ~12.5% per octave plus
  // interpolation; allow a loose band.
  EXPECT_NEAR(snap.Quantile(0.5), 500.0, 150.0);
  EXPECT_NEAR(snap.Quantile(0.95), 950.0, 200.0);
  EXPECT_NEAR(snap.Quantile(0.99), 990.0, 200.0);
  EXPECT_DOUBLE_EQ(snap.max_micros, 1000.0);
  EXPECT_NEAR(snap.mean(), 500.5, 1.0);
}

TEST(LatencyHistogramTest, PercentileOfEmptyHistogramIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 0.0);
}

TEST(LatencyHistogramTest, PercentileOfSingleBucketIsBoundedBySample) {
  LatencyHistogram hist;
  hist.Record(5000);
  EXPECT_EQ(hist.count(), 1u);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_LE(hist.Percentile(q), 5000.0) << "q=" << q;
    EXPECT_GT(hist.Percentile(q), 4000.0) << "q=" << q;  // same bucket
  }
}

TEST(LatencyHistogramTest, PercentileInterpolatesAcrossBuckets) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000u);
  // Matches Snapshot::Quantile (same code path) within the log-bucket
  // resolution, and quantiles are monotone in q.
  EXPECT_NEAR(hist.Percentile(0.5), 500.0, 150.0);
  EXPECT_NEAR(hist.Percentile(0.95), 950.0, 200.0);
  EXPECT_LE(hist.Percentile(0.5), hist.Percentile(0.9));
  EXPECT_LE(hist.Percentile(0.9), hist.Percentile(0.99));
  EXPECT_LE(hist.Percentile(0.99), 1000.0);
}

TEST(LatencyHistogramTest, SingleSampleQuantiles) {
  LatencyHistogram hist;
  hist.Record(5000);
  const LatencyHistogram::Snapshot snap = hist.Snap();
  EXPECT_LE(snap.Quantile(0.5), 5000.0);
  EXPECT_GT(snap.Quantile(0.5), 4000.0);  // same bucket as the sample
  EXPECT_LE(snap.Quantile(0.99), 5000.0);
}

TEST(LatencyHistogramTest, QuantileEdgeCasesAreExactExtremes) {
  LatencyHistogram hist;
  hist.Record(37);
  hist.Record(5000);
  hist.Record(120);
  const LatencyHistogram::Snapshot snap = hist.Snap();
  // q<=0 is the exact tracked minimum, q>=1 (and out-of-range q) the
  // exact tracked maximum — no bucket interpolation at the extremes.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(-1.0), 37.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 5000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(2.0), 5000.0);
  EXPECT_DOUBLE_EQ(snap.min_micros, 37.0);
  EXPECT_DOUBLE_EQ(snap.max_micros, 5000.0);
  // Interior quantiles never extrapolate past an observed sample.
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_GE(snap.Quantile(q), 37.0) << "q=" << q;
    EXPECT_LE(snap.Quantile(q), 5000.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantileOfNanIsMinNotGarbage) {
  LatencyHistogram hist;
  hist.Record(100);
  const LatencyHistogram::Snapshot snap = hist.Snap();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(snap.Quantile(nan), 100.0);  // NaN treated as q=0
  // And an empty histogram stays 0 for every q, NaN included.
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.Snap().Quantile(nan), 0.0);
  EXPECT_DOUBLE_EQ(empty.Snap().Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Snap().Quantile(1.0), 0.0);
}

TEST(MetricsRegistryTest, CountersAndStablePointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests");
  c->Add();
  c->Add(4);
  EXPECT_EQ(registry.GetCounter("requests"), c);
  EXPECT_EQ(c->value(), 5u);
  const MetricsRegistry::Snapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "requests");
  EXPECT_EQ(snap.counters[0].second, 5u);
}

TEST(MetricsRegistryTest, TextAndJsonDumps) {
  MetricsRegistry registry;
  registry.GetCounter("a.b")->Add(3);
  registry.GetHistogram("lat")->Record(100);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("a.b: 3"), std::string::npos);
  EXPECT_NE(text.find("lat:"), std::string::npos);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a.b\":3"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotBinaryRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("served")->Add(12);
  registry.GetCounter("rejected")->Add(1);
  LatencyHistogram* hist = registry.GetHistogram("latency");
  for (int i = 0; i < 100; ++i) hist->Record(10.0 * i);
  const MetricsRegistry::Snapshot snap = registry.Snap();

  std::stringstream buffer;
  BinaryWriter writer(&buffer);
  ASSERT_TRUE(WriteSnapshot(snap, &writer).ok());
  BinaryReader reader(&buffer);
  Result<MetricsRegistry::Snapshot> loaded = ReadSnapshot(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->counters.size(), snap.counters.size());
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(loaded->counters[i], snap.counters[i]);
  }
  ASSERT_EQ(loaded->histograms.size(), 1u);
  EXPECT_EQ(loaded->histograms[0].name, "latency");
  EXPECT_EQ(loaded->histograms[0].count, snap.histograms[0].count);
  EXPECT_DOUBLE_EQ(loaded->histograms[0].p95_us, snap.histograms[0].p95_us);
  EXPECT_DOUBLE_EQ(loaded->histograms[0].max_us, snap.histograms[0].max_us);
}

TEST(MetricsRegistryTest, ReadSnapshotRejectsGarbage) {
  std::stringstream buffer("not a snapshot at all");
  BinaryReader reader(&buffer);
  EXPECT_FALSE(ReadSnapshot(&reader).ok());
}

// ------------------------------------------------------------------ cache

CachedResult MakeTables(int n, size_t why_bytes = 8) {
  CachedResult r;
  for (int i = 0; i < n; ++i) {
    r.tables.push_back(
        TableResult{static_cast<TableId>(i), 1.0, std::string(why_bytes, 'x')});
  }
  return r;
}

TEST(ResultCacheTest, LookupMissThenHit) {
  ResultCache cache(ResultCache::Options{4, 1 << 20});
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(7, &out));
  cache.Insert(7, MakeTables(3));
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out.tables.size(), 3u);
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderMemoryBound) {
  // One shard so the LRU order is globally observable; capacity fits only
  // a couple of entries.
  const size_t entry_bytes = MakeTables(1, 256).ApproxBytes();
  ResultCache cache(ResultCache::Options{1, entry_bytes * 3});
  cache.Insert(1, MakeTables(1, 256));
  cache.Insert(2, MakeTables(1, 256));
  cache.Insert(3, MakeTables(1, 256));
  CachedResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));  // promote 1; 2 is now LRU
  cache.Insert(4, MakeTables(1, 256));
  EXPECT_FALSE(cache.Lookup(2, &out));
  EXPECT_TRUE(cache.Lookup(1, &out));
  EXPECT_TRUE(cache.Lookup(3, &out));
  EXPECT_TRUE(cache.Lookup(4, &out));
  EXPECT_GE(cache.GetStats().evictions, 1u);
}

TEST(ResultCacheTest, CapacityBoundHolds) {
  ResultCache cache(ResultCache::Options{2, 4096});
  for (uint64_t key = 0; key < 200; ++key) {
    cache.Insert(key, MakeTables(2, 64));
  }
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ResultCacheTest, OversizedValueNotAdmitted) {
  ResultCache cache(ResultCache::Options{1, 512});
  cache.Insert(1, MakeTables(100, 256));  // far larger than the whole cache
  CachedResult out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.GetStats().insertions, 0u);
}

TEST(ResultCacheTest, ClearDropsEverything) {
  ResultCache cache(ResultCache::Options{4, 1 << 20});
  for (uint64_t key = 0; key < 16; ++key) cache.Insert(key, MakeTables(1));
  cache.Clear();
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheTest, StatsBinaryRoundTrip) {
  ResultCache cache(ResultCache::Options{2, 1 << 16});
  cache.Insert(1, MakeTables(2));
  CachedResult out;
  cache.Lookup(1, &out);
  cache.Lookup(99, &out);
  const ResultCache::Stats stats = cache.GetStats();

  std::stringstream buffer;
  BinaryWriter writer(&buffer);
  ASSERT_TRUE(WriteStats(stats, &writer).ok());
  BinaryReader reader(&buffer);
  Result<ResultCache::Stats> loaded = ReadStats(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->hits, stats.hits);
  EXPECT_EQ(loaded->misses, stats.misses);
  EXPECT_EQ(loaded->insertions, stats.insertions);
  EXPECT_EQ(loaded->entries, stats.entries);
  EXPECT_EQ(loaded->bytes, stats.bytes);
}

// ---------------------------------------------------------- query service

/// Small generated lake + engine shared by the service tests (indexes are
/// immutable; each test builds its own service).
class QueryServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 11;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());

    DiscoveryEngine::Options eopts;
    eopts.build_pexeso = false;
    eopts.build_mate = false;
    eopts.build_tus = false;
    eopts.build_santos = false;
    eopts.build_d3l = false;
    eopts.synthesize_kb = false;
    eopts.train_annotator = false;
    engine_ = new DiscoveryEngine(&lake_->catalog, &lake_->kb, eopts);
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete lake_;
    engine_ = nullptr;
    lake_ = nullptr;
  }

  static QueryRequest JoinRequest() {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.join_method = JoinMethod::kJosie;
    req.values = lake_->catalog.table(0).column(0).DistinctStrings();
    req.k = 5;
    return req;
  }

  static QueryRequest UnionRequest() {
    QueryRequest req;
    req.kind = QueryKind::kUnion;
    req.union_method = UnionMethod::kStarmie;
    req.union_table = &lake_->catalog.table(0);
    req.exclude = 0;
    req.k = 5;
    return req;
  }

  static GeneratedLake* lake_;
  static DiscoveryEngine* engine_;
};

GeneratedLake* QueryServiceTest::lake_ = nullptr;
DiscoveryEngine* QueryServiceTest::engine_ = nullptr;

TEST_F(QueryServiceTest, KeywordMatchesDirectEngineCall) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest req;
  req.kind = QueryKind::kKeyword;
  req.keyword = lake_->topic_of[0];
  req.k = 5;
  const QueryResponse response = service.Execute(req);
  ASSERT_TRUE(response.status.ok()) << response.status;
  const std::vector<TableResult> direct =
      engine_->Keyword(lake_->topic_of[0], 5);
  ASSERT_EQ(response.tables.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(response.tables[i].table_id, direct[i].table_id);
    EXPECT_DOUBLE_EQ(response.tables[i].score, direct[i].score);
  }
}

TEST_F(QueryServiceTest, JoinMatchesDirectEngineCall) {
  QueryService service(engine_, QueryService::Options{});
  const QueryResponse response = service.Execute(JoinRequest());
  ASSERT_TRUE(response.status.ok()) << response.status;
  const auto direct =
      engine_->Joinable(JoinRequest().values, JoinMethod::kJosie, 5);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(response.columns.size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(response.columns[i].column, (*direct)[i].column);
    EXPECT_DOUBLE_EQ(response.columns[i].score, (*direct)[i].score);
  }
}

TEST_F(QueryServiceTest, UnionExecutes) {
  QueryService service(engine_, QueryService::Options{});
  const QueryResponse response = service.Execute(UnionRequest());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_FALSE(response.tables.empty());
  for (const TableResult& t : response.tables) {
    EXPECT_NE(t.table_id, 0u);  // exclude honored
  }
}

TEST_F(QueryServiceTest, CorrelatedExecutes) {
  QueryService service(engine_, QueryService::Options{});
  // Build a correlated query from a lake table: its first string column as
  // key, first numeric column as target.
  const Table& table = lake_->catalog.table(0);
  QueryRequest req;
  req.kind = QueryKind::kCorrelated;
  req.k = 5;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (!table.column(c).IsNumeric() && req.values.empty()) {
      req.values = table.column(c).NonNullStrings();
    }
    if (table.column(c).IsNumeric() && req.numeric_values.empty()) {
      req.numeric_values = table.column(c).Numbers();
    }
  }
  ASSERT_FALSE(req.values.empty());
  ASSERT_FALSE(req.numeric_values.empty());
  const size_t rows = std::min(req.values.size(), req.numeric_values.size());
  req.values.resize(rows);
  req.numeric_values.resize(rows);
  const QueryResponse response = service.Execute(req);
  EXPECT_TRUE(response.status.ok()) << response.status;
}

TEST_F(QueryServiceTest, SecondIdenticalQueryHitsCache) {
  QueryService service(engine_, QueryService::Options{});
  const QueryResponse cold = service.Execute(JoinRequest());
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  const QueryResponse warm = service.Execute(JoinRequest());
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_EQ(warm.columns.size(), cold.columns.size());
  for (size_t i = 0; i < cold.columns.size(); ++i) {
    EXPECT_EQ(warm.columns[i].column, cold.columns[i].column);
    EXPECT_DOUBLE_EQ(warm.columns[i].score, cold.columns[i].score);
  }
  const ResultCache::Stats stats = service.cache().GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(QueryServiceTest, BypassCacheSkipsLookupAndInsert) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest req = JoinRequest();
  req.bypass_cache = true;
  EXPECT_FALSE(service.Execute(req).cache_hit);
  EXPECT_FALSE(service.Execute(req).cache_hit);
  const ResultCache::Stats stats = service.cache().GetStats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST_F(QueryServiceTest, CacheKeyIgnoresJoinValueOrder) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest a = JoinRequest();
  QueryRequest b = a;
  std::reverse(b.values.begin(), b.values.end());
  EXPECT_EQ(service.CacheKey(a), service.CacheKey(b));
  b.k = a.k + 1;
  EXPECT_NE(service.CacheKey(a), service.CacheKey(b));
}

TEST_F(QueryServiceTest, InvalidateCacheBumpsEpochAndMisses) {
  QueryService service(engine_, QueryService::Options{});
  const uint64_t key_before = service.CacheKey(JoinRequest());
  ASSERT_TRUE(service.Execute(JoinRequest()).status.ok());
  service.InvalidateCache();
  EXPECT_NE(service.CacheKey(JoinRequest()), key_before);
  const QueryResponse after = service.Execute(JoinRequest());
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
}

TEST_F(QueryServiceTest, ZeroDeadlineReturnsDeadlineExceeded) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest req = JoinRequest();
  req.deadline = std::chrono::milliseconds(0);
  const QueryResponse response = service.Execute(req);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.columns.empty());
  // The expired query must not have populated the cache.
  EXPECT_EQ(service.cache().GetStats().insertions, 0u);
  // And a later unconstrained run is a miss, not a hit.
  const QueryResponse fresh = service.Execute(JoinRequest());
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);
}

TEST_F(QueryServiceTest, ZeroDeadlineOnEveryKind) {
  QueryService service(engine_, QueryService::Options{});
  for (QueryRequest req :
       {JoinRequest(), UnionRequest()}) {
    req.deadline = std::chrono::milliseconds(0);
    EXPECT_EQ(service.Execute(req).status.code(),
              StatusCode::kDeadlineExceeded);
  }
}

TEST_F(QueryServiceTest, CancelledQueryReturnsCancelledAndSkipsCache) {
  // Deterministic mid-flight cancellation: the worker blocks in the
  // pre-execute hook until the test has cancelled the token.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  QueryService::Options opts;
  bool first = true;
  opts.pre_execute_hook = [&entered, release_future,
                           &first](const QueryRequest&) {
    if (!first) return;
    first = false;
    entered.set_value();
    release_future.wait();
  };
  QueryService service(engine_, opts);
  Result<SubmittedQuery> submitted = service.Submit(JoinRequest());
  ASSERT_TRUE(submitted.ok());
  entered.get_future().wait();
  submitted->cancel->Cancel();
  release.set_value();
  const QueryResponse response = submitted->response.get();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(service.cache().GetStats().insertions, 0u);
}

TEST_F(QueryServiceTest, OverloadedWhenAdmissionQueueFull) {
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  QueryService::Options opts;
  opts.num_workers = 1;
  opts.max_pending = 1;
  bool first = true;
  opts.pre_execute_hook = [&entered, release_future,
                           &first](const QueryRequest&) {
    if (!first) return;
    first = false;
    entered.set_value();
    release_future.wait();
  };
  QueryService service(engine_, opts);
  Result<SubmittedQuery> first_query = service.Submit(JoinRequest());
  ASSERT_TRUE(first_query.ok());
  entered.get_future().wait();
  // The slot is occupied: the next submit must be rejected immediately.
  Result<SubmittedQuery> second_query = service.Submit(JoinRequest());
  ASSERT_FALSE(second_query.ok());
  EXPECT_EQ(second_query.status().code(), StatusCode::kOverloaded);
  release.set_value();
  EXPECT_TRUE(first_query->response.get().status.ok());
  EXPECT_EQ(service.metrics().GetCounter("serve.queries.rejected")->value(),
            1u);
}

TEST_F(QueryServiceTest, InvalidRequestsRejectedUpfront) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest empty_keyword;
  empty_keyword.kind = QueryKind::kKeyword;
  EXPECT_EQ(service.Submit(std::move(empty_keyword)).status().code(),
            StatusCode::kInvalidArgument);
  QueryRequest no_table;
  no_table.kind = QueryKind::kUnion;
  EXPECT_EQ(service.Submit(std::move(no_table)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, JoinWithoutValuesRejected) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest req;
  req.kind = QueryKind::kJoin;
  const Result<SubmittedQuery> submitted = service.Submit(std::move(req));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, CorrelatedWithoutEitherColumnRejected) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest no_numeric;
  no_numeric.kind = QueryKind::kCorrelated;
  no_numeric.values = {"a", "b"};
  EXPECT_EQ(service.Submit(std::move(no_numeric)).status().code(),
            StatusCode::kInvalidArgument);
  QueryRequest no_keys;
  no_keys.kind = QueryKind::kCorrelated;
  no_keys.numeric_values = {1.0, 2.0};
  EXPECT_EQ(service.Submit(std::move(no_keys)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, CorrelatedMismatchedColumnLengthsRejected) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest req;
  req.kind = QueryKind::kCorrelated;
  req.values = {"a", "b", "c"};
  req.numeric_values = {1.0, 2.0};
  const Result<SubmittedQuery> submitted = service.Submit(std::move(req));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
  // The message names both lengths so the caller can fix the request.
  EXPECT_NE(submitted.status().message().find("3"), std::string::npos);
  EXPECT_NE(submitted.status().message().find("2"), std::string::npos);
}

TEST_F(QueryServiceTest, RejectedRequestsNeverReachExecutionOrMetrics) {
  QueryService service(engine_, QueryService::Options{});
  QueryRequest bad;
  bad.kind = QueryKind::kCorrelated;
  bad.values = {"a"};
  ASSERT_FALSE(service.Submit(std::move(bad)).ok());
  EXPECT_EQ(service.metrics().GetCounter("serve.queries.admitted")->value(),
            0u);
  EXPECT_EQ(service.pending(), 0u);
}

TEST_F(QueryServiceTest, ConcurrentMixedWorkloadIsConsistent) {
  QueryService::Options opts;
  opts.num_workers = 4;
  opts.max_pending = 1024;
  QueryService service(engine_, opts);
  const QueryResponse reference = service.Execute(JoinRequest());
  ASSERT_TRUE(reference.status.ok());

  std::vector<SubmittedQuery> inflight;
  for (int i = 0; i < 64; ++i) {
    QueryRequest req;
    if (i % 3 == 0) {
      req = JoinRequest();
    } else if (i % 3 == 1) {
      req.kind = QueryKind::kKeyword;
      req.keyword = lake_->topic_of[i % lake_->topic_of.size()];
      req.k = 5;
    } else {
      req = UnionRequest();
    }
    Result<SubmittedQuery> submitted = service.Submit(std::move(req));
    ASSERT_TRUE(submitted.ok());
    inflight.push_back(std::move(submitted).value());
  }
  size_t join_checked = 0;
  for (size_t i = 0; i < inflight.size(); ++i) {
    const QueryResponse response = inflight[i].response.get();
    ASSERT_TRUE(response.status.ok()) << response.status;
    if (i % 3 == 0) {
      ASSERT_EQ(response.columns.size(), reference.columns.size());
      for (size_t j = 0; j < response.columns.size(); ++j) {
        EXPECT_DOUBLE_EQ(response.columns[j].score,
                         reference.columns[j].score);
      }
      ++join_checked;
    }
  }
  EXPECT_GT(join_checked, 0u);
  EXPECT_GT(service.cache().GetStats().hits, 0u);
  EXPECT_EQ(service.pending(), 0u);
  // Every admitted query was recorded in a latency histogram.
  uint64_t recorded = 0;
  for (const auto& row : service.metrics().Snap().histograms) {
    if (row.name.rfind("serve.latency.", 0) == 0) recorded += row.count;
  }
  EXPECT_EQ(recorded, 65u);  // 64 + the reference query
}

}  // namespace
}  // namespace lake::serve
