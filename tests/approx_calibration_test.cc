// Statistical calibration of every estimator in the system against the
// brute-force DiscoveryOracle: the sketch estimators from src/sketch (HLL
// cardinality, KMV cardinality/Jaccard/containment, MinHash
// Jaccard/containment) and the approximate tier's interval estimator.
// Each estimator gets >= 1000 seeded trials; acceptance checks that
// empirical error stays within the advertised bound for >= 95% of trials,
// that ApproxEstimator's intervals cover the truth at least as often as
// advertised (1 - error_budget), and that approximate top-k search keeps
// recall@k >= 0.95 against the oracle at the default budget.
//
// Everything is seeded: a failure here is a real calibration regression,
// not flakiness.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "approx/approx_search.h"
#include "approx/estimator.h"
#include "approx/oracle.h"
#include "lakegen/benchmark_lakes.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "table/catalog.h"
#include "table/table.h"
#include "util/logging.h"
#include "util/random.h"

namespace lake {
namespace {

using approx::ApproxEstimator;
using approx::ApproxJoinSearch;
using approx::DiscoveryOracle;
using approx::IntervalEstimate;

constexpr size_t kTrials = 1000;

/// Contiguous slice of the value universe: exactly `n` distinct values,
/// so set overlaps are controlled by offsets alone.
std::vector<std::string> Range(size_t offset, size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back("u" + std::to_string(offset + i));
  }
  return out;
}

/// One seeded trial's operand pair: |A| = n, |B| = m, overlapping by
/// whatever the offsets imply (possibly nothing).
struct TrialSets {
  std::vector<std::string> a;
  std::vector<std::string> b;
};

TrialSets MakeTrial(Rng& rng, size_t min_size, size_t max_size) {
  const size_t n = static_cast<size_t>(rng.NextInt(
      static_cast<int64_t>(min_size), static_cast<int64_t>(max_size)));
  const size_t m = static_cast<size_t>(rng.NextInt(
      static_cast<int64_t>(min_size), static_cast<int64_t>(max_size)));
  const size_t a_off = rng.NextBounded(1u << 20);
  // B starts somewhere in [a_off, a_off + n]: overlap ranges from full
  // (shift 0) to empty (shift n), covering the whole containment range.
  const size_t b_off = a_off + rng.NextBounded(n + 1);
  return TrialSets{Range(a_off, n), Range(b_off, m)};
}

// --- HLL cardinality ------------------------------------------------------

TEST(SketchCalibrationTest, HllCardinalityWithinAdvertisedError) {
  // Advertised relative standard error for precision p: 1.04 / sqrt(2^p).
  const int precision = 12;
  const double rse = 1.04 / std::sqrt(static_cast<double>(1 << precision));
  Rng rng(0xca11b001);
  size_t within = 0;
  double sum_rel_err = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const size_t n = static_cast<size_t>(rng.NextInt(200, 6000));
    const std::vector<std::string> values = Range(rng.NextBounded(1u << 20), n);
    const double est = HllSketch::Build(values, precision).Estimate();
    const double exact =
        static_cast<double>(DiscoveryOracle::ExactDistinct(values));
    const double rel_err = std::abs(est - exact) / exact;
    sum_rel_err += rel_err;
    if (rel_err <= 3.0 * rse) ++within;
  }
  // 3 sigma holds ~99.7% of a well-calibrated estimator's trials; 95% is
  // the regression floor.
  EXPECT_GE(within, kTrials * 95 / 100) << "within-3sigma count";
  EXPECT_LE(sum_rel_err / kTrials, 2.0 * rse) << "mean relative error";
}

// --- KMV cardinality / Jaccard / containment ------------------------------

TEST(SketchCalibrationTest, KmvEstimatesWithinAdvertisedError) {
  const size_t k = 256;
  // Cardinality RSE ~ 1/sqrt(k - 2); Jaccard sd <= sqrt(0.25 / k).
  const double card_rse = 1.0 / std::sqrt(static_cast<double>(k - 2));
  const double jac_sd = std::sqrt(0.25 / static_cast<double>(k));
  Rng rng(0xca11b002);
  size_t card_within = 0, jac_within = 0, cont_within = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const TrialSets sets = MakeTrial(rng, 600, 6000);
    const KmvSketch ka = KmvSketch::Build(sets.a, k);
    const KmvSketch kb = KmvSketch::Build(sets.b, k);

    const double exact_a =
        static_cast<double>(DiscoveryOracle::ExactDistinct(sets.a));
    if (std::abs(ka.EstimateDistinct() - exact_a) / exact_a <= 3.0 * card_rse) {
      ++card_within;
    }

    const double jac = ka.EstimateJaccard(kb).value();
    if (std::abs(jac - DiscoveryOracle::ExactJaccard(sets.a, sets.b)) <=
        3.0 * jac_sd) {
      ++jac_within;
    }

    // Containment compounds the Jaccard and two cardinality estimates, so
    // its bound is looser: 3 Jaccard sigmas plus the cardinality slack.
    const double cont = ka.EstimateContainment(kb).value();
    if (std::abs(cont - DiscoveryOracle::ExactContainment(sets.a, sets.b)) <=
        3.0 * jac_sd + 3.0 * card_rse) {
      ++cont_within;
    }
  }
  EXPECT_GE(card_within, kTrials * 95 / 100);
  EXPECT_GE(jac_within, kTrials * 95 / 100);
  EXPECT_GE(cont_within, kTrials * 95 / 100);
}

// --- MinHash Jaccard / containment ----------------------------------------

TEST(SketchCalibrationTest, MinHashEstimatesWithinAdvertisedError) {
  const size_t num_hashes = 128;
  // Each signature position is an i.i.d. Bernoulli(J) match, so the
  // Jaccard estimator's sd is sqrt(J(1-J)/h) <= sqrt(0.25/h).
  const double jac_sd = std::sqrt(0.25 / static_cast<double>(num_hashes));
  Rng rng(0xca11b003);
  size_t jac_within = 0, cont_within = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const TrialSets sets = MakeTrial(rng, 200, 1200);
    const MinHashSignature ma = MinHashSignature::Build(sets.a, num_hashes);
    const MinHashSignature mb = MinHashSignature::Build(sets.b, num_hashes);

    const double jac = ma.EstimateJaccard(mb).value();
    if (std::abs(jac - DiscoveryOracle::ExactJaccard(sets.a, sets.b)) <=
        3.0 * jac_sd) {
      ++jac_within;
    }

    // Containment uses exact cardinalities, so the only noise is the
    // Jaccard estimate pushed through |A∩B| = J/(1+J)(|A|+|B|); the
    // derivative of that map is bounded by ~2 at J near 0, hence 2x.
    const size_t card_a = DiscoveryOracle::ExactDistinct(sets.a);
    const size_t card_b = DiscoveryOracle::ExactDistinct(sets.b);
    const double cont = ma.EstimateContainment(mb, card_a, card_b).value();
    if (std::abs(cont - DiscoveryOracle::ExactContainment(sets.a, sets.b)) <=
        2.0 * 3.0 * jac_sd) {
      ++cont_within;
    }
  }
  EXPECT_GE(jac_within, kTrials * 95 / 100);
  EXPECT_GE(cont_within, kTrials * 95 / 100);
}

// --- ApproxEstimator interval coverage ------------------------------------

class ApproxCalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkewedSetsOptions opts;
    opts.seed = 43;
    opts.num_sets = 150;
    opts.min_set_size = 32;
    opts.max_set_size = 4096;
    opts.num_queries = 12;
    opts.query_size = 128;
    opts.universe_size = 30000;
    workload_ = new SkewedSetsWorkload(MakeSkewedSetsWorkload(opts));
    catalog_ = new DataLakeCatalog();
    for (size_t s = 0; s < workload_->sets.size(); ++s) {
      Table t("set" + std::to_string(s));
      Column c("values", DataType::kString);
      for (const auto& v : workload_->sets[s]) c.Append(Value(v));
      LAKE_CHECK(t.AddColumn(std::move(c)).ok());
      LAKE_CHECK(catalog_->AddTable(std::move(t)).ok());
    }
    oracle_ = new DiscoveryOracle(catalog_);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete catalog_;
    delete workload_;
    oracle_ = nullptr;
    catalog_ = nullptr;
    workload_ = nullptr;
  }

  static SkewedSetsWorkload* workload_;
  static DataLakeCatalog* catalog_;
  static DiscoveryOracle* oracle_;
};

SkewedSetsWorkload* ApproxCalibrationTest::workload_ = nullptr;
DataLakeCatalog* ApproxCalibrationTest::catalog_ = nullptr;
DiscoveryOracle* ApproxCalibrationTest::oracle_ = nullptr;

TEST_F(ApproxCalibrationTest, IntervalCoverageMeetsAdvertisedConfidence) {
  ApproxEstimator::Options opts;
  opts.max_sample = 256;
  ApproxEstimator est(catalog_, opts);
  ASSERT_EQ(est.num_indexed_columns(), oracle_->num_indexed_columns());
  const double error_budget = 0.1;  // advertised coverage >= 0.9
  size_t interval_trials = 0;
  size_t covered = 0;
  for (const auto& query_values : workload_->queries) {
    const HashedSet query = est.QuerySet(query_values);
    for (size_t i = 0; i < est.num_indexed_columns(); ++i) {
      // Small sample prefix: forces genuine (non-exhaustive) intervals on
      // the large columns while small columns degenerate to exact.
      const IntervalEstimate e =
          est.EstimateContainment(query, i, 64, error_budget);
      if (e.exact) continue;  // degenerate: no probability statement made
      ++interval_trials;
      const double truth = oracle_->ContainmentOf(query_values, i);
      if (e.lo - 1e-12 <= truth && truth <= e.hi + 1e-12) ++covered;
    }
  }
  ASSERT_GE(interval_trials, kTrials)
      << "workload too small for a calibration claim";
  const double coverage =
      static_cast<double>(covered) / static_cast<double>(interval_trials);
  // Hoeffding is conservative, so empirical coverage should sit well above
  // the advertised floor, not near it.
  EXPECT_GE(coverage, 1.0 - error_budget)
      << covered << "/" << interval_trials;
}

TEST_F(ApproxCalibrationTest, TopKRecallAtDefaultBudget) {
  ApproxJoinSearch search(catalog_);  // default options: budget 0.1
  const size_t k = 10;
  double recall_sum = 0;
  size_t queries = 0;
  for (const auto& query_values : workload_->queries) {
    const auto approx_top = search.Search(query_values, k).value();
    const auto exact_top = oracle_->TopKByContainment(query_values, k);
    if (exact_top.empty()) continue;
    std::set<TableId> got;
    for (const ColumnResult& r : approx_top) got.insert(r.column.table_id);
    size_t hit = 0;
    for (const ColumnResult& r : exact_top) {
      if (got.count(r.column.table_id)) ++hit;
    }
    recall_sum +=
        static_cast<double>(hit) / static_cast<double>(exact_top.size());
    ++queries;
  }
  ASSERT_GT(queries, 0u);
  EXPECT_GE(recall_sum / static_cast<double>(queries), 0.95);
}

}  // namespace
}  // namespace lake
