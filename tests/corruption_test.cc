// Corruption sweeps and end-to-end degraded-mode serving: every single-byte
// corruption or truncation of a persisted index must surface as a non-OK
// Status (or load an equivalent index when the damaged byte is outside any
// verified region) — never a crash — and a service whose snapshot sections
// are partly corrupt must keep serving the healthy modalities.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/hnsw.h"
#include "index/josie.h"
#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "util/failpoint.h"

namespace lake {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_corrupt_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------ HNSW sweep

HnswIndex BuildSmallHnsw() {
  HnswIndex::Options options;
  options.dim = 8;
  options.m = 4;
  options.ef_construction = 32;
  HnswIndex index(options);
  for (uint64_t i = 0; i < 12; ++i) {
    Vector vec(8);
    for (size_t d = 0; d < 8; ++d) {
      vec[d] = static_cast<float>((i * 31 + d * 7) % 13) - 6.0f;
    }
    EXPECT_TRUE(index.Insert(i, std::move(vec)).ok());
  }
  return index;
}

Vector ProbeVector() {
  Vector q(8);
  for (size_t d = 0; d < 8; ++d) q[d] = static_cast<float>(d) - 3.5f;
  return q;
}

TEST(CorruptionSweepTest, HnswEveryByteFlip) {
  const std::string dir = TestDir("hnsw_flip");
  const std::string path = dir + "/hnsw.lks";
  const HnswIndex original = BuildSmallHnsw();
  ASSERT_TRUE(original.SaveToFile(path).ok());
  const std::string clean = ReadFileBytes(path);
  ASSERT_GT(clean.size(), 100u);

  const auto baseline = original.Search(ProbeVector(), 5);
  ASSERT_TRUE(baseline.ok());

  const std::string corrupt_path = dir + "/corrupt.lks";
  size_t rejected = 0;
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] ^= 1;
    WriteFileBytes(corrupt_path, bytes);

    HnswIndex loaded(HnswIndex::Options{});
    const Status status = loaded.LoadFromFile(corrupt_path);
    if (!status.ok()) {
      ++rejected;
      continue;
    }
    // A flip the checksums cannot see (e.g. in the declared section count)
    // must still yield an index equivalent to the original: all data
    // bytes are CRC-verified.
    EXPECT_EQ(loaded.size(), original.size()) << "byte " << i;
    const auto got = loaded.Search(ProbeVector(), 5);
    ASSERT_TRUE(got.ok()) << "byte " << i;
    ASSERT_EQ(got->size(), baseline->size()) << "byte " << i;
    for (size_t r = 0; r < got->size(); ++r) {
      EXPECT_EQ((*got)[r].id, (*baseline)[r].id) << "byte " << i;
    }
  }
  // The overwhelming majority of flips must be caught outright.
  EXPECT_GT(rejected, clean.size() * 9 / 10);
}

TEST(CorruptionSweepTest, HnswEveryTruncation) {
  const std::string dir = TestDir("hnsw_trunc");
  const std::string path = dir + "/hnsw.lks";
  ASSERT_TRUE(BuildSmallHnsw().SaveToFile(path).ok());
  const std::string clean = ReadFileBytes(path);

  const std::string corrupt_path = dir + "/corrupt.lks";
  for (size_t len = 0; len < clean.size(); ++len) {
    WriteFileBytes(corrupt_path, clean.substr(0, len));
    HnswIndex loaded(HnswIndex::Options{});
    EXPECT_FALSE(loaded.LoadFromFile(corrupt_path).ok()) << "length " << len;
  }
}

// ----------------------------------------------------------- JOSIE sweep

JosieIndex BuildSmallJosie() {
  JosieIndex index;
  const std::vector<std::vector<std::string>> sets = {
      {"ottawa", "toronto", "montreal", "vancouver"},
      {"toronto", "calgary", "edmonton"},
      {"ottawa", "halifax", "winnipeg", "toronto", "regina"},
      {"paris", "lyon", "nice"},
  };
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_TRUE(index.AddSet(i, sets[i]).ok());
  }
  EXPECT_TRUE(index.Build().ok());
  return index;
}

TEST(CorruptionSweepTest, JosieEveryByteFlipAndTruncation) {
  const std::string dir = TestDir("josie");
  const std::string path = dir + "/josie.lks";
  const JosieIndex original = BuildSmallJosie();
  ASSERT_TRUE(original.SaveToFile(path).ok());
  const std::string clean = ReadFileBytes(path);

  const std::vector<std::string> probe = {"ottawa", "toronto", "calgary"};
  const auto baseline = original.TopK(probe, 3);
  ASSERT_TRUE(baseline.ok());

  const std::string corrupt_path = dir + "/corrupt.lks";
  size_t rejected = 0;
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] ^= 1;
    WriteFileBytes(corrupt_path, bytes);
    JosieIndex loaded;
    const Status status = loaded.LoadFromFile(corrupt_path);
    if (!status.ok()) {
      ++rejected;
      continue;
    }
    const auto got = loaded.TopK(probe, 3);
    ASSERT_TRUE(got.ok()) << "byte " << i;
    ASSERT_EQ(got->size(), baseline->size()) << "byte " << i;
    for (size_t r = 0; r < got->size(); ++r) {
      EXPECT_EQ((*got)[r].id, (*baseline)[r].id) << "byte " << i;
      EXPECT_EQ((*got)[r].overlap, (*baseline)[r].overlap) << "byte " << i;
    }
  }
  EXPECT_GT(rejected, clean.size() * 9 / 10);

  for (size_t len = 0; len < clean.size(); ++len) {
    WriteFileBytes(corrupt_path, clean.substr(0, len));
    JosieIndex loaded;
    EXPECT_FALSE(loaded.LoadFromFile(corrupt_path).ok()) << "length " << len;
  }
}

// --------------------------------------------- degraded-mode end-to-end

/// Small generated lake + fully-built engine shared by the degraded-mode
/// tests. The built engine is the "writer" process; each test constructs
/// its own deferred "reader" engine that restores from a SnapshotStore.
class DegradedServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 11;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
    writer_engine_ =
        new DiscoveryEngine(&lake_->catalog, &lake_->kb, EngineOptions(false));
  }

  static void TearDownTestSuite() {
    delete writer_engine_;
    delete lake_;
    writer_engine_ = nullptr;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static DiscoveryEngine::Options EngineOptions(bool defer) {
    DiscoveryEngine::Options eopts;
    eopts.build_exact_join = false;
    eopts.build_lsh_join = false;
    // No approx tier either: ServesDegradedThenRecovers needs a join
    // modality with no brownout fallback at all.
    eopts.build_approx = false;
    eopts.build_pexeso = false;
    eopts.build_mate = false;
    eopts.build_correlated = false;
    eopts.build_tus = false;
    eopts.build_santos = false;
    eopts.build_d3l = false;
    eopts.synthesize_kb = false;
    eopts.train_annotator = false;
    eopts.defer_index_build = defer;
    return eopts;
  }

  /// Commits the writer engine's index sections as the next generation.
  static uint64_t CommitIndexes(store::SnapshotStore* store) {
    store::SnapshotWriter snapshot;
    EXPECT_TRUE(writer_engine_->SaveIndexSections(&snapshot).ok());
    auto gen = store->Commit(snapshot);
    EXPECT_TRUE(gen.ok()) << gen.status().ToString();
    return gen.value();
  }

  /// Flips one payload byte of `section` inside generation `gen`'s file.
  static void CorruptSection(const std::string& dir, uint64_t gen,
                             const std::string& section) {
    const std::string path =
        dir + "/" + store::SnapshotStore::SnapshotFileName(gen);
    auto reader = store::SnapshotReader::OpenFile(path);
    ASSERT_TRUE(reader.ok());
    for (const auto& info : reader->sections()) {
      if (info.name != section) continue;
      std::string bytes = ReadFileBytes(path);
      ASSERT_LT(info.offset + 5, bytes.size());
      bytes[info.offset + 5] ^= 1;
      WriteFileBytes(path, bytes);
      return;
    }
    FAIL() << "section " << section << " not found in " << path;
  }

  static serve::QueryRequest JoinRequest() {
    serve::QueryRequest req;
    req.kind = serve::QueryKind::kJoin;
    req.join_method = JoinMethod::kJosie;
    req.values = lake_->catalog.table(0).column(0).DistinctStrings();
    req.k = 5;
    req.bypass_cache = true;
    return req;
  }

  static GeneratedLake* lake_;
  static DiscoveryEngine* writer_engine_;
};

GeneratedLake* DegradedServingTest::lake_ = nullptr;
DiscoveryEngine* DegradedServingTest::writer_engine_ = nullptr;

TEST_F(DegradedServingTest, DeferredEngineRestoresFromSnapshot) {
  const std::string dir = TestDir("restore");
  store::SnapshotStore store(dir);
  CommitIndexes(&store);

  DiscoveryEngine engine(&lake_->catalog, &lake_->kb, EngineOptions(true));
  EXPECT_EQ(engine.josie_join(), nullptr);
  EXPECT_EQ(engine.starmie(), nullptr);
  EXPECT_EQ(engine.PendingIndexSections(),
            (std::vector<std::string>{DiscoveryEngine::kJosieSection,
                                      DiscoveryEngine::kStarmieSection}));

  store::RecoveryManager recovery(&store);
  for (const std::string& section : engine.PendingIndexSections()) {
    recovery.Register(section, [&engine, section](const std::string& payload) {
      return engine.LoadIndexSection(section, payload);
    });
  }
  ASSERT_TRUE(recovery.RecoverAll().ok());
  ASSERT_NE(engine.josie_join(), nullptr);
  ASSERT_NE(engine.starmie(), nullptr);

  // The restored engine answers exactly like the engine that built the
  // indexes from scratch.
  const auto query = lake_->catalog.table(0).column(0).DistinctStrings();
  const auto direct = writer_engine_->Joinable(query, JoinMethod::kJosie, 5);
  const auto restored = engine.Joinable(query, JoinMethod::kJosie, 5);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*restored)[i].column, (*direct)[i].column);
    EXPECT_DOUBLE_EQ((*restored)[i].score, (*direct)[i].score);
  }
}

TEST_F(DegradedServingTest, KillDuringSaveRecoversPreviousGeneration) {
  const std::string dir = TestDir("kill");
  store::SnapshotStore store(dir);
  const uint64_t gen1 = CommitIndexes(&store);

  // "Crash" 1: the envelope write tears mid-file.
  {
    ScopedFailpoint scoped(
        "store.snap.write", FaultSpec{FaultSpec::Kind::kTornWrite, 0, 64});
    store::SnapshotWriter snapshot;
    ASSERT_TRUE(writer_engine_->SaveIndexSections(&snapshot).ok());
    EXPECT_FALSE(store.Commit(snapshot).ok());
  }
  // "Crash" 2: the MANIFEST rename (the commit point) never happens.
  {
    ScopedFailpoint scoped("store.manifest.rename", FaultSpec{});
    store::SnapshotWriter snapshot;
    ASSERT_TRUE(writer_engine_->SaveIndexSections(&snapshot).ok());
    EXPECT_FALSE(store.Commit(snapshot).ok());
  }

  // Recovery still restores every index from the surviving generation.
  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, gen1);

  DiscoveryEngine engine(&lake_->catalog, &lake_->kb, EngineOptions(true));
  store::RecoveryManager recovery(&store);
  for (const std::string& section : engine.PendingIndexSections()) {
    recovery.Register(section, [&engine, section](const std::string& payload) {
      return engine.LoadIndexSection(section, payload);
    });
  }
  EXPECT_TRUE(recovery.RecoverAll().ok());
  EXPECT_FALSE(recovery.degraded());
  EXPECT_EQ(recovery.recovered_generation(), gen1);
}

TEST_F(DegradedServingTest, ServesDegradedThenRecovers) {
  const std::string dir = TestDir("degraded");
  store::SnapshotStore store(dir);
  const uint64_t gen1 = CommitIndexes(&store);
  // Corrupt the JOSIE section in the only committed generation, so
  // per-section generation fallback cannot silently heal it.
  CorruptSection(dir, gen1, DiscoveryEngine::kJosieSection);

  DiscoveryEngine engine(&lake_->catalog, &lake_->kb, EngineOptions(true));
  uint64_t fake_now = 1000;
  store::RecoveryManager::Options ropts;
  ropts.backoff_initial_ms = 100;
  ropts.now_ms = [&fake_now] { return fake_now; };
  store::RecoveryManager recovery(&store, ropts);
  for (const std::string& section : engine.PendingIndexSections()) {
    recovery.Register(section, [&engine, section](const std::string& payload) {
      return engine.LoadIndexSection(section, payload);
    });
  }

  // Startup is degraded, not dead: starmie restored, josie quarantined.
  EXPECT_FALSE(recovery.RecoverAll().ok());
  EXPECT_TRUE(recovery.degraded());
  ASSERT_NE(engine.starmie(), nullptr);
  EXPECT_EQ(engine.josie_join(), nullptr);
  ASSERT_EQ(recovery.quarantined().size(), 1u);
  EXPECT_EQ(recovery.quarantined()[0].section, DiscoveryEngine::kJosieSection);

  serve::QueryService::Options sopts;
  sopts.enable_cache = false;
  sopts.recovery = &recovery;
  serve::QueryService service(&engine, sopts);

  // Healthy modalities keep serving.
  serve::QueryRequest keyword;
  keyword.kind = serve::QueryKind::kKeyword;
  keyword.keyword = lake_->topic_of[0];
  keyword.k = 5;
  EXPECT_TRUE(service.Execute(keyword).status.ok());

  serve::QueryRequest union_req;
  union_req.kind = serve::QueryKind::kUnion;
  union_req.union_method = UnionMethod::kStarmie;
  union_req.union_table = &lake_->catalog.table(1);
  union_req.exclude = 1;
  union_req.k = 5;
  EXPECT_TRUE(service.Execute(union_req).status.ok());

  // The quarantined modality fails fast with FailedPrecondition and is
  // counted as unavailable, not as a generic failure.
  const serve::QueryResponse join = service.Execute(JoinRequest());
  EXPECT_EQ(join.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.metrics().GetCounter("serve.queries.unavailable")->value(),
            1u);

  // Health reflects the quarantine and refreshes the gauges.
  serve::QueryService::HealthSnapshot health = service.Health();
  EXPECT_FALSE(health.ok);
  EXPECT_TRUE(health.degraded);
  ASSERT_EQ(health.quarantined.size(), 1u);
  EXPECT_EQ(health.quarantined[0].section, DiscoveryEngine::kJosieSection);
  EXPECT_EQ(service.metrics().GetGauge("serve.degraded")->value(), 1u);
  EXPECT_EQ(service.metrics().GetGauge("serve.quarantined_sections")->value(),
            1u);

  // Operator repairs the store (a fresh commit); after the backoff the
  // retry loop restores the modality. No queries are in flight.
  CommitIndexes(&store);
  fake_now += 100'000;
  EXPECT_EQ(recovery.RetryQuarantined(), 1u);
  ASSERT_NE(engine.josie_join(), nullptr);
  EXPECT_TRUE(service.Execute(JoinRequest()).status.ok());

  health = service.Health();
  EXPECT_TRUE(health.ok);
  EXPECT_FALSE(health.degraded);
  EXPECT_TRUE(health.quarantined.empty());
  EXPECT_EQ(service.metrics().GetGauge("serve.degraded")->value(), 0u);
  EXPECT_EQ(service.metrics().GetGauge("serve.quarantined_sections")->value(),
            0u);
}

TEST_F(DegradedServingTest, CatalogSnapshotQuarantinesCorruptTable) {
  const std::string dir = TestDir("catalog");
  store::SnapshotStore store(dir);
  store::SnapshotWriter snapshot;
  ASSERT_TRUE(lake_->catalog.SaveSnapshot(&snapshot).ok());
  auto gen = store.Commit(snapshot);
  ASSERT_TRUE(gen.ok());

  const std::string first_table = "table/" + lake_->catalog.table(0).name();
  CorruptSection(dir, *gen, first_table);

  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  DataLakeCatalog restored;
  auto ids = restored.LoadSnapshot(opened->reader);
  ASSERT_TRUE(ids.ok());
  // One flipped bit costs one table, not the lake.
  EXPECT_EQ(ids->size(), lake_->catalog.num_tables() - 1);
  ASSERT_EQ(restored.quarantined().size(), 1u);
  EXPECT_EQ(restored.quarantined()[0].path, first_table);
  EXPECT_EQ(restored.quarantined()[0].status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace lake
