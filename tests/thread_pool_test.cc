#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lake {
namespace {

TEST(ThreadPoolTest, AsyncReturnsValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.Async([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, AsyncVoidCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<void> f = pool.Async([&ran] { ran.fetch_add(1); });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, AsyncMoveOnlyResult) {
  ThreadPool pool(1);
  auto f = pool.Async([] { return std::make_unique<int>(7); });
  EXPECT_EQ(*f.get(), 7);
}

TEST(ThreadPoolTest, ManyAsyncTasksAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<size_t>> futures;
  futures.reserve(500);
  for (size_t i = 0; i < 500; ++i) {
    futures.push_back(pool.Async([i] { return i * i; }));
  }
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitDuringShutdownStillRuns) {
  // A task submitted while the pool is tearing down must run (inline)
  // rather than being dropped, so futures are always satisfied.
  std::atomic<int> completed{0};
  std::atomic<bool> go{false};
  std::thread submitter;
  {
    ThreadPool pool(1);
    submitter = std::thread([&pool, &completed, &go] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 100; ++i) {
        pool.Async([&completed] { completed.fetch_add(1); }).get();
      }
    });
    go.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    // Pool destructor races with the submitter here.
  }
  submitter.join();
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPoolStressTest, ConcurrentSubmittersAndRepeatedShutdown) {
  // Several producer threads hammer short tasks into short-lived pools;
  // every future must be satisfied with the right answer. Run under TSan
  // in CI to certify the shutdown path.
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> sum{0};
    constexpr int kProducers = 4;
    constexpr int kTasksPerProducer = 50;
    std::vector<std::thread> producers;
    {
      ThreadPool pool(3);
      std::atomic<bool> go{false};
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&pool, &sum, &go, p] {
          while (!go.load()) std::this_thread::yield();
          std::vector<std::future<int>> futures;
          for (int i = 0; i < kTasksPerProducer; ++i) {
            futures.push_back(pool.Async([p, i] { return p * 1000 + i; }));
          }
          for (auto& f : futures) {
            sum.fetch_add(static_cast<uint64_t>(f.get()));
          }
        });
      }
      go.store(true);
      // Destructor runs while producers may still be submitting.
    }
    for (auto& t : producers) t.join();
    uint64_t expect = 0;
    for (int p = 0; p < kProducers; ++p) {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        expect += static_cast<uint64_t>(p * 1000 + i);
      }
    }
    EXPECT_EQ(sum.load(), expect);
  }
}

TEST(ThreadPoolTest, ParallelForStillWorks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace lake
