#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "annotate/kb_synthesis.h"
#include "lakegen/benchmark_lakes.h"
#include "search/union_santos.h"
#include "search/union_starmie.h"
#include "search/union_tus.h"
#include "util/logging.h"

namespace lake {
namespace {

/// Shared fixture: one mid-size generated lake with unionable ground truth
/// and relationship-violating distractors. Built once for the whole suite
/// (construction costs dominate otherwise).
class UnionSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lake_ = new GeneratedLake(MakeUnionBenchmarkLake(
        /*seed=*/13, /*tables_per_template=*/6, /*distractors=*/8));
    words_ = new WordEmbedding(WordEmbedding::Options{.dim = 64});
    encoder_ = new ColumnEncoder(words_);
    contextual_ = new ContextualColumnEncoder(encoder_);
    kb_ = new KnowledgeBase(lake_->kb);
    KbSynthesizer().AugmentInPlace(lake_->catalog, kb_);
  }
  static void TearDownTestSuite() {
    delete contextual_;
    delete encoder_;
    delete words_;
    delete kb_;
    delete lake_;
    lake_ = nullptr;
  }

  /// True unionable partners of `query_table` (same template, excluding
  /// itself and excluding distractors).
  static std::vector<TableId> TrueUnionables(TableId query_table) {
    const int tmpl = lake_->template_of.at(query_table);
    std::vector<TableId> out;
    for (TableId t : lake_->unionable_groups[tmpl]) {
      if (t != query_table) out.push_back(t);
    }
    return out;
  }

  static double MeanPrecisionAtK(
      const std::function<std::vector<TableResult>(TableId)>& run, size_t k,
      size_t num_queries) {
    double total = 0;
    size_t done = 0;
    for (size_t g = 0; g < lake_->unionable_groups.size() &&
                       done < num_queries;
         ++g, ++done) {
      const TableId q = lake_->unionable_groups[g][0];
      total += PrecisionAtK(run(q), TrueUnionables(q), k);
    }
    return done == 0 ? 0.0 : total / done;
  }

  static GeneratedLake* lake_;
  static WordEmbedding* words_;
  static ColumnEncoder* encoder_;
  static ContextualColumnEncoder* contextual_;
  static KnowledgeBase* kb_;
};

GeneratedLake* UnionSearchTest::lake_ = nullptr;
WordEmbedding* UnionSearchTest::words_ = nullptr;
ColumnEncoder* UnionSearchTest::encoder_ = nullptr;
ContextualColumnEncoder* UnionSearchTest::contextual_ = nullptr;
KnowledgeBase* UnionSearchTest::kb_ = nullptr;

// --- TUS ------------------------------------------------------------------

TEST_F(UnionSearchTest, TusFindsSameTemplateTables) {
  TusUnionSearch tus(&lake_->catalog, encoder_, kb_);
  const TableId q = lake_->unionable_groups[0][0];
  const auto results =
      tus.Search(lake_->catalog.table(q), 5, /*exclude=*/q).value();
  ASSERT_FALSE(results.empty());
  const double p = PrecisionAtK(results, TrueUnionables(q), 5);
  EXPECT_GE(p, 0.6);
}

TEST_F(UnionSearchTest, TusExcludeDropsSelf) {
  TusUnionSearch tus(&lake_->catalog, encoder_, kb_);
  const TableId q = lake_->unionable_groups[1][0];
  const auto results =
      tus.Search(lake_->catalog.table(q), 10, /*exclude=*/q).value();
  for (const auto& r : results) EXPECT_NE(r.table_id, q);
  // Without exclusion, the query table itself is the best match.
  const auto with_self =
      tus.Search(lake_->catalog.table(q), 1, /*exclude=*/-1).value();
  ASSERT_FALSE(with_self.empty());
  EXPECT_EQ(with_self[0].table_id, q);
}

TEST_F(UnionSearchTest, TusExhaustiveAtLeastAsGoodAsLsh) {
  TusUnionSearch::Options ex_opts;
  ex_opts.exhaustive = true;
  TusUnionSearch exhaustive(&lake_->catalog, encoder_, kb_, ex_opts);
  TusUnionSearch pruned(&lake_->catalog, encoder_, kb_);
  const TableId q = lake_->unionable_groups[2][0];
  const auto pe = PrecisionAtK(
      exhaustive.Search(lake_->catalog.table(q), 5, q).value(),
      TrueUnionables(q), 5);
  const auto pp =
      PrecisionAtK(pruned.Search(lake_->catalog.table(q), 5, q).value(),
                   TrueUnionables(q), 5);
  EXPECT_GE(pe + 1e-9, pp);
}

TEST_F(UnionSearchTest, TusMeasureAblation) {
  // Disabling all measures yields nothing.
  TusUnionSearch::Options none;
  none.use_set_measure = false;
  none.use_semantic_measure = false;
  none.use_nl_measure = false;
  TusUnionSearch empty_measures(&lake_->catalog, encoder_, kb_, none);
  const TableId q = lake_->unionable_groups[0][0];
  EXPECT_TRUE(
      empty_measures.Search(lake_->catalog.table(q), 5, q).value().empty());
}

// --- SANTOS -----------------------------------------------------------------

TEST_F(UnionSearchTest, SantosRanksTrueUnionablesAboveDistractors) {
  SantosUnionSearch santos(&lake_->catalog, kb_);
  size_t checked = 0;
  double true_better = 0;
  for (size_t g = 0; g < lake_->unionable_groups.size(); ++g) {
    const TableId q = lake_->unionable_groups[g][0];
    const Table& query = lake_->catalog.table(q);
    // Mean score of true partners vs distractors of the same template.
    double true_sum = 0;
    size_t true_n = 0;
    for (TableId t : TrueUnionables(q)) {
      true_sum += santos.ScoreTable(query, t);
      ++true_n;
    }
    double distract_sum = 0;
    size_t distract_n = 0;
    for (TableId d : lake_->distractors) {
      if (lake_->template_of.at(d) != static_cast<int>(g)) continue;
      distract_sum += santos.ScoreTable(query, d);
      ++distract_n;
    }
    if (true_n == 0 || distract_n == 0) continue;
    ++checked;
    if (true_sum / true_n > distract_sum / distract_n) ++true_better;
  }
  ASSERT_GT(checked, 0u);
  // SANTOS's relationship semantics should separate them in most groups.
  EXPECT_GE(true_better / checked, 0.75);
}

TEST_F(UnionSearchTest, SantosSearchPrecision) {
  SantosUnionSearch santos(&lake_->catalog, kb_);
  const double p = MeanPrecisionAtK(
      [&](TableId q) {
        return santos.Search(lake_->catalog.table(q), 5, q).value();
      },
      5, 4);
  EXPECT_GE(p, 0.5);
}

// --- Starmie -----------------------------------------------------------------

TEST_F(UnionSearchTest, StarmiePrecision) {
  StarmieUnionSearch starmie(&lake_->catalog, contextual_);
  const double p = MeanPrecisionAtK(
      [&](TableId q) {
        return starmie.Search(lake_->catalog.table(q), 5, q).value();
      },
      5, 4);
  EXPECT_GE(p, 0.6);
}

TEST_F(UnionSearchTest, StarmieHnswMatchesLinearScan) {
  StarmieUnionSearch::Options hnsw_opts;
  hnsw_opts.use_hnsw = true;
  StarmieUnionSearch with_hnsw(&lake_->catalog, contextual_, hnsw_opts);
  StarmieUnionSearch::Options flat_opts;
  flat_opts.use_hnsw = false;
  StarmieUnionSearch with_flat(&lake_->catalog, contextual_, flat_opts);

  const TableId q = lake_->unionable_groups[0][0];
  const auto a = with_hnsw.Search(lake_->catalog.table(q), 5, q).value();
  const auto b = with_flat.Search(lake_->catalog.table(q), 5, q).value();
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // The verified top result should agree (ANN may differ in the tail).
  EXPECT_EQ(a[0].table_id, b[0].table_id);
}

TEST_F(UnionSearchTest, StarmieScoreTableConsistentWithSearch) {
  StarmieUnionSearch starmie(&lake_->catalog, contextual_);
  const TableId q = lake_->unionable_groups[1][0];
  const auto results =
      starmie.Search(lake_->catalog.table(q), 3, q).value();
  ASSERT_FALSE(results.empty());
  EXPECT_NEAR(
      starmie.ScoreTable(lake_->catalog.table(q), results[0].table_id),
      results[0].score, 1e-9);
}

TEST_F(UnionSearchTest, EmptyQueryTableHandled) {
  TusUnionSearch tus(&lake_->catalog, encoder_, kb_);
  StarmieUnionSearch starmie(&lake_->catalog, contextual_);
  Table empty("empty");
  EXPECT_TRUE(tus.Search(empty, 5).value().empty());
  EXPECT_TRUE(starmie.Search(empty, 5).value().empty());
}

}  // namespace
}  // namespace lake
