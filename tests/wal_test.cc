#include "store/wal.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace lake::store {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_wal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WalWriter::Options NoSync() {
  WalWriter::Options opts;
  opts.sync = WalWriter::SyncPolicy::kNone;
  return opts;
}

/// Replays `dir` from scratch and collects (lsn, payload) pairs.
std::pair<WalReader::ReplayStats, std::vector<std::pair<uint64_t, std::string>>>
ReplayAll(const std::string& dir, uint64_t after_lsn = 0) {
  std::vector<std::pair<uint64_t, std::string>> records;
  Result<WalReader::ReplayStats> stats = WalReader::Replay(
      dir, after_lsn, [&](uint64_t lsn, std::string_view payload) {
        records.emplace_back(lsn, std::string(payload));
        return Status::OK();
      });
  EXPECT_TRUE(stats.ok()) << stats.status();
  return {stats.ok() ? stats.value() : WalReader::ReplayStats{},
          std::move(records)};
}

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }
};

TEST_F(WalTest, AppendReplayRoundtrip) {
  const std::string dir = TestDir("roundtrip");
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> lsn = (*writer)->Append(StrFormat("payload-%d", i));
    ASSERT_TRUE(lsn.ok()) << lsn.status();
    EXPECT_EQ(lsn.value(), static_cast<uint64_t>(i + 1));  // dense from 1
  }
  EXPECT_EQ((*writer)->last_lsn(), 5u);
  writer->reset();

  auto [stats, records] = ReplayAll(dir);
  EXPECT_TRUE(stats.clean);
  EXPECT_EQ(stats.records_replayed, 5u);
  EXPECT_EQ(stats.last_lsn, 5u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].first, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(records[i].second, StrFormat("payload-%d", i));
  }

  // Replay past a checkpoint LSN skips covered records.
  auto [after, tail] = ReplayAll(dir, /*after_lsn=*/3);
  EXPECT_EQ(after.records_replayed, 2u);
  EXPECT_EQ(after.records_skipped, 3u);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].first, 4u);
}

TEST_F(WalTest, EmptyPayloadAndEmptyDir) {
  const std::string dir = TestDir("empty");
  EXPECT_EQ(WalReader::MaxLsn(dir + "/missing"), 0u);
  auto [stats, records] = ReplayAll(dir + "/missing");
  EXPECT_EQ(stats.records_replayed, 0u);
  EXPECT_TRUE(stats.clean);

  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("").ok());  // zero-byte payload is a record
  writer->reset();
  auto [stats2, records2] = ReplayAll(dir);
  ASSERT_EQ(records2.size(), 1u);
  EXPECT_EQ(records2[0].second, "");
}

TEST_F(WalTest, RotationSplitsSegmentsAndReplayCrossesThem) {
  const std::string dir = TestDir("rotation");
  WalWriter::Options opts = NoSync();
  opts.segment_max_bytes = 64;  // a few records per segment
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, opts);
  ASSERT_TRUE(writer.ok());
  const std::string payload(20, 'x');  // 36-byte frames
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*writer)->Append(payload).ok());
  }
  EXPECT_GT((*writer)->stats().rotations, 0u);
  writer->reset();

  const auto segments = WalWriter::ListSegments(dir);
  ASSERT_GT(segments.size(), 2u);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_GT(segments[i].first, segments[i - 1].first);  // ascending
  }
  auto [stats, records] = ReplayAll(dir);
  EXPECT_TRUE(stats.clean);
  EXPECT_EQ(stats.records_replayed, 10u);
  EXPECT_EQ(stats.segments_read, segments.size());
}

TEST_F(WalTest, ReopenContinuesLsnSequenceInFreshSegment) {
  const std::string dir = TestDir("reopen");
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("one").ok());
    ASSERT_TRUE((*writer)->Append("two").ok());
  }
  EXPECT_EQ(WalReader::MaxLsn(dir), 2u);
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ((*writer)->last_lsn(), 2u);
    Result<uint64_t> lsn = (*writer)->Append("three");
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), 3u);
  }
  EXPECT_EQ(WalWriter::ListSegments(dir).size(), 2u);  // fresh segment
  auto [stats, records] = ReplayAll(dir);
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_TRUE(stats.clean);
}

TEST_F(WalTest, GarbageCollectDropsCoveredSegmentsKeepsActive) {
  const std::string dir = TestDir("gc");
  WalWriter::Options opts = NoSync();
  opts.segment_max_bytes = 64;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, opts);
  ASSERT_TRUE(writer.ok());
  const std::string payload(20, 'x');
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*writer)->Append(payload).ok());
  const auto before = WalWriter::ListSegments(dir);
  ASSERT_GT(before.size(), 2u);

  // Durable floor below everything: nothing may be deleted.
  ASSERT_TRUE((*writer)->GarbageCollect(0).ok());
  EXPECT_EQ(WalWriter::ListSegments(dir).size(), before.size());

  // Everything durable: only the active (last) segment survives, and
  // replay past the floor is empty but healthy.
  ASSERT_TRUE((*writer)->GarbageCollect(10).ok());
  const auto after = WalWriter::ListSegments(dir);
  EXPECT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].first, before.back().first);
  EXPECT_EQ((*writer)->unsynced_records(), 0u);  // floor covers them
  auto [stats, records] = ReplayAll(dir, /*after_lsn=*/10);
  EXPECT_EQ(stats.records_replayed, 0u);

  // The surviving writer keeps appending past the GC.
  Result<uint64_t> lsn = (*writer)->Append(payload);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 11u);
}

/// Acceptance sweep: truncate the log after every byte length that cuts
/// into the tail record. Replay must always succeed and recover exactly
/// the complete records — never an error, never a partial record.
TEST_F(WalTest, TruncationSweepOverTailRecordNeverErrors) {
  const std::string dir = TestDir("sweep");
  const std::string payloads[3] = {"alpha-record", "bravo-record",
                                   "gamma-record"};
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    for (const std::string& p : payloads) ASSERT_TRUE((*writer)->Append(p).ok());
  }
  const auto segments = WalWriter::ListSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string intact = ReadFile(segments[0].second);
  const size_t record_bytes = kWalRecordHeaderBytes + payloads[0].size();
  ASSERT_EQ(intact.size(), 3 * record_bytes);  // equal-size payloads
  const size_t tail_start = 2 * record_bytes;

  for (size_t cut = tail_start; cut <= intact.size(); ++cut) {
    WriteFile(segments[0].second, intact.substr(0, cut));
    auto [stats, records] = ReplayAll(dir);
    const bool complete = cut == intact.size();
    ASSERT_EQ(records.size(), complete ? 3u : 2u) << "cut=" << cut;
    EXPECT_EQ(stats.last_lsn, complete ? 3u : 2u) << "cut=" << cut;
    EXPECT_EQ(stats.truncated_bytes, complete ? 0u : cut - tail_start)
        << "cut=" << cut;
    // A cut exactly between records leaves a shorter but CLEAN log.
    EXPECT_EQ(stats.clean, complete || cut == tail_start) << "cut=" << cut;
    EXPECT_EQ(records[1].second, payloads[1]);
  }
}

TEST_F(WalTest, CorruptMiddleRecordTruncatesTheRest) {
  const std::string dir = TestDir("corrupt_middle");
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*writer)->Append(StrFormat("record-%d", i)).ok());
    }
  }
  const auto segments = WalWriter::ListSegments(dir);
  std::string bytes = ReadFile(segments[0].second);
  const size_t record_bytes = kWalRecordHeaderBytes + 8;  // "record-N"
  // Flip one payload bit of the SECOND record.
  bytes[record_bytes + kWalRecordHeaderBytes + 2] ^= 1;
  WriteFile(segments[0].second, bytes);

  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 1u);  // only the first record survives
  EXPECT_EQ(records[0].second, "record-0");
  EXPECT_FALSE(stats.clean);
  EXPECT_EQ(stats.truncated_bytes, 2 * record_bytes);
}

/// A lying length prefix (larger than the remaining bytes, or absurd)
/// must be rejected by framing checks before any allocation.
TEST_F(WalTest, LyingLengthPrefixIsTornTailNotCrash) {
  const std::string dir = TestDir("lying_len");
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("good").ok());
    ASSERT_TRUE((*writer)->Append("bad").ok());
  }
  const auto segments = WalWriter::ListSegments(dir);
  std::string bytes = ReadFile(segments[0].second);
  const size_t second = kWalRecordHeaderBytes + 4;
  bytes[second + 3] = '\x7f';  // second record's length becomes huge
  WriteFile(segments[0].second, bytes);

  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "good");
  EXPECT_FALSE(stats.clean);
}

/// A reopened-after-crash log: segment 1 ends in a torn tail, segment 2
/// continues the dense LSN chain. Replay must deliver both sides.
TEST_F(WalTest, ReplayChainsAcrossTornTailIntoNextSegment) {
  const std::string dir = TestDir("chain");
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("one").ok());
    ASSERT_TRUE((*writer)->Append("two").ok());
  }
  const auto segments = WalWriter::ListSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  // Torn tail: half a header of garbage at the end of segment 1.
  {
    std::ofstream tail(segments[0].second, std::ios::binary | std::ios::app);
    tail.write("\x03\x00\x00", 3);
  }
  // The writer reopens (as recovery does) and continues with LSN 3 in a
  // fresh segment.
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ((*writer)->last_lsn(), 2u);  // torn tail tolerated
    ASSERT_TRUE((*writer)->Append("three").ok());
  }
  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].first, 3u);
  EXPECT_EQ(records[2].second, "three");
  EXPECT_FALSE(stats.clean);
  EXPECT_EQ(stats.truncated_bytes, 3u);
}

/// A gap in the LSN chain (missing segment) kills everything after it:
/// records past a gap cannot be applied without the missing mutations.
TEST_F(WalTest, LsnGapTruncatesEverythingAfter) {
  const std::string dir = TestDir("gap");
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("one").ok());
    ASSERT_TRUE((*writer)->Append("two").ok());
  }
  {
    // Simulates a lost middle segment: the next segment starts at LSN 5.
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::OpenAt(dir, NoSync(), /*next_lsn=*/5);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("five").ok());
    ASSERT_TRUE((*writer)->Append("six").ok());
  }
  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 2u);  // only the pre-gap prefix
  EXPECT_EQ(stats.last_lsn, 2u);
  EXPECT_FALSE(stats.clean);
  EXPECT_GT(stats.truncated_bytes, 0u);
}

TEST_F(WalTest, TornWriteFailpointLeavesTornTailAndKillsWriter) {
  const std::string dir = TestDir("torn_fp");
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("acknowledged").ok());

  FaultSpec torn;
  torn.kind = FaultSpec::Kind::kTornWrite;
  torn.arg = 9;  // part of the header persists
  FailpointRegistry::Instance().Arm("wal.append.write", torn);
  EXPECT_FALSE((*writer)->Append("never-acked").ok());
  EXPECT_TRUE((*writer)->dead());
  // Dead writer: fail-stop, no interleaving after the tear.
  EXPECT_FALSE((*writer)->Append("after-death").ok());
  writer->reset();

  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 1u);  // the acknowledged record survives
  EXPECT_EQ(records[0].second, "acknowledged");
  EXPECT_FALSE(stats.clean);
  EXPECT_EQ(stats.truncated_bytes, 9u);
}

TEST_F(WalTest, TransientWriteErrorRollsBackAndWriterSurvives) {
  const std::string dir = TestDir("transient");
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("first").ok());

  FailpointRegistry::Instance().Arm("wal.append.write",
                                    FaultSpec{FaultSpec::Kind::kEnospc});
  Result<uint64_t> failed = (*writer)->Append("rejected");
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("no space"), std::string::npos);
  EXPECT_FALSE((*writer)->dead());

  // The failed LSN is reused: acknowledged LSNs stay dense.
  Result<uint64_t> next = (*writer)->Append("second");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 2u);
  writer->reset();
  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].second, "second");
  EXPECT_TRUE(stats.clean);
}

TEST_F(WalTest, FailedFsyncUnacknowledgesTheRecord) {
  const std::string dir = TestDir("fsync_fail");
  WalWriter::Options opts;
  opts.sync = WalWriter::SyncPolicy::kEveryAppend;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, opts);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("durable").ok());
  EXPECT_EQ((*writer)->unsynced_records(), 0u);  // per-append fsync
  EXPECT_EQ((*writer)->stats().fsyncs, 1u);

  FailpointRegistry::Instance().Arm("wal.append.fsync",
                                    FaultSpec{FaultSpec::Kind::kError});
  EXPECT_FALSE((*writer)->Append("not-durable").ok());
  // Rolled back: a crash cannot resurrect a record the caller saw fail.
  EXPECT_EQ((*writer)->last_lsn(), 1u);
  writer->reset();
  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "durable");
}

TEST_F(WalTest, SyncPolicyNoneTracksUnsyncedRecords) {
  const std::string dir = TestDir("unsynced");
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*writer)->Append("r").ok());
  EXPECT_EQ((*writer)->unsynced_records(), 4u);  // the live loss window
  EXPECT_EQ((*writer)->stats().fsyncs, 0u);
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->unsynced_records(), 0u);
  EXPECT_EQ((*writer)->stats().fsyncs, 1u);
}

TEST_F(WalTest, RotateFailpointFailsAppendWithoutTearing) {
  const std::string dir = TestDir("rotate_fp");
  WalWriter::Options opts = NoSync();
  opts.segment_max_bytes = 48;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, opts);
  ASSERT_TRUE(writer.ok());
  const std::string payload(24, 'x');
  ASSERT_TRUE((*writer)->Append(payload).ok());

  FailpointRegistry::Instance().Arm("wal.rotate",
                                    FaultSpec{FaultSpec::Kind::kError});
  EXPECT_FALSE((*writer)->Append(payload).ok());  // rotation needed → fault
  // Disarmed (one-shot): the retry rotates and lands in a new segment.
  Result<uint64_t> lsn = (*writer)->Append(payload);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 2u);
  writer->reset();
  auto [stats, records] = ReplayAll(dir);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_TRUE(stats.clean);
}

TEST_F(WalTest, ReplayReadFaultsDegradeToTruncationNotError) {
  const std::string dir = TestDir("read_fault");
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*writer)->Append(StrFormat("record-%d", i)).ok());
    }
  }
  // Bit flip mid-stream: the affected record fails its CRC and ends the
  // log there; earlier records still replay.
  FaultSpec flip;
  flip.kind = FaultSpec::Kind::kBitFlip;
  flip.arg = kWalRecordHeaderBytes + 8 + kWalRecordHeaderBytes + 1;
  FailpointRegistry::Instance().Arm("wal.replay.read", flip);
  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(stats.clean);

  // Short read: the stream ends early; the cut record is a torn tail.
  FaultSpec short_read;
  short_read.kind = FaultSpec::Kind::kShortRead;
  short_read.arg = kWalRecordHeaderBytes + 8 + 5;
  FailpointRegistry::Instance().Arm("wal.replay.read", short_read);
  auto [stats2, records2] = ReplayAll(dir);
  ASSERT_EQ(records2.size(), 1u);
  EXPECT_FALSE(stats2.clean);
}

TEST_F(WalTest, OversizedPayloadRejected) {
  const std::string dir = TestDir("oversize");
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, NoSync());
  ASSERT_TRUE(writer.ok());
  // Cannot allocate >1 GiB in a test; exercise the boundary via a view
  // with a lying size is UB, so just check the writer survives a large
  // (but allocatable) payload and replays it intact.
  const std::string big(1 << 20, 'b');
  Result<uint64_t> lsn = (*writer)->Append(big);
  ASSERT_TRUE(lsn.ok());
  writer->reset();
  auto [stats, records] = ReplayAll(dir);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second.size(), big.size());
}

}  // namespace
}  // namespace lake::store
