#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "lakegen/generator.h"
#include "nav/linkage_graph.h"
#include "nav/organization.h"
#include "nav/ronin.h"
#include "util/logging.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

std::vector<std::string> Values(size_t begin, size_t end) {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) out.push_back("v" + std::to_string(i));
  return out;
}

// --- Linkage graph ----------------------------------------------------------

DataLakeCatalog PkFkLake() {
  DataLakeCatalog cat;
  // "dim" has a unique key column; "fact" references a subset of it.
  Table dim("dim");
  LAKE_CHECK(dim.AddColumn(MakeColumn("id", Values(0, 100))).ok());
  LAKE_CHECK(cat.AddTable(std::move(dim)).ok());
  Table fact("fact");
  std::vector<std::string> fks;
  for (size_t i = 0; i < 200; ++i) fks.push_back("v" + std::to_string(i % 50));
  LAKE_CHECK(fact.AddColumn(MakeColumn("dim_id", fks)).ok());
  LAKE_CHECK(cat.AddTable(std::move(fact)).ok());
  // An unrelated table.
  Table other("other");
  LAKE_CHECK(other.AddColumn(MakeColumn("code", Values(9000, 9050))).ok());
  LAKE_CHECK(cat.AddTable(std::move(other)).ok());
  return cat;
}

TEST(LinkageGraphTest, DetectsPkFk) {
  DataLakeCatalog cat = PkFkLake();
  LinkageGraph graph(&cat);
  const TableId dim = cat.FindTable("dim").value();
  const auto pkfk = graph.Neighbors(ColumnRef{dim, 0}, LinkType::kPkFkCandidate);
  ASSERT_FALSE(pkfk.empty());
  EXPECT_EQ(pkfk[0].from.table_id, dim);  // PK side is the edge source
  EXPECT_EQ(cat.table(pkfk[0].to.table_id).name(), "fact");
  EXPECT_GE(pkfk[0].weight, 0.9);
}

TEST(LinkageGraphTest, ContentEdgeForOverlappingColumns) {
  DataLakeCatalog cat;
  Table a("a"), b("b");
  LAKE_CHECK(a.AddColumn(MakeColumn("x", Values(0, 100))).ok());
  LAKE_CHECK(b.AddColumn(MakeColumn("y", Values(10, 110))).ok());
  LAKE_CHECK(cat.AddTable(std::move(a)).ok());
  LAKE_CHECK(cat.AddTable(std::move(b)).ok());
  LinkageGraph::Options opts;
  opts.content_jaccard_threshold = 0.5;
  LinkageGraph graph(&cat, opts);
  const auto links = graph.Neighbors(ColumnRef{0, 0},
                                     LinkType::kContentSimilarity);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_NEAR(links[0].weight, 90.0 / 110.0, 1e-9);
}

TEST(LinkageGraphTest, SchemaEdgeForSimilarNames) {
  DataLakeCatalog cat;
  Table a("a"), b("b");
  LAKE_CHECK(a.AddColumn(MakeColumn("customer_id", Values(0, 10))).ok());
  LAKE_CHECK(b.AddColumn(MakeColumn("Customer ID", Values(100, 110))).ok());
  LAKE_CHECK(cat.AddTable(std::move(a)).ok());
  LAKE_CHECK(cat.AddTable(std::move(b)).ok());
  LinkageGraph graph(&cat);
  const auto links =
      graph.Neighbors(ColumnRef{0, 0}, LinkType::kSchemaSimilarity);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_DOUBLE_EQ(links[0].weight, 1.0);  // identical after normalization
}

TEST(LinkageGraphTest, RelatedTablesBfs) {
  DataLakeCatalog cat = PkFkLake();
  LinkageGraph graph(&cat);
  const TableId dim = cat.FindTable("dim").value();
  const auto related = graph.RelatedTables(dim, 2);
  ASSERT_FALSE(related.empty());
  EXPECT_EQ(cat.table(related[0].first).name(), "fact");
  EXPECT_EQ(related[0].second, 1);
  // "other" is unreachable.
  for (const auto& [t, d] : related) {
    EXPECT_NE(cat.table(t).name(), "other");
  }
}

TEST(LinkageGraphTest, UnknownColumnHasNoNeighbors) {
  DataLakeCatalog cat = PkFkLake();
  LinkageGraph graph(&cat);
  EXPECT_TRUE(graph.Neighbors(ColumnRef{99, 9}).empty());
}

// --- Organization -------------------------------------------------------------

class OrganizationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 9;
    opts.num_templates = 5;
    opts.tables_per_template = 6;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
    words_ = new WordEmbedding(WordEmbedding::Options{.dim = 48});
    cols_ = new ColumnEncoder(words_);
    enc_ = new TableEncoder(cols_, words_);
  }
  static void TearDownTestSuite() {
    delete enc_;
    delete cols_;
    delete words_;
    delete lake_;
  }

  static GeneratedLake* lake_;
  static WordEmbedding* words_;
  static ColumnEncoder* cols_;
  static TableEncoder* enc_;
};

GeneratedLake* OrganizationTest::lake_ = nullptr;
WordEmbedding* OrganizationTest::words_ = nullptr;
ColumnEncoder* OrganizationTest::cols_ = nullptr;
TableEncoder* OrganizationTest::enc_ = nullptr;

TEST_F(OrganizationTest, EveryTableReachable) {
  LakeOrganization org(&lake_->catalog, enc_);
  EXPECT_EQ(org.num_leaves(), lake_->catalog.num_tables());
  // Count leaves by walking the node list.
  size_t leaves = 0;
  std::unordered_set<int64_t> leaf_tables;
  for (const auto& n : org.nodes()) {
    if (n.children.empty()) {
      ++leaves;
      leaf_tables.insert(n.table);
    }
  }
  EXPECT_EQ(leaves, lake_->catalog.num_tables());
  EXPECT_EQ(leaf_tables.size(), lake_->catalog.num_tables());
}

TEST_F(OrganizationTest, BranchingBounded) {
  LakeOrganization::Options opts;
  opts.branching = 3;
  LakeOrganization org(&lake_->catalog, enc_, opts);
  for (const auto& n : org.nodes()) {
    EXPECT_LE(n.children.size(), 3u + 1);  // flattening may overshoot by 1
  }
}

TEST_F(OrganizationTest, NavigationWithOwnEmbeddingReachesTable) {
  LakeOrganization org(&lake_->catalog, enc_);
  size_t reached = 0;
  const size_t trials = std::min<size_t>(10, lake_->catalog.num_tables());
  for (TableId t = 0; t < trials; ++t) {
    const Vector topic = enc_->Encode(lake_->catalog.table(t));
    if (org.NavigationCost(topic, t) >= 0) ++reached;
  }
  // Greedy navigation with the table's own embedding should almost always
  // find it (identical vector maximizes similarity along the path).
  EXPECT_GE(reached, trials * 7 / 10);
}

TEST_F(OrganizationTest, NavigationCheaperThanFlatScan) {
  LakeOrganization org(&lake_->catalog, enc_);
  const size_t n = lake_->catalog.num_tables();
  double total_cost = 0;
  size_t reached = 0;
  for (TableId t = 0; t < n; ++t) {
    const int cost = org.NavigationCost(enc_->Encode(lake_->catalog.table(t)), t);
    if (cost >= 0) {
      total_cost += cost;
      ++reached;
    }
  }
  ASSERT_GT(reached, 0u);
  // Flat-list expected inspection cost ~ n/2 per lookup.
  EXPECT_LT(total_cost / reached, static_cast<double>(n) / 2);
}

TEST_F(OrganizationTest, ToStringRenders) {
  LakeOrganization org(&lake_->catalog, enc_);
  const std::string s = org.ToString(2);
  EXPECT_FALSE(s.empty());
}

TEST(OrganizationEdge, EmptyCatalog) {
  DataLakeCatalog cat;
  WordEmbedding words;
  ColumnEncoder cols(&words);
  TableEncoder enc(&cols, &words);
  LakeOrganization org(&cat, &enc);
  EXPECT_EQ(org.num_leaves(), 0u);
  EXPECT_TRUE(org.Navigate(Vector(words.dim(), 0.1f)).empty());
}

// --- RONIN ---------------------------------------------------------------------

TEST_F(OrganizationTest, RoninGroupsResults) {
  RoninExplorer ronin(&lake_->catalog, enc_);
  std::vector<TableId> results;
  // Mix two templates' tables.
  for (TableId t : lake_->unionable_groups[0]) results.push_back(t);
  for (TableId t : lake_->unionable_groups[1]) results.push_back(t);
  const auto root = ronin.Organize(results);
  EXPECT_EQ(root.tables.size(), results.size());
  ASSERT_FALSE(root.children.empty());
  // Child groups partition the result set.
  size_t total = 0;
  for (const auto& ch : root.children) total += ch.tables.size();
  EXPECT_EQ(total, results.size());
  EXPECT_FALSE(ronin.ToString(root).empty());
}

TEST_F(OrganizationTest, RoninSmallInputStaysLeaf) {
  RoninExplorer ronin(&lake_->catalog, enc_);
  const auto root = ronin.Organize({0, 1});
  EXPECT_TRUE(root.children.empty());
}

}  // namespace
}  // namespace lake
