#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.h"
#include "cluster/ring.h"
#include "cluster/topk_merge.h"
#include "lakegen/generator.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "util/failpoint.h"

namespace lake::cluster {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_cluster_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------------- ring

TEST(HashRingTest, OwnerIsDeterministicAndAMember) {
  HashRing ring;
  for (uint32_t s = 0; s < 4; ++s) ring.AddShard(s);
  HashRing rebuilt;
  for (uint32_t s = 3; s != UINT32_MAX && s < 4; --s) rebuilt.AddShard(s);
  for (int i = 0; i < 200; ++i) {
    const std::string name = "table_" + std::to_string(i);
    const uint32_t owner = ring.OwnerOf(name);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, ring.OwnerOf(name));  // stable across calls
    // Insertion order must not matter: the ring is a pure function of the
    // shard set.
    EXPECT_EQ(owner, rebuilt.OwnerOf(name));
  }
}

TEST(HashRingTest, VirtualNodesBalanceOwnership) {
  HashRing ring;
  for (uint32_t s = 0; s < 4; ++s) ring.AddShard(s);

  std::map<uint32_t, size_t> owned;
  const size_t kNames = 4000;
  for (size_t i = 0; i < kNames; ++i) {
    ++owned[ring.OwnerOf("t" + std::to_string(i))];
  }
  // Perfect balance would be 25% each; 64 vnodes keep every shard within
  // a loose band around it.
  for (uint32_t s = 0; s < 4; ++s) {
    const double frac = static_cast<double>(owned[s]) / kNames;
    EXPECT_GT(frac, 0.10) << "shard " << s;
    EXPECT_LT(frac, 0.45) << "shard " << s;
  }

  const std::vector<double> fractions = ring.OwnershipFractions();
  ASSERT_EQ(fractions.size(), 4u);
  double sum = 0;
  for (double f : fractions) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HashRingTest, GrowingMovesOnlyToTheNewShard) {
  HashRing before;
  for (uint32_t s = 0; s < 3; ++s) before.AddShard(s);
  HashRing after = before;
  after.AddShard(3);

  size_t moved = 0;
  const size_t kNames = 3000;
  for (size_t i = 0; i < kNames; ++i) {
    const std::string name = "t" + std::to_string(i);
    const uint32_t old_owner = before.OwnerOf(name);
    const uint32_t new_owner = after.OwnerOf(name);
    if (old_owner != new_owner) {
      // Consistent hashing: a name only ever moves TO the new shard.
      EXPECT_EQ(new_owner, 3u) << name;
      ++moved;
    }
  }
  // Expected movement is ~1/4 of the keyspace; anything near 1/2 would
  // mean the ring rehashes like a modulo partitioner.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kNames, 0.45);
}

// ------------------------------------------------------------- topk merge

struct MiniHit {
  std::string name;
  double score = 0;
};

TEST(TopkMergeTest, NWayMergesByScoreWithTieBreak) {
  std::vector<std::vector<MiniHit>> lists = {
      {{"b", 3.0}, {"d", 1.0}},
      {{"c", 3.0}, {"e", 2.0}},
      {{"a", 3.0}}};
  const std::vector<MiniHit> merged = MergeRankedTopK(
      std::move(lists), 4,
      [](const MiniHit& x, const MiniHit& y) { return x.name < y.name; });
  ASSERT_EQ(merged.size(), 4u);
  // Ties at 3.0 ordered by name regardless of which list they came from.
  EXPECT_EQ(merged[0].name, "a");
  EXPECT_EQ(merged[1].name, "b");
  EXPECT_EQ(merged[2].name, "c");
  EXPECT_EQ(merged[3].name, "e");
}

TEST(TopkMergeTest, TwoWayPrefersFirstListOnTies) {
  std::vector<MiniHit> base = {{"base", 2.0}};
  std::vector<MiniHit> delta = {{"delta", 2.0}, {"delta_hi", 5.0}};
  const std::vector<MiniHit> merged =
      MergeRankedTopK(std::move(base), std::move(delta), 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "delta_hi");
  EXPECT_EQ(merged[1].name, "base");   // tie goes to the first list
  EXPECT_EQ(merged[2].name, "delta");
}

TEST(TopkMergeTest, CutsToK) {
  std::vector<std::vector<MiniHit>> lists = {{{"a", 9}, {"b", 8}},
                                             {{"c", 7}, {"d", 6}}};
  EXPECT_EQ(MergeRankedTopK(std::move(lists), 3,
                            [](const MiniHit& x, const MiniHit& y) {
                              return x.name < y.name;
                            })
                .size(),
            3u);
}

// ---------------------------------------------------------- metric families

TEST(MetricFamilyTest, LabeledMembersFlattenIntoRegistry) {
  serve::MetricsRegistry metrics;
  serve::CounterFamily* queries =
      metrics.GetCounterFamily("cluster.shard.queries", "shard");
  queries->WithLabel(uint64_t{3})->Add(7);
  queries->WithLabel(uint64_t{0})->Add();
  serve::GaugeFamily* tables =
      metrics.GetGaugeFamily("cluster.shard.tables", "shard");
  tables->WithLabel(uint64_t{3})->Set(42);

  // Same (name, label) -> same counter instance.
  EXPECT_EQ(queries->WithLabel(uint64_t{3}), queries->WithLabel("3"));

  const serve::MetricsRegistry::Snapshot snap = metrics.Snap();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return UINT64_MAX;
  };
  EXPECT_EQ(counter("cluster.shard.queries{shard=3}"), 7u);
  EXPECT_EQ(counter("cluster.shard.queries{shard=0}"), 1u);
  bool found_gauge = false;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "cluster.shard.tables{shard=3}") {
      found_gauge = true;
      EXPECT_EQ(v, 42u);
    }
  }
  EXPECT_TRUE(found_gauge);
}

// --------------------------------------------------------- cluster engine

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

/// Shared immutable lake + unpartitioned reference engine; the cluster
/// engines for each shard count are built once and reused (construction
/// is the expensive part — every test after that only queries).
class ClusterEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 11;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
    reference_ =
        new DiscoveryEngine(&lake_->catalog, &lake_->kb, BaseOptions());
    clusters_ = new std::map<size_t, std::unique_ptr<ClusterEngine>>();
  }

  static void TearDownTestSuite() {
    delete clusters_;
    delete reference_;
    delete lake_;
    clusters_ = nullptr;
    reference_ = nullptr;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static const DataLakeCatalog& lake() { return lake_->catalog; }

  static ClusterEngine::Options ClusterOptions(size_t shards,
                                               size_t replicas = 1) {
    ClusterEngine::Options opts;
    opts.num_shards = shards;
    opts.num_replicas = replicas;
    opts.engine.base_options = BaseOptions();
    opts.engine.kb = &lake_->kb;
    return opts;
  }

  /// Cached cluster over the shared lake with N shards, R = 1.
  static const ClusterEngine& Cluster(size_t shards) {
    auto it = clusters_->find(shards);
    if (it == clusters_->end()) {
      it = clusters_
               ->emplace(shards, std::make_unique<ClusterEngine>(
                                     lake(), ClusterOptions(shards)))
               .first;
    }
    return *it->second;
  }

  /// Full-coverage k: no k-boundary tie can make two correct rankings
  /// diverge on membership.
  static size_t FullK() { return lake().num_tables() + 8; }

  struct NamedHit {
    std::string name;
    size_t column = 0;
    double score = 0;
  };

  static void SortCanonical(std::vector<NamedHit>* hits) {
    std::sort(hits->begin(), hits->end(),
              [](const NamedHit& a, const NamedHit& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.name != b.name) return a.name < b.name;
                return a.column < b.column;
              });
  }

  static std::vector<NamedHit> Canon(const std::vector<TableResult>& rs) {
    std::vector<NamedHit> out;
    for (const TableResult& r : rs) {
      out.push_back({lake().table(r.table_id).name(), 0, r.score});
    }
    SortCanonical(&out);
    return out;
  }
  static std::vector<NamedHit> Canon(const std::vector<ColumnResult>& rs) {
    std::vector<NamedHit> out;
    for (const ColumnResult& r : rs) {
      out.push_back({lake().table(r.column.table_id).name(),
                     r.column.column_index, r.score});
    }
    SortCanonical(&out);
    return out;
  }
  static std::vector<NamedHit> Canon(const std::vector<TableHit>& hs) {
    std::vector<NamedHit> out;
    for (const TableHit& h : hs) out.push_back({h.table, 0, h.score});
    SortCanonical(&out);
    return out;
  }
  static std::vector<NamedHit> Canon(const std::vector<ColumnHit>& hs) {
    std::vector<NamedHit> out;
    for (const ColumnHit& h : hs) {
      out.push_back({h.table, h.column_index, h.score});
    }
    SortCanonical(&out);
    return out;
  }

  static void ExpectSameRanking(const std::vector<NamedHit>& expected,
                                const std::vector<NamedHit>& actual,
                                const std::string& context) {
    ASSERT_EQ(expected.size(), actual.size()) << context;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].name, actual[i].name)
          << context << " rank " << i;
      EXPECT_EQ(expected[i].column, actual[i].column)
          << context << " rank " << i;
      EXPECT_DOUBLE_EQ(expected[i].score, actual[i].score)
          << context << " rank " << i << " (" << expected[i].name << ")";
    }
  }

  static std::vector<std::string> JoinQuery() {
    return lake().table(0).column(0).DistinctStrings();
  }

  static GeneratedLake* lake_;
  static DiscoveryEngine* reference_;
  static std::map<size_t, std::unique_ptr<ClusterEngine>>* clusters_;
};

GeneratedLake* ClusterEngineTest::lake_ = nullptr;
DiscoveryEngine* ClusterEngineTest::reference_ = nullptr;
std::map<size_t, std::unique_ptr<ClusterEngine>>*
    ClusterEngineTest::clusters_ = nullptr;

TEST_F(ClusterEngineTest, PartitionsTheWholeLake) {
  const ClusterEngine& cluster = Cluster(4);
  EXPECT_EQ(cluster.num_shards(), 4u);
  EXPECT_EQ(cluster.TotalVisibleTables(), lake().num_tables());

  size_t health_total = 0;
  for (const ClusterEngine::ShardHealth& sh : cluster.Health()) {
    health_total += sh.tables;
    EXPECT_EQ(sh.replicas_alive, 1u);
  }
  EXPECT_EQ(health_total, lake().num_tables());

  // Every table lands on the shard the public ring lookup names.
  for (TableId id = 0; id < lake().num_tables(); ++id) {
    EXPECT_LT(cluster.OwnerOf(lake().table(id).name()), 4u);
  }
}

TEST_F(ClusterEngineTest, KeywordMatchesSingleEngineForAllShardCounts) {
  for (size_t shards : {1u, 2u, 4u, 7u}) {
    for (size_t t = 0; t < lake_->topic_of.size(); ++t) {
      const std::string& topic = lake_->topic_of[t];
      const std::vector<NamedHit> expected =
          Canon(reference_->Keyword(topic, FullK()));
      const TableQueryResponse got =
          Cluster(shards).Keyword(topic, FullK());
      ASSERT_TRUE(got.status.ok()) << got.status;
      EXPECT_FALSE(got.degraded);
      ExpectSameRanking(expected, Canon(got.hits),
                        "keyword topic " + std::to_string(t) + " shards=" +
                            std::to_string(shards));
    }
  }
}

TEST_F(ClusterEngineTest, JoinableMatchesSingleEngineForAllShardCounts) {
  const std::vector<std::string> query = JoinQuery();
  for (JoinMethod method :
       {JoinMethod::kJosie, JoinMethod::kExactContainment}) {
    const auto direct = reference_->Joinable(query, method, FullK() * 4);
    ASSERT_TRUE(direct.ok()) << direct.status();
    const std::vector<NamedHit> expected = Canon(*direct);
    for (size_t shards : {1u, 2u, 4u, 7u}) {
      const ColumnQueryResponse got =
          Cluster(shards).Joinable(query, method, FullK() * 4);
      ASSERT_TRUE(got.status.ok()) << got.status;
      ExpectSameRanking(expected, Canon(got.hits),
                        "join method " +
                            std::to_string(static_cast<int>(method)) +
                            " shards=" + std::to_string(shards));
    }
  }
}

TEST_F(ClusterEngineTest, UnionableMatchesSingleEngineForAllShardCounts) {
  const Table& query = lake().table(0);
  for (UnionMethod method : {UnionMethod::kTus, UnionMethod::kStarmie}) {
    const auto direct =
        reference_->Unionable(query, method, FullK(), /*exclude=*/0);
    ASSERT_TRUE(direct.ok()) << direct.status();
    const std::vector<NamedHit> expected = Canon(*direct);
    for (size_t shards : {1u, 2u, 4u, 7u}) {
      const TableQueryResponse got = Cluster(shards).Unionable(
          query, method, FullK(), /*exclude_name=*/query.name());
      ASSERT_TRUE(got.status.ok()) << got.status;
      for (const TableHit& h : got.hits) {
        EXPECT_NE(h.table, query.name());  // exclusion by name
      }
      ExpectSameRanking(expected, Canon(got.hits),
                        "union method " +
                            std::to_string(static_cast<int>(method)) +
                            " shards=" + std::to_string(shards));
    }
  }
}

TEST_F(ClusterEngineTest, CorrelatedMatchesSingleEngine) {
  const Table& table = lake().table(0);
  std::vector<std::string> keys;
  std::vector<double> numbers;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (!table.column(c).IsNumeric() && keys.empty()) {
      keys = table.column(c).NonNullStrings();
    }
    if (table.column(c).IsNumeric() && numbers.empty()) {
      numbers = table.column(c).Numbers();
    }
  }
  ASSERT_FALSE(keys.empty());
  ASSERT_FALSE(numbers.empty());
  const size_t rows = std::min(keys.size(), numbers.size());
  keys.resize(rows);
  numbers.resize(rows);

  const CorrelatedJoinSearch* correlated = reference_->correlated_join();
  ASSERT_NE(correlated, nullptr);
  const auto direct = correlated->Search(keys, numbers, FullK() * 4);
  ASSERT_TRUE(direct.ok()) << direct.status();
  std::vector<NamedHit> expected;
  for (const auto& r : *direct) {
    expected.push_back(
        {lake().table(r.table_id).name(), r.numeric_column, r.score});
  }
  SortCanonical(&expected);

  for (size_t shards : {2u, 4u}) {
    const ColumnQueryResponse got =
        Cluster(shards).Correlated(keys, numbers, FullK() * 4);
    ASSERT_TRUE(got.status.ok()) << got.status;
    ExpectSameRanking(expected, Canon(got.hits),
                      "correlated shards=" + std::to_string(shards));
  }
}

TEST_F(ClusterEngineTest, ApplyBatchRoutesAddsToOwningShard) {
  ClusterEngine cluster(lake(), ClusterOptions(3));
  const uint64_t version_before = cluster.version();

  Table derived = lake().table(1);
  derived.set_name("routed_ingest_copy");
  ingest::LiveEngine::Batch batch;
  batch.adds.push_back(std::move(derived));

  const ingest::LiveEngine::BatchOutcome outcome =
      cluster.ApplyBatch(std::move(batch));
  ASSERT_EQ(outcome.adds.size(), 1u);
  ASSERT_TRUE(outcome.adds[0].ok()) << outcome.adds[0].status();
  EXPECT_TRUE(outcome.published);
  EXPECT_GT(cluster.version(), version_before);
  EXPECT_EQ(cluster.TotalVisibleTables(), lake().num_tables() + 1);

  // The new table answers union queries against its origin's template and
  // reports the shard the ring owns it on.
  const uint32_t owner = cluster.OwnerOf("routed_ingest_copy");
  const TableQueryResponse got =
      cluster.Unionable(lake().table(1), UnionMethod::kTus, FullK());
  ASSERT_TRUE(got.status.ok()) << got.status;
  bool found = false;
  for (const TableHit& h : got.hits) {
    if (h.table == "routed_ingest_copy") {
      found = true;
      EXPECT_EQ(h.shard, owner);
    }
  }
  EXPECT_TRUE(found);

  // Remove routes by the same ring: the table disappears cluster-wide.
  ingest::LiveEngine::Batch removal;
  removal.removes.push_back("routed_ingest_copy");
  const auto remove_outcome = cluster.ApplyBatch(std::move(removal));
  ASSERT_EQ(remove_outcome.removes.size(), 1u);
  EXPECT_TRUE(remove_outcome.removes[0].ok()) << remove_outcome.removes[0];
  EXPECT_EQ(cluster.TotalVisibleTables(), lake().num_tables());
}

TEST_F(ClusterEngineTest, CheckpointAndRecoverRoundTrip) {
  const std::string root = TestDir("recover");
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/2);
  opts.store_root = root;

  std::vector<NamedHit> expected;
  {
    ClusterEngine cluster(lake(), opts);
    Table derived = lake().table(2);
    derived.set_name("durable_delta_table");
    ingest::LiveEngine::Batch batch;
    batch.adds.push_back(std::move(derived));
    ASSERT_TRUE(cluster.ApplyBatch(std::move(batch)).adds[0].ok());

    ASSERT_TRUE(cluster.Checkpoint().ok());
    const TableQueryResponse before =
        cluster.Keyword(lake_->topic_of[0], FullK());
    ASSERT_TRUE(before.status.ok()) << before.status;
    expected = Canon(before.hits);
  }

  Result<std::unique_ptr<ClusterEngine>> recovered =
      ClusterEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->num_shards(), 2u);
  EXPECT_EQ((*recovered)->num_replicas(), 2u);
  EXPECT_EQ((*recovered)->TotalVisibleTables(), lake().num_tables() + 1);

  const TableQueryResponse after =
      (*recovered)->Keyword(lake_->topic_of[0], FullK());
  ASSERT_TRUE(after.status.ok()) << after.status;
  ExpectSameRanking(expected, Canon(after.hits), "recovered keyword");
}

TEST_F(ClusterEngineTest, CheckpointWithoutStoreRootFails) {
  ClusterEngine cluster(lake(), ClusterOptions(2));
  EXPECT_EQ(cluster.Checkpoint().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- query service, cluster

TEST_F(ClusterEngineTest, QueryServiceClusterModeServesWithProvenance) {
  serve::QueryService service(&Cluster(4), serve::QueryService::Options{});

  serve::QueryRequest req;
  req.kind = serve::QueryKind::kKeyword;
  req.keyword = lake_->topic_of[0];
  req.k = FullK();
  const serve::QueryResponse response = service.Execute(req);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_FALSE(response.degraded);
  EXPECT_TRUE(response.missing_shards.empty());
  ASSERT_FALSE(response.tables.empty());
  // Provenance is parallel to the hits and agrees with the ring.
  ASSERT_EQ(response.table_names.size(), response.tables.size());
  ASSERT_EQ(response.shards.size(), response.tables.size());
  for (size_t i = 0; i < response.tables.size(); ++i) {
    EXPECT_EQ(response.shards[i],
              Cluster(4).OwnerOf(response.table_names[i]));
  }

  const std::vector<NamedHit> expected =
      Canon(reference_->Keyword(req.keyword, req.k));
  std::vector<NamedHit> got;
  for (size_t i = 0; i < response.tables.size(); ++i) {
    got.push_back({response.table_names[i], 0, response.tables[i].score});
  }
  SortCanonical(&got);
  ExpectSameRanking(expected, got, "service keyword");

  // Second identical query: cache hit with the provenance intact.
  const serve::QueryResponse again = service.Execute(req);
  ASSERT_TRUE(again.status.ok()) << again.status;
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.table_names, response.table_names);
  EXPECT_EQ(again.shards, response.shards);

  // Cluster health is wired into the service snapshot.
  const serve::QueryService::HealthSnapshot health = service.Health();
  ASSERT_EQ(health.shards.size(), 4u);
  EXPECT_TRUE(health.ok);
}

TEST_F(ClusterEngineTest, QueryServiceClusterUnionExcludesByName) {
  serve::QueryService service(&Cluster(2), serve::QueryService::Options{});
  serve::QueryRequest req;
  req.kind = serve::QueryKind::kUnion;
  req.union_method = UnionMethod::kTus;
  req.union_table = &lake().table(0);
  req.exclude_name = lake().table(0).name();
  req.k = FullK();
  const serve::QueryResponse response = service.Execute(req);
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_FALSE(response.tables.empty());
  for (const std::string& name : response.table_names) {
    EXPECT_NE(name, req.exclude_name);
  }
}

TEST_F(ClusterEngineTest, QueryServiceClusterCacheKeyTracksIngest) {
  ClusterEngine cluster(lake(), ClusterOptions(2));
  serve::QueryService service(&cluster, serve::QueryService::Options{});

  serve::QueryRequest req;
  req.kind = serve::QueryKind::kKeyword;
  req.keyword = lake_->topic_of[1];
  req.k = FullK();
  ASSERT_TRUE(service.Execute(req).status.ok());
  EXPECT_TRUE(service.Execute(req).cache_hit);

  // An ingest bumps the cluster version; the stale entry is unreachable.
  Table derived = lake().table(3);
  derived.set_name("cache_invalidation_probe");
  ingest::LiveEngine::Batch batch;
  batch.adds.push_back(std::move(derived));
  ASSERT_TRUE(cluster.ApplyBatch(std::move(batch)).adds[0].ok());
  const serve::QueryResponse fresh = service.Execute(req);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);
}

TEST_F(ClusterEngineTest, ClusterMetricsAccumulate) {
  serve::MetricsRegistry metrics;
  ClusterEngine::Options opts = ClusterOptions(2);
  opts.metrics = &metrics;
  ClusterEngine cluster(lake(), opts);

  ASSERT_TRUE(cluster.Keyword(lake_->topic_of[0], 5).status.ok());
  cluster.Health();  // refreshes the labeled gauges

  const serve::MetricsRegistry::Snapshot snap = metrics.Snap();
  uint64_t total = 0;
  uint64_t per_shard = 0;
  uint64_t tables_gauge_sum = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "cluster.queries") total = value;
    if (name.rfind("cluster.shard.queries{", 0) == 0) per_shard += value;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind("cluster.shard.tables{", 0) == 0) {
      tables_gauge_sum += value;
    }
  }
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(per_shard, 2u);  // one scatter touches both shards
  EXPECT_EQ(tables_gauge_sum, lake().num_tables());
}

}  // namespace
}  // namespace lake::cluster
