/// Deterministic fuzz smoke for the WAL record parser: a seeded corpus of
/// valid logs is mutated (bit flips, truncations, splices, header edits)
/// for a fixed number of iterations, and every mutant must replay without
/// crashing or erroring — damage degrades to a truncated tail, never UB.
/// Runs under ASan/UBSan in CI; the fixed seed makes failures replayable.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/wal.h"
#include "util/string_util.h"

namespace lake::store {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 0x1a7e5eedULL;  // fixed: runs are reproducible

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_wal_fuzz_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// A valid single-segment log with `n` records of varying sizes.
std::string MakeCorpusSegment(const std::string& dir, int n,
                              std::mt19937_64* rng) {
  WalWriter::Options opts;
  opts.sync = WalWriter::SyncPolicy::kNone;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, opts);
  EXPECT_TRUE(writer.ok());
  for (int i = 0; i < n; ++i) {
    const size_t len = (*rng)() % 64;
    std::string payload(len, '\0');
    for (char& c : payload) c = static_cast<char>((*rng)() & 0xff);
    EXPECT_TRUE((*writer)->Append(payload).ok());
  }
  writer->reset();
  const auto segments = WalWriter::ListSegments(dir);
  EXPECT_EQ(segments.size(), 1u);
  return segments.empty() ? std::string() : segments[0].second;
}

std::string Mutate(std::string bytes, std::mt19937_64* rng) {
  if (bytes.empty()) return bytes;
  switch ((*rng)() % 5) {
    case 0:  // single bit flip
      bytes[(*rng)() % bytes.size()] ^= static_cast<char>(1 << ((*rng)() % 8));
      break;
    case 1:  // truncation
      bytes.resize((*rng)() % bytes.size());
      break;
    case 2: {  // byte-range scramble
      const size_t at = (*rng)() % bytes.size();
      const size_t len = std::min<size_t>(bytes.size() - at, (*rng)() % 16);
      for (size_t i = 0; i < len; ++i) {
        bytes[at + i] = static_cast<char>((*rng)() & 0xff);
      }
      break;
    }
    case 3: {  // splice: duplicate a random slice into a random position
      const size_t from = (*rng)() % bytes.size();
      const size_t len = std::min<size_t>(bytes.size() - from, (*rng)() % 32);
      const size_t to = (*rng)() % bytes.size();
      bytes.insert(to, bytes.substr(from, len));
      break;
    }
    case 4:  // garbage tail (torn append)
      for (size_t i = (*rng)() % 20; i > 0; --i) {
        bytes.push_back(static_cast<char>((*rng)() & 0xff));
      }
      break;
  }
  return bytes;
}

TEST(WalFuzzTest, MutatedSegmentsNeverCrashOrErrorReplay) {
  const std::string dir = TestDir("mutants");
  std::mt19937_64 rng(kSeed);
  const std::string seg_path = MakeCorpusSegment(dir, 12, &rng);
  ASSERT_FALSE(seg_path.empty());
  const std::string intact = ReadFile(seg_path);
  ASSERT_FALSE(intact.empty());

  constexpr int kIterations = 400;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::string mutant = intact;
    // Stack 1-3 mutations so damage compounds like real corruption.
    const int rounds = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < rounds; ++r) mutant = Mutate(std::move(mutant), &rng);
    WriteFile(seg_path, mutant);

    uint64_t prev_lsn = 0;
    uint64_t payload_bytes = 0;
    Result<WalReader::ReplayStats> stats = WalReader::Replay(
        dir, 0, [&](uint64_t lsn, std::string_view payload) {
          // Delivered records are strictly the dense prefix.
          EXPECT_EQ(lsn, prev_lsn + 1) << "iteration " << iter;
          prev_lsn = lsn;
          payload_bytes += payload.size();
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << "iteration " << iter << ": " << stats.status();
    EXPECT_LE(stats->records_replayed, 64u) << "iteration " << iter;
    EXPECT_LE(payload_bytes + stats->truncated_bytes +
                  stats->records_replayed * kWalRecordHeaderBytes,
              mutant.size() + 64)
        << "iteration " << iter;
  }
  WriteFile(seg_path, intact);  // leave the corpus clean

  auto final_stats = WalReader::Replay(
      dir, 0, [](uint64_t, std::string_view) { return Status::OK(); });
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(final_stats->records_replayed, 12u);
  EXPECT_TRUE(final_stats->clean);
}

/// Mutations across a multi-segment log: the dense-chain rule must hold
/// regardless of which segment the damage lands in.
TEST(WalFuzzTest, MutatedMultiSegmentLogsHoldChainInvariant) {
  const std::string dir = TestDir("multi");
  std::mt19937_64 rng(kSeed ^ 0x5e60ULL);
  WalWriter::Options opts;
  opts.sync = WalWriter::SyncPolicy::kNone;
  opts.segment_max_bytes = 128;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, opts);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*writer)->Append(std::string(24, 'a' + i % 26)).ok());
    }
  }
  const auto segments = WalWriter::ListSegments(dir);
  ASSERT_GT(segments.size(), 2u);
  std::vector<std::string> intact;
  for (const auto& [first, path] : segments) intact.push_back(ReadFile(path));

  constexpr int kIterations = 200;
  for (int iter = 0; iter < kIterations; ++iter) {
    const size_t victim = rng() % segments.size();
    WriteFile(segments[victim].second, Mutate(intact[victim], &rng));

    uint64_t prev_lsn = 0;
    Result<WalReader::ReplayStats> stats = WalReader::Replay(
        dir, 0, [&](uint64_t lsn, std::string_view) {
          EXPECT_EQ(lsn, prev_lsn + 1) << "iteration " << iter;
          prev_lsn = lsn;
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << "iteration " << iter << ": " << stats.status();

    WriteFile(segments[victim].second, intact[victim]);  // heal
  }
}

}  // namespace
}  // namespace lake::store
