#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "apps/augmentation.h"
#include "apps/homograph.h"
#include "apps/leva.h"
#include "apps/ridge_regression.h"
#include "apps/stitching.h"
#include "lakegen/generator.h"
#include "index/vector_ops.h"
#include "search/join_josie.h"
#include "util/logging.h"
#include "util/random.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

Column MakeNumeric(const std::string& name, const std::vector<double>& vals) {
  Column c(name, DataType::kDouble);
  for (double v : vals) c.Append(Value(v));
  return c;
}

// --- Ridge regression ---------------------------------------------------

TEST(RidgeTest, RecoversLinearModel) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.NextGaussian();
    const double b = rng.NextGaussian();
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 1.0 + rng.NextGaussian() * 0.01);
  }
  RidgeRegression model(1e-6);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.weights()[0], 3.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -2.0, 0.05);
  EXPECT_NEAR(model.intercept(), 1.0, 0.05);
  EXPECT_GT(model.RSquared(x, y).value(), 0.99);
}

TEST(RidgeTest, RegularizationShrinks) {
  Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.NextGaussian();
    x.push_back({a});
    y.push_back(2.0 * a);
  }
  RidgeRegression weak(1e-6), strong(1e4);
  ASSERT_TRUE(weak.Fit(x, y).ok());
  ASSERT_TRUE(strong.Fit(x, y).ok());
  EXPECT_GT(std::abs(weak.weights()[0]), std::abs(strong.weights()[0]));
}

TEST(RidgeTest, InputValidation) {
  RidgeRegression model;
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(model.Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(model.Predict({1.0}).ok());  // unfitted
  ASSERT_TRUE(model.Fit({{1.0}, {2.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(model.Predict({1.0, 2.0}).ok());
}

TEST(RidgeTest, CrossValidation) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.NextGaussian();
    x.push_back({a});
    y.push_back(a + rng.NextGaussian() * 0.1);
  }
  EXPECT_GT(CrossValidatedR2(x, y, 4, 0.1).value(), 0.8);
  EXPECT_FALSE(CrossValidatedR2(x, y, 1, 0.1).ok());
  EXPECT_FALSE(CrossValidatedR2({{1.0}}, {1.0}, 4, 0.1).ok());
}

// --- Augmentation ------------------------------------------------------------

TEST(AugmentationTest, JoinedFeatureImprovesModel) {
  Rng rng(7);
  // Lake table: key -> hidden driver of the target.
  const size_t n = 120;
  std::vector<std::string> keys;
  std::vector<double> driver(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("k" + std::to_string(i));
    driver[i] = rng.NextGaussian();
  }
  DataLakeCatalog cat;
  {
    Table lake_table("drivers");
    LAKE_CHECK(lake_table.AddColumn(MakeColumn("key", keys)).ok());
    LAKE_CHECK(lake_table.AddColumn(MakeNumeric("driver", driver)).ok());
    std::vector<double> noise(n);
    for (double& v : noise) v = rng.NextGaussian();
    LAKE_CHECK(lake_table.AddColumn(MakeNumeric("noise", noise)).ok());
    LAKE_CHECK(cat.AddTable(std::move(lake_table)).ok());
  }

  // Base table: key + weak feature; target driven mostly by the lake's
  // hidden driver column.
  Table base("base");
  LAKE_CHECK(base.AddColumn(MakeColumn("key", keys)).ok());
  std::vector<double> weak(n), target(n);
  for (size_t i = 0; i < n; ++i) {
    weak[i] = rng.NextGaussian();
    target[i] = 0.2 * weak[i] + 2.0 * driver[i] + rng.NextGaussian() * 0.05;
  }
  LAKE_CHECK(base.AddColumn(MakeNumeric("weak", weak)).ok());

  JosieJoinSearch join(&cat);
  DataAugmenter augmenter(&cat, &join);
  const auto report = augmenter.Augment(base, 0, {1}, target).value();

  EXPECT_GT(report.candidates, 0u);
  ASSERT_FALSE(report.selected.empty());
  // The driver column must be among the selected features...
  bool found_driver = false;
  for (const auto& f : report.selected) {
    if (f.name == "drivers.driver") found_driver = true;
  }
  EXPECT_TRUE(found_driver);
  // ...and augmentation must improve cross-validated R² substantially.
  EXPECT_GT(report.augmented_r2, report.base_r2 + 0.3);
}

TEST(AugmentationTest, InputValidation) {
  DataLakeCatalog cat;
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("k", {"a", "b"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  JosieJoinSearch join(&cat);
  DataAugmenter augmenter(&cat, &join);
  Table base("base");
  LAKE_CHECK(base.AddColumn(MakeColumn("k", {"a", "b"})).ok());
  EXPECT_FALSE(augmenter.Augment(base, 5, {}, {1.0, 2.0}).ok());
  EXPECT_FALSE(augmenter.Augment(base, 0, {}, {1.0}).ok());
}

// --- Homograph detection -----------------------------------------------------

TEST(HomographTest, PlantedHomographRanksHigh) {
  // Two disjoint column communities bridged only by "jaguar".
  DataLakeCatalog cat;
  auto add_table = [&cat](const std::string& name, const std::string& col,
                          std::vector<std::string> vals) {
    Table t(name);
    LAKE_CHECK(t.AddColumn(MakeColumn(col, vals)).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  };
  add_table("animals1", "animal", {"jaguar", "lion", "tiger", "puma"});
  add_table("animals2", "animal", {"lion", "tiger", "leopard", "jaguar"});
  add_table("cars1", "car", {"jaguar", "porsche", "ferrari", "audi"});
  add_table("cars2", "car", {"porsche", "audi", "jaguar", "bentley"});

  HomographDetector::Options opts;
  opts.sample_sources = 0;  // exact
  HomographDetector detector(&cat, opts);
  const auto top = detector.TopHomographs(3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].value, "jaguar");
  EXPECT_EQ(top[0].column_count, 4u);
  EXPECT_GT(top[0].centrality, 0.0);
}

TEST(HomographTest, GeneratedLakeHomographsDetected) {
  GeneratorOptions opts;
  opts.seed = 29;
  opts.num_domains = 8;
  opts.num_templates = 5;
  opts.tables_per_template = 5;
  opts.homograph_count = 4;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  ASSERT_FALSE(lake.homographs.empty());

  HomographDetector detector(&lake.catalog);
  const auto top = detector.TopHomographs(30);
  const std::unordered_set<std::string> planted(lake.homographs.begin(),
                                                lake.homographs.end());
  size_t found = 0;
  for (const auto& s : top) {
    if (planted.count(s.value)) ++found;
  }
  // At least half the planted homographs should surface in the top-30.
  EXPECT_GE(found * 2, planted.size());
}

TEST(HomographTest, EmptyLake) {
  DataLakeCatalog cat;
  HomographDetector detector(&cat);
  EXPECT_TRUE(detector.TopHomographs(5).empty());
}

// --- Stitching ---------------------------------------------------------------

// --- Leva graph embeddings ----------------------------------------------

TEST(LevaTest, ValueEmbeddingAbsorbsInterTableContext) {
  // "anchor" co-occurs with the kelo-family values in two tables; after
  // propagation its embedding moves toward that family and away from the
  // zuvi-family it never co-occurs with.
  DataLakeCatalog cat;
  auto add = [&cat](const std::string& name,
                    const std::vector<std::string>& vals) {
    Table t(name);
    LAKE_CHECK(t.AddColumn(MakeColumn("c", vals)).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  };
  add("a", {"anchor", "kelora", "kelavi", "keluna"});
  add("b", {"anchor", "kelovo", "kelime"});
  add("c", {"zuvira", "zuvalo", "zuvemi"});

  WordEmbedding words;
  LevaEmbedder leva(&cat, &words);
  const Vector anchor = leva.EmbedValue("anchor");
  const Vector kel = words.EmbedToken("kelora");
  const Vector zuv = words.EmbedToken("zuvira");
  EXPECT_GT(CosineSimilarity(anchor, kel), CosineSimilarity(anchor, zuv));
  // The raw word embedding of "anchor" has no such preference.
  const Vector raw = words.EmbedToken("anchor");
  EXPECT_GT(CosineSimilarity(anchor, kel) - CosineSimilarity(anchor, zuv),
            CosineSimilarity(raw, kel) - CosineSimilarity(raw, zuv));
}

TEST(LevaTest, UnknownValueIsZero) {
  DataLakeCatalog cat;
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("c", {"x1", "x2"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  WordEmbedding words;
  LevaEmbedder leva(&cat, &words);
  EXPECT_DOUBLE_EQ(Norm(leva.EmbedValue("never-seen")), 0.0);
  EXPECT_GT(Norm(leva.EmbedValue("x1")), 0.9);
}

TEST(LevaTest, RowFeaturesSeparateTemplates) {
  GeneratorOptions opts;
  opts.seed = 77;
  opts.num_domains = 6;
  opts.num_templates = 2;
  opts.tables_per_template = 4;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  WordEmbedding words;
  LevaEmbedder leva(&lake.catalog, &words);
  EXPECT_GT(leva.num_value_nodes(), 0u);

  // Rows of two tables from the SAME template should be closer (in mean
  // feature space) than rows of tables from different templates.
  auto centroid = [&](TableId t) {
    const auto rows = leva.EmbedRows(lake.catalog.table(t));
    std::vector<double> mean(leva.dim(), 0.0);
    for (const auto& row : rows) {
      for (size_t i = 0; i < row.size(); ++i) mean[i] += row[i];
    }
    for (double& m : mean) m /= static_cast<double>(rows.size());
    return mean;
  };
  auto cos = [](const std::vector<double>& a, const std::vector<double>& b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };
  const auto c00 = centroid(lake.unionable_groups[0][0]);
  const auto c01 = centroid(lake.unionable_groups[0][1]);
  const auto c10 = centroid(lake.unionable_groups[1][0]);
  EXPECT_GT(cos(c00, c01), cos(c00, c10));
}

TEST(LevaTest, EmbedRowsShape) {
  DataLakeCatalog cat;
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("c", {"x1", "x2", "x3"})).ok());
  LAKE_CHECK(t.AddColumn(MakeNumeric("n", {1, 2, 3})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  WordEmbedding words;
  LevaEmbedder leva(&cat, &words);
  const auto rows = leva.EmbedRows(cat.table(0));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].size(), leva.dim());
}

TEST(StitchingTest, GroupsEquivalentHeaders) {
  DataLakeCatalog cat;
  auto add = [&cat](const std::string& name, const std::string& c1,
                    const std::string& c2) {
    Table t(name);
    LAKE_CHECK(t.AddColumn(MakeColumn(c1, {"a" + name, "b" + name})).ok());
    LAKE_CHECK(t.AddColumn(MakeColumn(c2, {"x" + name, "y" + name})).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  };
  add("t1", "city", "country");
  add("t2", "City", "Country");
  add("t3", "city", "COUNTRY");
  add("u1", "movie", "director");

  TableStitcher stitcher(&cat);
  const auto groups = stitcher.Stitch();
  ASSERT_GE(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 3u);  // the city/country family
  EXPECT_EQ(groups[0].header,
            (std::vector<std::string>{"city", "country"}));
  EXPECT_EQ(groups[0].total_rows, 6u);
}

TEST(StitchingTest, StitchedYieldsMoreFactsThanAnySingle) {
  DataLakeCatalog cat;
  auto add = [&cat](const std::string& name,
                    const std::vector<std::string>& cities,
                    const std::vector<std::string>& countries) {
    Table t(name);
    LAKE_CHECK(t.AddColumn(MakeColumn("city", cities)).ok());
    LAKE_CHECK(t.AddColumn(MakeColumn("country", countries)).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  };
  add("part1", {"kel", "mor"}, {"kelland", "morland"});
  add("part2", {"tuv", "zem"}, {"tuvland", "zemland"});
  add("part3", {"kel", "vor"}, {"kelland", "vorland"});  // 1 duplicate fact

  TableStitcher stitcher(&cat);
  KnowledgeBase kb;
  const auto report = stitcher.CompleteKb(&kb).value();
  EXPECT_EQ(report.facts_from_stitched, 5u);       // union of distinct facts
  EXPECT_EQ(report.facts_from_single_tables, 2u);  // best single member
  EXPECT_GT(kb.num_relation_instances(), 0u);
  EXPECT_EQ(kb.RelationsBetween("kel", "kelland").size(), 1u);
}

TEST(StitchingTest, NullKbRejected) {
  DataLakeCatalog cat;
  TableStitcher stitcher(&cat);
  EXPECT_FALSE(stitcher.CompleteKb(nullptr).ok());
}

}  // namespace
}  // namespace lake
