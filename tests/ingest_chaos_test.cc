#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/compactor.h"
#include "ingest/live_engine.h"
#include "ingest/pipeline.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"
#include "store/snapshot.h"
#include "table/csv.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace lake::ingest {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_ingest_chaos_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

/// Smaller lake than ingest_test: every scenario here runs threads against
/// repeated engine builds, so the corpus is the cost multiplier.
class IngestChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 23;
    opts.num_domains = 4;
    opts.num_templates = 2;
    opts.tables_per_template = 3;
    opts.min_rows = 20;
    opts.max_rows = 40;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
    catalog_ = new std::shared_ptr<const DataLakeCatalog>(
        std::make_shared<DataLakeCatalog>(std::move(lake_->catalog)));
    engine_ = new std::shared_ptr<const DiscoveryEngine>(
        std::make_shared<DiscoveryEngine>(catalog_->get(), &lake_->kb,
                                          BaseOptions()));
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
    delete lake_;
    engine_ = nullptr;
    catalog_ = nullptr;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static const DataLakeCatalog& base() { return **catalog_; }

  static LiveEngine::Options LiveOptions() {
    LiveEngine::Options opts;
    opts.base_options = BaseOptions();
    opts.kb = &lake_->kb;
    return opts;
  }

  static std::unique_ptr<LiveEngine> MakeLive(LiveEngine::Options opts) {
    return std::make_unique<LiveEngine>(*catalog_, *engine_, std::move(opts));
  }

  static Table Derived(TableId origin, const std::string& name) {
    Table copy = base().table(origin);
    copy.set_name(name);
    return copy;
  }

  static GeneratedLake* lake_;
  static std::shared_ptr<const DataLakeCatalog>* catalog_;
  static std::shared_ptr<const DiscoveryEngine>* engine_;
};

GeneratedLake* IngestChaosTest::lake_ = nullptr;
std::shared_ptr<const DataLakeCatalog>* IngestChaosTest::catalog_ = nullptr;
std::shared_ptr<const DiscoveryEngine>* IngestChaosTest::engine_ = nullptr;

/// Readers run lock-free merged queries nonstop while a writer streams
/// tables through the pipeline and a compactor folds them in. Every
/// acquired generation must be internally consistent: any table id a
/// merged result names must resolve within that same generation.
TEST_F(IngestChaosTest, ConcurrentQueriesDuringIngestAndCompaction) {
  auto live = MakeLive(LiveOptions());
  IngestPipeline::Options popts;
  popts.batch_max_tables = 4;
  popts.batch_max_delay_ms = 1;
  IngestPipeline pipeline(live.get(), popts);
  Compactor::Options copts;
  copts.max_delta_tables = 4;
  copts.poll_interval_ms = 2;
  Compactor compactor(live.get(), copts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<bool> consistent{true};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      const std::string topic = lake_->topic_of[t % lake_->topic_of.size()];
      const std::vector<std::string> values =
          base().table(0).column(0).DistinctStrings();
      while (!stop.load(std::memory_order_relaxed)) {
        auto gen = live->Acquire();
        for (const TableResult& r : MergedKeyword(*gen, topic, 10)) {
          if (!gen->TableName(r.table_id).ok()) {
            consistent.store(false, std::memory_order_relaxed);
          }
        }
        Result<std::vector<ColumnResult>> join =
            MergedJoinable(*gen, values, JoinMethod::kJosie, 10);
        if (join.ok()) {
          for (const ColumnResult& r : join.value()) {
            if (!gen->TableName(r.column.table_id).ok()) {
              consistent.store(false, std::memory_order_relaxed);
            }
          }
        }
        queries_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kTables = 24;
  std::vector<std::future<Result<TableId>>> futures;
  futures.reserve(kTables);
  for (int i = 0; i < kTables; ++i) {
    futures.push_back(pipeline.SubmitTable(
        Derived(static_cast<TableId>(i % base().num_tables()),
                StrFormat("chaos_%03d", i))));
    if (i % 5 == 4) {
      // Interleave removes of previously streamed tables.
      std::future<Status> removed =
          pipeline.SubmitRemove(StrFormat("chaos_%03d", i - 2));
      EXPECT_TRUE(removed.get().ok());
    }
  }
  size_t accepted = 0;
  for (auto& f : futures) {
    if (f.get().ok()) ++accepted;
  }
  pipeline.Flush();
  compactor.TriggerNow();
  // Wait for the triggered compaction to drain the remaining delta.
  for (int i = 0; i < 1000 && live->num_delta_tables() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    compactor.TriggerNow();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  compactor.Stop();

  EXPECT_TRUE(consistent.load());
  EXPECT_GT(queries_ok.load(), 0u);
  EXPECT_EQ(accepted, futures.size());  // queue never overflowed
  EXPECT_GE(live->compactions(), 1u);
  EXPECT_EQ(live->num_delta_tables(), 0u);

  // 24 adds, 4 of them removed again: the final lake holds base + 20.
  auto gen = live->Acquire();
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() + kTables - 4);
  EXPECT_FALSE(gen->has_delta());
}

/// The serving layer under concurrent load while the lake mutates: no
/// served answer may name a table that did not exist in some published
/// generation, and the service must never deadlock against the compactor.
TEST_F(IngestChaosTest, QueryServiceConcurrentWithMutations) {
  auto live = MakeLive(LiveOptions());
  serve::QueryService::Options sopts;
  sopts.num_workers = 3;
  serve::QueryService service(live.get(), sopts);
  Compactor::Options copts;
  copts.max_delta_tables = 3;
  copts.poll_interval_ms = 2;
  Compactor compactor(live.get(), copts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<bool> ok{true};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      serve::QueryRequest req;
      req.kind = serve::QueryKind::kKeyword;
      req.keyword = lake_->topic_of[t % lake_->topic_of.size()];
      req.k = 20;
      while (!stop.load(std::memory_order_relaxed)) {
        serve::QueryResponse resp = service.Execute(req);
        if (resp.status.ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        } else if (resp.status.code() != StatusCode::kOverloaded) {
          ok.store(false, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < 12; ++i) {
    Result<TableId> added = live->AddTable(
        Derived(static_cast<TableId>(i % base().num_tables()),
                StrFormat("svc_chaos_%02d", i)));
    EXPECT_TRUE(added.ok()) << added.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (int i = 0; i < 1000 && live->num_delta_tables() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    compactor.TriggerNow();
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  compactor.Stop();

  EXPECT_TRUE(ok.load());
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(live->Acquire()->visible_table_count(),
            base().num_tables() + 12);
}

/// Crash-during-compaction drill: the swap failpoint kills a compaction
/// after the expensive build, the "process" restarts from the last
/// checkpoint, and recovery must land on a consistent generation with the
/// full delta intact — the crash cost the compaction, nothing else.
TEST_F(IngestChaosTest, CompactionCrashThenRecoveryIsConsistent) {
  const std::string dir = TestDir("compact_crash");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  auto live = MakeLive(opts);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        live->AddTable(Derived(0, StrFormat("crash_%d", i))).ok());
  }
  ASSERT_TRUE(live->RemoveTable(base().table(1).name()).ok());
  ASSERT_TRUE(live->Checkpoint().ok());

  FailpointRegistry::Instance().Arm("ingest.compact.swap",
                                    FaultSpec{FaultSpec::Kind::kError});
  EXPECT_FALSE(live->Compact().ok());
  live.reset();  // the crash

  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.index_sections_rebuilt, 0u);  // base sections healthy
  EXPECT_EQ(report.deltas_replayed, 3u);
  EXPECT_EQ(report.tombstones_replayed, 1u);
  auto gen = (*recovered)->Acquire();
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() + 3 - 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(gen->FindTable(StrFormat("crash_%d", i)).ok());
  }
  EXPECT_FALSE(gen->FindTable(base().table(1).name()).ok());

  // And the recovered engine can finish what the crash interrupted.
  ASSERT_TRUE((*recovered)->Compact().ok());
  EXPECT_EQ((*recovered)->num_delta_tables(), 0u);
  EXPECT_EQ((*recovered)->num_tombstones(), 0u);
}

/// Crash between compaction swap and the post-compaction checkpoint: the
/// in-memory engine has the new base, the store still has the old
/// generation — recovery serves the pre-compaction state (stale but
/// consistent), and every streamed table is still present via the replayed
/// delta.
TEST_F(IngestChaosTest, PersistCrashAfterCompactionLosesNoTables) {
  const std::string dir = TestDir("persist_crash");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  auto live = MakeLive(opts);
  ASSERT_TRUE(live->AddTable(Derived(0, "survivor_a")).ok());
  ASSERT_TRUE(live->AddTable(Derived(1, "survivor_b")).ok());
  ASSERT_TRUE(live->Checkpoint().ok());

  // The compaction itself succeeds; only its follow-up persistence dies.
  FailpointRegistry::Instance().Arm("ingest.delta.persist",
                                    FaultSpec{FaultSpec::Kind::kError});
  Result<LiveEngine::CompactionStats> stats = live->Compact();
  ASSERT_TRUE(stats.ok()) << stats.status();
  live.reset();  // the crash

  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.deltas_replayed, 2u);  // pre-compaction checkpoint
  auto gen = (*recovered)->Acquire();
  EXPECT_TRUE(gen->FindTable("survivor_a").ok());
  EXPECT_TRUE(gen->FindTable("survivor_b").ok());
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() + 2);
}

/// The WAL acceptance drill: N batches acknowledged under per-batch
/// fsync, a checkpoint partway through, then a torn-write kill mid-stream.
/// Recovery must surface EVERY acknowledged batch — the ones covered by
/// the checkpoint from the snapshot, the rest from the log — and must not
/// surface the batch that was never acknowledged.
TEST_F(IngestChaosTest, WalZeroAcknowledgedLossAcrossCrash) {
  const std::string dir = TestDir("wal_zero_loss");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  opts.enable_wal = true;
  opts.wal_options.sync = store::WalWriter::SyncPolicy::kEveryAppend;
  auto live = MakeLive(opts);

  constexpr int kBatches = 8;
  for (int i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(live->AddTable(Derived(i % 4, StrFormat("acked_%d", i))).ok());
    if (i == 2) ASSERT_TRUE(live->Checkpoint().ok());  // durable LSN = 3
  }
  EXPECT_EQ(live->wal_status().last_lsn, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(live->wal_status().durable_lsn, 3u);
  EXPECT_EQ(live->wal_status().unsynced_records, 0u);  // per-append fsync

  // SIGKILL mid-append: a torn prefix persists and the batch is NOT
  // acknowledged. The torn append kills that WalWriter, but the engine
  // rolls to a fresh segment past the tear, so the NEXT batch is
  // acknowledged again — and must then survive the crash like any other.
  FaultSpec torn;
  torn.kind = FaultSpec::Kind::kTornWrite;
  torn.arg = 10;
  FailpointRegistry::Instance().Arm("wal.append.write", torn);
  EXPECT_FALSE(live->AddTable(Derived(0, "never_acked")).ok());
  ASSERT_TRUE(live->AddTable(Derived(1, "after_roll")).ok());  // rolled log
  live.reset();  // the crash

  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.wal_durable_lsn, 3u);
  EXPECT_EQ(report.wal_records_replayed,
            static_cast<uint64_t>(kBatches - 3 + 1));  // LSNs 4..9
  EXPECT_GT(report.wal_truncated_bytes, 0u);  // the torn prefix
  EXPECT_EQ(report.wal_last_lsn, static_cast<uint64_t>(kBatches + 1));

  auto gen = (*recovered)->Acquire();
  for (int i = 0; i < kBatches; ++i) {
    EXPECT_TRUE(gen->FindTable(StrFormat("acked_%d", i)).ok())
        << "acknowledged batch " << i << " lost";
  }
  EXPECT_FALSE(gen->FindTable("never_acked").ok());
  EXPECT_TRUE(gen->FindTable("after_roll").ok())
      << "batch acknowledged after the WAL roll lost";
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() + kBatches + 1);

  // The recovered engine keeps ingesting (fresh segment past the tear)
  // and survives a second crash/recovery round-trip losing nothing.
  ASSERT_TRUE((*recovered)->AddTable(Derived(2, "after_recovery")).ok());
  recovered->reset();
  Result<std::unique_ptr<LiveEngine>> again =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(again.ok()) << again.status();
  gen = (*again)->Acquire();
  EXPECT_TRUE(gen->FindTable("after_recovery").ok());
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() + kBatches + 2);
}

/// Removes and re-adds must replay with the same semantics they were
/// acknowledged with: WAL records carry the accepted ops of each batch in
/// order, so a remove→re-add chain survives a crash.
TEST_F(IngestChaosTest, WalReplaysRemovesAndReAdds) {
  const std::string dir = TestDir("wal_removes");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  opts.enable_wal = true;
  auto live = MakeLive(opts);
  ASSERT_TRUE(live->Checkpoint().ok());  // empty-delta baseline snapshot

  const std::string base_name = base().table(1).name();
  ASSERT_TRUE(live->AddTable(Derived(0, "added")).ok());
  ASSERT_TRUE(live->RemoveTable(base_name).ok());
  ASSERT_TRUE(live->RemoveTable("added").ok());
  ASSERT_TRUE(live->AddTable(Derived(2, "added")).ok());  // re-add
  live.reset();  // crash with every mutation only in the WAL

  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.wal_records_replayed, 4u);
  auto gen = (*recovered)->Acquire();
  EXPECT_TRUE(gen->FindTable("added").ok());
  EXPECT_FALSE(gen->FindTable(base_name).ok());
  EXPECT_EQ(gen->visible_table_count(), base().num_tables());  // +1 −1
}

/// Fail-stop: when the WAL cannot accept an append, the batch must be
/// rejected — never acknowledged-but-volatile. A transient fault rejects
/// one batch; the writer survives and the next batch lands.
TEST_F(IngestChaosTest, WalAppendFailureRejectsBatchAtomically) {
  const std::string dir = TestDir("wal_fail_stop");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  opts.enable_wal = true;
  auto live = MakeLive(opts);

  FailpointRegistry::Instance().Arm("wal.append.write",
                                    FaultSpec{FaultSpec::Kind::kEnospc});
  LiveEngine::Batch batch;
  batch.adds.push_back(Derived(0, "victim_a"));
  batch.adds.push_back(Derived(1, "victim_b"));
  LiveEngine::BatchOutcome outcome = live->ApplyBatch(std::move(batch));
  EXPECT_FALSE(outcome.published);
  ASSERT_EQ(outcome.adds.size(), 2u);
  EXPECT_FALSE(outcome.adds[0].ok());
  EXPECT_FALSE(outcome.adds[1].ok());
  // Nothing leaked into the live state and readers never saw the batch.
  EXPECT_EQ(live->num_delta_tables(), 0u);
  EXPECT_FALSE(live->Acquire()->FindTable("victim_a").ok());

  // Transient fault cleared: the same tables are accepted now, and a
  // recovery sees exactly the acknowledged state.
  ASSERT_TRUE(live->AddTable(Derived(0, "victim_a")).ok());
  ASSERT_TRUE(live->Checkpoint().ok());
  live.reset();
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE((*recovered)->Acquire()->FindTable("victim_a").ok());
}

/// Checkpoints advance the durable LSN and garbage-collect covered
/// segments; recovery after the checkpoint replays only the tail.
TEST_F(IngestChaosTest, WalCheckpointAdvancesDurableLsnAndCollectsSegments) {
  const std::string dir = TestDir("wal_gc");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  opts.enable_wal = true;
  opts.wal_options.sync = store::WalWriter::SyncPolicy::kNone;
  opts.wal_options.segment_max_bytes = 1;  // rotate on every append
  auto live = MakeLive(opts);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(live->AddTable(Derived(i, StrFormat("seg_%d", i))).ok());
  }
  const std::string wal_dir = dir + "/wal";
  EXPECT_EQ(store::WalWriter::ListSegments(wal_dir).size(), 4u);

  ASSERT_TRUE(live->Checkpoint().ok());
  EXPECT_EQ(live->wal_status().durable_lsn, 4u);
  // All four records are snapshot-covered: only the active segment stays.
  EXPECT_EQ(store::WalWriter::ListSegments(wal_dir).size(), 1u);
  EXPECT_EQ(live->wal_status().unsynced_records, 0u);  // covered by floor

  ASSERT_TRUE(live->AddTable(Derived(0, "tail")).ok());
  live.reset();
  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.deltas_replayed, 4u);       // from the snapshot
  EXPECT_EQ(report.wal_records_replayed, 1u);  // just the tail
  EXPECT_TRUE((*recovered)->Acquire()->FindTable("tail").ok());
}

/// QueryService::Health surfaces the WAL loss window so operators can see
/// acknowledged-but-volatile records next to overload state.
TEST_F(IngestChaosTest, HealthReportsWalLossWindow) {
  const std::string dir = TestDir("wal_health");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  opts.enable_wal = true;
  opts.wal_options.sync = store::WalWriter::SyncPolicy::kNone;
  auto live = MakeLive(opts);
  ASSERT_TRUE(live->AddTable(Derived(0, "volatile_a")).ok());
  ASSERT_TRUE(live->AddTable(Derived(1, "volatile_b")).ok());

  serve::QueryService service(live.get(), serve::QueryService::Options{});
  serve::QueryService::HealthSnapshot health = service.Health();
  EXPECT_TRUE(health.wal_enabled);
  EXPECT_EQ(health.wal_last_lsn, 2u);
  EXPECT_EQ(health.wal_durable_lsn, 0u);
  EXPECT_EQ(health.wal_unsynced_records, 2u);  // kNone never fsyncs
  EXPECT_EQ(service.metrics().GetGauge("ingest.wal.unsynced_records")->value(),
            2u);

  ASSERT_TRUE(live->Checkpoint().ok());  // floor covers both records
  health = service.Health();
  EXPECT_EQ(health.wal_durable_lsn, 2u);
  EXPECT_EQ(health.wal_unsynced_records, 0u);
}

/// Full-disk drill (chaos-explorer regression): ENOSPC during the
/// compaction build must degrade gracefully — the current generation
/// keeps serving untouched, the compactor retries with capped exponential
/// backoff instead of hammering the full disk at poll cadence, and the
/// first successful compaction after space returns resets the backoff.
TEST_F(IngestChaosTest, CompactionEnospcBacksOffAndKeepsServing) {
  auto live = MakeLive(LiveOptions());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(live->AddTable(Derived(static_cast<TableId>(i % 3),
                                       StrFormat("enospc_%02d", i)))
                    .ok());
  }
  const uint64_t version_before = live->version();
  const size_t count_before = live->Acquire()->visible_table_count();

  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kEnospc;
  spec.max_fires = 0;  // the disk stays full until the test clears it
  FailpointRegistry::Instance().Arm("ingest.compact.build", spec);

  Compactor::Options copts;
  copts.max_delta_tables = 1000;  // explicit triggers only
  copts.poll_interval_ms = 1;
  copts.backoff_initial_ms = 20;
  copts.backoff_max_ms = 80;
  Compactor compactor(live.get(), copts);

  // Three forced attempts, three failures: backoff doubles to its cap and
  // no partial generation ever publishes.
  for (uint64_t want = 1; want <= 3; ++want) {
    compactor.TriggerNow();
    for (int i = 0; i < 1000 && compactor.failures() < want; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(compactor.failures(), want);
  }
  EXPECT_EQ(compactor.backoff_ms(), 80u);  // 20 -> 40 -> 80 (capped)
  EXPECT_EQ(live->compactions(), 0u);
  EXPECT_EQ(live->version(), version_before);
  EXPECT_EQ(live->Acquire()->visible_table_count(), count_before);
  EXPECT_EQ(live->num_delta_tables(), 5u);  // delta intact for the retry

  // Space returns: the very next attempt succeeds and resets the backoff.
  FailpointRegistry::Instance().Disarm("ingest.compact.build");
  compactor.TriggerNow();
  for (int i = 0; i < 1000 && live->compactions() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    compactor.TriggerNow();
  }
  compactor.Stop();
  EXPECT_GE(live->compactions(), 1u);
  EXPECT_EQ(compactor.backoff_ms(), 0u);
  EXPECT_EQ(live->num_delta_tables(), 0u);
  EXPECT_EQ(live->Acquire()->visible_table_count(), count_before);
}

/// Replay applies records that were acknowledged, so a transient apply
/// failure mid-replay must abort recovery loudly. Skipping the record —
/// what a fire-and-forget replay loop would do — silently drops an
/// acknowledged mutation: here the remove of 'acked_a', whose
/// reappearance would be a resurrection. (Found by tools/chaos_explorer,
/// pinned as tests/data/chaos_seeds/seed-83.plan.)
TEST_F(IngestChaosTest, RecoveryFailsLoudlyWhenReplayCannotApply) {
  const std::string dir = TestDir("replay_failstop");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  opts.enable_wal = true;
  auto live = MakeLive(opts);
  ASSERT_TRUE(live->Checkpoint().ok());
  ASSERT_TRUE(live->AddTable(Derived(0, "acked_a")).ok());  // WAL LSN 1
  ASSERT_TRUE(live->RemoveTable("acked_a").ok());           // WAL LSN 2
  live.reset();  // crash: both mutations live only in the WAL

  // Hits post-arm: 1 = the checkpointed-delta batch, 2 = LSN 1 (add),
  // 3 = LSN 2 (the remove) — which is the one the fault rejects.
  FaultSpec fault;
  fault.after_hits = 2;
  FailpointRegistry::Instance().Arm("ingest.publish.swap", fault);
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, nullptr);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().ToString().find("replaying WAL record"),
            std::string::npos)
      << recovered.status().ToString();

  // The fault passes (operator fixed the disk): the same store recovers
  // cleanly and the remove is honored.
  FailpointRegistry::Instance().ClearAll();
  recovered = LiveEngine::Recover(&store, opts, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE((*recovered)->Acquire()->FindTable("acked_a").ok());
}

}  // namespace
}  // namespace lake::ingest
