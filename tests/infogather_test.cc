#include <gtest/gtest.h>

#include "apps/infogather.h"
#include "util/logging.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) {
    c.Append(v.empty() ? Value::Null() : Value(v));
  }
  return c;
}

/// Lake with three web-table-style sources about capitals, one of which
/// carries a wrong value, plus an unrelated table.
class InfoGatherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      Table t("capitals_a");
      LAKE_CHECK(t.AddColumn(MakeColumn(
          "country", {"kelland", "morland", "tuvland"})).ok());
      LAKE_CHECK(t.AddColumn(MakeColumn(
          "capital", {"kelcity", "morcity", "tuvcity"})).ok());
      LAKE_CHECK(catalog_.AddTable(std::move(t)).ok());
    }
    {
      Table t("capitals_b");
      LAKE_CHECK(t.AddColumn(MakeColumn(
          "Country", {"kelland", "morland", "zemland"})).ok());
      LAKE_CHECK(t.AddColumn(MakeColumn(
          "Capital City", {"kelcity", "morcity", "zemcity"})).ok());
      LAKE_CHECK(catalog_.AddTable(std::move(t)).ok());
    }
    {
      // Dirty source: disagrees on kelland's capital.
      Table t("capitals_dirty");
      LAKE_CHECK(t.AddColumn(MakeColumn("country", {"kelland"})).ok());
      LAKE_CHECK(t.AddColumn(MakeColumn("capital", {"wrongcity"})).ok());
      LAKE_CHECK(catalog_.AddTable(std::move(t)).ok());
    }
    {
      Table t("movies");
      LAKE_CHECK(t.AddColumn(MakeColumn("title", {"starfall"})).ok());
      LAKE_CHECK(t.AddColumn(MakeColumn("year", {"1999"})).ok());
      LAKE_CHECK(catalog_.AddTable(std::move(t)).ok());
    }
  }

  DataLakeCatalog catalog_;
};

TEST_F(InfoGatherTest, AugmentByAttributeMajorityWins) {
  InfoGatherAugmenter augmenter(&catalog_);
  const auto result =
      augmenter.AugmentByAttribute({"kelland", "morland", "zemland"},
                                   "capital")
          .value();
  ASSERT_EQ(result.size(), 3u);
  // Two clean sources outvote the dirty one for kelland.
  EXPECT_EQ(result[0].value, "kelcity");
  EXPECT_GT(result[0].confidence, 0.5);
  EXPECT_GE(result[0].providers, 2u);
  EXPECT_EQ(result[1].value, "morcity");
  EXPECT_EQ(result[2].value, "zemcity");  // only capitals_b knows zemland
}

TEST_F(InfoGatherTest, UnknownEntityLeftEmpty) {
  InfoGatherAugmenter augmenter(&catalog_);
  const auto result =
      augmenter.AugmentByAttribute({"atlantis"}, "capital").value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].value.empty());
  EXPECT_EQ(result[0].providers, 0u);
}

TEST_F(InfoGatherTest, AttributeNameMatchingIsFuzzy) {
  InfoGatherAugmenter augmenter(&catalog_);
  // "capital city" matches both "capital" and "Capital City" headers.
  const auto result =
      augmenter.AugmentByAttribute({"morland"}, "capital city").value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].value, "morcity");
}

TEST_F(InfoGatherTest, AugmentByExample) {
  InfoGatherAugmenter augmenter(&catalog_);
  // Teach the relation by example instead of by name.
  const auto result =
      augmenter
          .AugmentByExample({{"kelland", "kelcity"}, {"morland", "morcity"}},
                            {"tuvland", "zemland"})
          .value();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].value, "tuvcity");
  EXPECT_EQ(result[1].value, "zemcity");
}

TEST_F(InfoGatherTest, ExampleSupportThresholdFilters) {
  InfoGatherAugmenter::Options opts;
  opts.example_support = 1.0;  // require every example reproduced
  InfoGatherAugmenter augmenter(&catalog_, opts);
  // capitals_b reproduces only morland of these two examples (no tuvland),
  // capitals_a reproduces both.
  const auto result =
      augmenter
          .AugmentByExample({{"morland", "morcity"}, {"tuvland", "tuvcity"}},
                            {"kelland"})
          .value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].value, "kelcity");
  EXPECT_EQ(result[0].providers, 1u);  // only capitals_a qualified
}

TEST_F(InfoGatherTest, InputValidation) {
  InfoGatherAugmenter augmenter(&catalog_);
  EXPECT_FALSE(augmenter.AugmentByAttribute({}, "capital").ok());
  EXPECT_FALSE(augmenter.AugmentByAttribute({"x"}, "  ").ok());
  EXPECT_FALSE(augmenter.AugmentByExample({}, {"x"}).ok());
}

}  // namespace
}  // namespace lake
