#include <gtest/gtest.h>

#include <algorithm>

#include "lakegen/generator.h"
#include "search/bipartite_matching.h"
#include "search/bm25.h"
#include "search/keyword_search.h"
#include "search/query.h"
#include "util/logging.h"
#include "util/random.h"

namespace lake {
namespace {

// --- BM25 ----------------------------------------------------------------

TEST(Bm25Test, RanksMatchingDocsFirst) {
  Bm25Index idx;
  idx.AddDocument(1, {"city", "population", "census"});
  idx.AddDocument(2, {"movie", "actor", "director"});
  idx.AddDocument(3, {"city", "mayor"});
  const auto hits = idx.Search({"city"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_TRUE(hits[0].first == 1 || hits[0].first == 3);
}

TEST(Bm25Test, RareTermsWeighMore) {
  Bm25Index idx;
  for (uint64_t d = 0; d < 20; ++d) idx.AddDocument(d, {"common", "filler"});
  idx.AddDocument(100, {"common", "rareterm"});
  const auto hits = idx.Search({"rareterm", "common"}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, 100u);
}

TEST(Bm25Test, EmptyCases) {
  Bm25Index idx;
  EXPECT_TRUE(idx.Search({"x"}, 5).empty());
  idx.AddDocument(1, {"a"});
  EXPECT_TRUE(idx.Search({"zzz"}, 5).empty());
  EXPECT_TRUE(idx.Search({"a"}, 0).empty());
}

TEST(Bm25Test, LengthNormalizationPrefersShorterDoc) {
  Bm25Index idx;
  std::vector<std::string> longdoc(100, "filler");
  longdoc.push_back("target");
  idx.AddDocument(1, longdoc);
  idx.AddDocument(2, {"target", "x"});
  const auto hits = idx.Search({"target"}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, 2u);
}

// --- Keyword search over a generated lake ------------------------------------

TEST(KeywordSearchTest, TopicQueryReturnsTemplateTables) {
  GeneratorOptions opts;
  opts.seed = 21;
  opts.num_templates = 4;
  opts.tables_per_template = 5;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  KeywordSearchEngine engine(&lake.catalog);

  for (size_t tmpl = 0; tmpl < lake.unionable_groups.size(); ++tmpl) {
    const auto results = engine.Search(lake.topic_of[tmpl], 5);
    ASSERT_FALSE(results.empty()) << "topic " << lake.topic_of[tmpl];
    // Precision@5 against the template's tables. Other templates may
    // mention the topic in attribute names, so expect "good" not perfect.
    const double p = PrecisionAtK(results, lake.unionable_groups[tmpl], 5);
    EXPECT_GE(p, 0.5) << "topic " << lake.topic_of[tmpl];
  }
}

TEST(KeywordSearchTest, NoMatchIsEmpty) {
  GeneratorOptions opts;
  opts.seed = 22;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  KeywordSearchEngine engine(&lake.catalog);
  EXPECT_TRUE(engine.Search("qqqqqqzzzzzz", 5).empty());
}

// --- Bipartite matching -------------------------------------------------------

double BruteForceBestMatching(const std::vector<std::vector<double>>& w) {
  // Exhaustive over permutations of the wider side (small inputs only).
  const size_t rows = w.size();
  const size_t cols = w[0].size();
  if (rows > cols) {
    std::vector<std::vector<double>> t(cols, std::vector<double>(rows));
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) t[j][i] = w[i][j];
    }
    return BruteForceBestMatching(t);
  }
  std::vector<int> perm(cols);
  for (size_t j = 0; j < cols; ++j) perm[j] = static_cast<int>(j);
  double best = 0;
  do {
    double total = 0;
    for (size_t i = 0; i < rows; ++i) {
      if (w[i][perm[i]] > 0) total += w[i][perm[i]];
    }
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(BipartiteMatchingTest, KnownOptimal) {
  // Greedy would take (0,0)=0.9 then (1,1)=0.1 -> 1.0; optimal is 1.6.
  const std::vector<std::vector<double>> w = {{0.9, 0.8}, {0.8, 0.1}};
  const MatchingResult m = MaxWeightBipartiteMatching(w);
  EXPECT_NEAR(m.total_weight, 1.6, 1e-9);
  EXPECT_EQ(m.match[0], 1);
  EXPECT_EQ(m.match[1], 0);
}

TEST(BipartiteMatchingTest, RectangularAndZeroWeights) {
  const std::vector<std::vector<double>> w = {
      {0.0, 0.5, 0.0}, {0.0, 0.0, 0.0}};
  const MatchingResult m = MaxWeightBipartiteMatching(w);
  EXPECT_NEAR(m.total_weight, 0.5, 1e-9);
  EXPECT_EQ(m.match[0], 1);
  EXPECT_EQ(m.match[1], -1);  // zero-weight rows stay unmatched
}

TEST(BipartiteMatchingTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(MaxWeightBipartiteMatching({}).total_weight, 0.0);
  EXPECT_DOUBLE_EQ(GreedyBipartiteMatching({}).total_weight, 0.0);
  const MatchingResult m = MaxWeightBipartiteMatching({{}, {}});
  EXPECT_EQ(m.match.size(), 2u);
}

class MatchingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingProperty, HungarianIsOptimalOnRandomMatrices) {
  Rng rng(GetParam());
  const size_t rows = 2 + rng.NextBounded(4);
  const size_t cols = 2 + rng.NextBounded(4);
  std::vector<std::vector<double>> w(rows, std::vector<double>(cols));
  for (auto& row : w) {
    for (double& x : row) {
      x = rng.NextBool(0.3) ? 0.0 : rng.NextUnit();
    }
  }
  const MatchingResult hungarian = MaxWeightBipartiteMatching(w);
  EXPECT_NEAR(hungarian.total_weight, BruteForceBestMatching(w), 1e-9);
  // Greedy is a valid matching and never better than optimal.
  const MatchingResult greedy = GreedyBipartiteMatching(w);
  EXPECT_LE(greedy.total_weight, hungarian.total_weight + 1e-9);
  std::vector<bool> used(cols, false);
  for (int j : greedy.match) {
    if (j < 0) continue;
    EXPECT_FALSE(used[j]);
    used[j] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty,
                         ::testing::Range<uint64_t>(1, 21));

// --- Query metrics ----------------------------------------------------------

std::vector<TableResult> Results(const std::vector<TableId>& ids) {
  std::vector<TableResult> out;
  double score = 1.0;
  for (TableId t : ids) {
    out.push_back(TableResult{t, score, ""});
    score -= 0.01;
  }
  return out;
}

TEST(QueryMetricsTest, PrecisionRecall) {
  const auto results = Results({1, 2, 3, 4});
  const std::vector<TableId> relevant = {2, 4, 9};
  EXPECT_DOUBLE_EQ(PrecisionAtK(results, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(results, relevant, 4), 0.5);
  EXPECT_NEAR(RecallAtK(results, relevant, 4), 2.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(RecallAtK(results, {}, 4), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, relevant, 4), 0.0);
}

TEST(QueryMetricsTest, AveragePrecision) {
  // Hits at ranks 1 and 3 of 3 relevant: AP@3 = (1/1 + 2/3)/3.
  const auto results = Results({5, 6, 7});
  const std::vector<TableId> relevant = {5, 7, 99};
  EXPECT_NEAR(AveragePrecisionAtK(results, relevant, 3),
              (1.0 + 2.0 / 3.0) / 3.0, 1e-9);
}

TEST(QueryMetricsTest, BestPerTable) {
  std::vector<ColumnResult> cols;
  cols.push_back(ColumnResult{ColumnRef{3, 0}, 0.9, "a"});
  cols.push_back(ColumnResult{ColumnRef{3, 2}, 0.8, "b"});
  cols.push_back(ColumnResult{ColumnRef{5, 1}, 0.7, "c"});
  const auto tables = BestPerTable(cols);
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].table_id, 3u);
  EXPECT_DOUBLE_EQ(tables[0].score, 0.9);
  EXPECT_EQ(tables[1].table_id, 5u);
}

}  // namespace
}  // namespace lake
