#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "index/lsh_ensemble.h"
#include "index/minhash_lsh.h"
#include "sketch/set_ops.h"
#include "util/random.h"

namespace lake {
namespace {

std::vector<std::string> Values(size_t begin, size_t end) {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) out.push_back("v" + std::to_string(i));
  return out;
}

// --- S-curve math ------------------------------------------------------

TEST(LshMathTest, CollisionProbabilityShape) {
  // More bands raise collision probability; more rows lower it.
  EXPECT_GT(LshCollisionProbability(0.5, 32, 4),
            LshCollisionProbability(0.5, 8, 4));
  EXPECT_LT(LshCollisionProbability(0.5, 16, 8),
            LshCollisionProbability(0.5, 16, 2));
  // Monotone in similarity.
  EXPECT_LT(LshCollisionProbability(0.2, 16, 4),
            LshCollisionProbability(0.8, 16, 4));
  EXPECT_NEAR(LshCollisionProbability(1.0, 16, 4), 1.0, 1e-12);
  EXPECT_NEAR(LshCollisionProbability(0.0, 16, 4), 0.0, 1e-12);
}

TEST(LshMathTest, OptimalParamsRespectBudget) {
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const LshParams p = OptimalLshParams(128, t);
    EXPECT_GE(p.bands, 1u);
    EXPECT_GE(p.rows, 1u);
    EXPECT_LE(p.bands * p.rows, 128u);
  }
}

TEST(LshMathTest, HigherThresholdMoreRows) {
  const LshParams low = OptimalLshParams(128, 0.2);
  const LshParams high = OptimalLshParams(128, 0.9);
  EXPECT_GT(high.rows, low.rows);
}

// --- MinHash LSH ---------------------------------------------------------

TEST(MinHashLshTest, FindsNearDuplicates) {
  MinHashLsh lsh(128, 0.7);
  // 20 random sets plus one near-duplicate pair.
  for (size_t s = 0; s < 20; ++s) {
    lsh.Insert(s, MinHashSignature::Build(
                      Values(s * 1000, s * 1000 + 200), 128));
  }
  // Query shares ~95% with set 3 (J ≈ 0.95, collision prob ≈ 0.999).
  auto near = Values(3000, 3195);
  auto extra = Values(999000, 999005);
  near.insert(near.end(), extra.begin(), extra.end());
  const auto candidates =
      lsh.Query(MinHashSignature::Build(near, 128)).value();
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 3u),
            candidates.end());
}

TEST(MinHashLshTest, MissesDissimilar) {
  MinHashLsh lsh(128, 0.8);
  for (size_t s = 0; s < 20; ++s) {
    lsh.Insert(s, MinHashSignature::Build(
                      Values(s * 1000, s * 1000 + 200), 128));
  }
  const auto candidates =
      lsh.Query(MinHashSignature::Build(Values(500000, 500200), 128)).value();
  EXPECT_TRUE(candidates.empty());
}

TEST(MinHashLshTest, WidthMismatchError) {
  MinHashLsh lsh(128, 0.5);
  EXPECT_FALSE(lsh.Insert(0, MinHashSignature::Build(Values(0, 10), 64)).ok());
  EXPECT_FALSE(lsh.Query(MinHashSignature::Build(Values(0, 10), 64)).ok());
}

TEST(MinHashLshTest, BucketAccounting) {
  MinHashLsh lsh(64, LshParams{8, 8});
  lsh.Insert(1, MinHashSignature::Build(Values(0, 50), 64));
  EXPECT_EQ(lsh.size(), 1u);
  EXPECT_EQ(lsh.BucketEntries(), 8u);  // one entry per band
}

// --- Containment conversion ------------------------------------------------

TEST(ContainmentToJaccardTest, KnownValues) {
  // t=1, |Q|=u=100: J = 100/(100+100-100) = 1.
  EXPECT_DOUBLE_EQ(ContainmentToJaccard(1.0, 100, 100), 1.0);
  // t=0.5, q=100, u=1000: J = 50/(100+1000-50).
  EXPECT_NEAR(ContainmentToJaccard(0.5, 100, 1000), 50.0 / 1050.0, 1e-12);
  // Larger candidate bound -> smaller equivalent Jaccard.
  EXPECT_GT(ContainmentToJaccard(0.5, 100, 200),
            ContainmentToJaccard(0.5, 100, 2000));
}

// --- LSH Ensemble -----------------------------------------------------------

struct EnsembleFixture {
  LshEnsemble ensemble{LshEnsemble::Options{128, 4}};
  std::vector<std::vector<std::string>> sets;
  std::vector<std::string> query;

  EnsembleFixture() {
    // Skewed cardinalities: sizes 20..5000. Query {0..99} is fully
    // contained in sets 0-2 and disjoint from the rest.
    query = Values(0, 100);
    sets.push_back(Values(0, 120));    // containment 1.0
    sets.push_back(Values(0, 1000));   // containment 1.0, large set
    sets.push_back(Values(50, 5050));  // containment 0.5
    for (size_t s = 0; s < 40; ++s) {
      sets.push_back(Values(100000 + s * 3000, 100000 + s * 3000 + 20 +
                                                    s * 100));
    }
    for (size_t s = 0; s < sets.size(); ++s) {
      EXPECT_TRUE(ensemble
                      .Add(s, MinHashSignature::Build(sets[s], 128),
                           sets[s].size())
                      .ok());
    }
    EXPECT_TRUE(ensemble.Build().ok());
  }
};

TEST(LshEnsembleTest, FindsContainingSetsAcrossCardinalities) {
  EnsembleFixture f;
  const auto candidates =
      f.ensemble
          .Query(MinHashSignature::Build(f.query, 128), f.query.size(), 0.7)
          .value();
  const std::unordered_set<uint64_t> got(candidates.begin(), candidates.end());
  // Both the small and the large fully-containing set must be found, even
  // though their Jaccard with the query differs by an order of magnitude.
  EXPECT_TRUE(got.count(0));
  EXPECT_TRUE(got.count(1));
}

TEST(LshEnsembleTest, ThresholdFiltersPartialContainment) {
  EnsembleFixture f;
  const auto strict =
      f.ensemble
          .Query(MinHashSignature::Build(f.query, 128), f.query.size(), 0.95)
          .value();
  const auto loose =
      f.ensemble
          .Query(MinHashSignature::Build(f.query, 128), f.query.size(), 0.3)
          .value();
  EXPECT_LE(strict.size(), loose.size());
  const std::unordered_set<uint64_t> got(loose.begin(), loose.end());
  EXPECT_TRUE(got.count(2));  // 0.5-containment set appears at loose t
}

TEST(LshEnsembleTest, FewFalsePositives) {
  EnsembleFixture f;
  const auto candidates =
      f.ensemble
          .Query(MinHashSignature::Build(f.query, 128), f.query.size(), 0.7)
          .value();
  // The 40 disjoint filler sets should rarely collide.
  size_t false_positives = 0;
  for (uint64_t c : candidates) {
    if (c >= 3) ++false_positives;
  }
  EXPECT_LE(false_positives, 4u);
}

TEST(LshEnsembleTest, LifecycleErrors) {
  LshEnsemble e(LshEnsemble::Options{64, 2});
  const auto sig = MinHashSignature::Build(Values(0, 10), 64);
  EXPECT_FALSE(e.Query(sig, 10, 0.5).ok());  // not built
  EXPECT_TRUE(e.Add(0, sig, 10).ok());
  EXPECT_TRUE(e.Build().ok());
  EXPECT_FALSE(e.Add(1, sig, 10).ok());   // already built
  EXPECT_FALSE(e.Build().ok());           // double build
  const auto bad = MinHashSignature::Build(Values(0, 10), 32);
  EXPECT_FALSE(e.Query(bad, 10, 0.5).ok());  // width mismatch
}

TEST(LshEnsembleTest, EmptyAndZeroQuery) {
  LshEnsemble e(LshEnsemble::Options{64, 2});
  EXPECT_TRUE(e.Build().ok());
  const auto sig = MinHashSignature::Build(Values(0, 10), 64);
  EXPECT_TRUE(e.Query(sig, 10, 0.5).value().empty());
  LshEnsemble e2(LshEnsemble::Options{64, 2});
  EXPECT_TRUE(e2.Add(0, sig, 10).ok());
  EXPECT_TRUE(e2.Build().ok());
  EXPECT_TRUE(e2.Query(sig, 0, 0.5).value().empty());
}

TEST(LshEnsembleTest, PartitionBoundsAscending) {
  EnsembleFixture f;
  const auto bounds = f.ensemble.PartitionUpperBounds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] == 0) continue;  // empty tail partition
    EXPECT_GE(bounds[i], bounds[i - 1]);
  }
}

}  // namespace
}  // namespace lake
