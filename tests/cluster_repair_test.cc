#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.h"
#include "cluster/replica_set.h"
#include "cluster/scrubber.h"
#include "ingest/live_engine.h"
#include "lakegen/generator.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "store/snapshot.h"
#include "util/failpoint.h"

namespace lake::cluster {
namespace {

namespace fs = std::filesystem;

using std::chrono::milliseconds;
using std::chrono::steady_clock;

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_repair_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Replica-consistency suite: content digests, quorum writes with
/// stale-marking, and anti-entropy repair back to digest equality. Each
/// test owns its cluster/replica set — faults mutate health state.
class ClusterRepairTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 11;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
  }

  static void TearDownTestSuite() {
    delete lake_;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static const DataLakeCatalog& lake() { return lake_->catalog; }

  /// Fresh catalog holding copies of the first `n` lake tables (catalogs
  /// are move-only, so sharing the suite's lake needs a copy anyway).
  static std::shared_ptr<const DataLakeCatalog> CopyCatalog(size_t n) {
    auto catalog = std::make_shared<DataLakeCatalog>();
    n = std::min<size_t>(n, lake().num_tables());
    for (TableId id = 0; id < n; ++id) {
      EXPECT_TRUE(catalog->AddTable(lake().table(id)).ok());
    }
    return catalog;
  }

  static ingest::LiveEngine::Options EngineOptions() {
    ingest::LiveEngine::Options opts;
    opts.base_options = BaseOptions();
    opts.kb = &lake_->kb;
    return opts;
  }

  static ReplicaSet::Options ReplicaOptions(size_t replicas,
                                            serve::MetricsRegistry* metrics) {
    ReplicaSet::Options opts;
    opts.num_replicas = replicas;
    opts.engine = EngineOptions();
    opts.metrics = metrics;
    return opts;
  }

  static ClusterEngine::Options ClusterOptions(size_t shards,
                                               size_t replicas) {
    ClusterEngine::Options opts;
    opts.num_shards = shards;
    opts.num_replicas = replicas;
    opts.engine.base_options = BaseOptions();
    opts.engine.kb = &lake_->kb;
    return opts;
  }

  static size_t FullK() { return lake().num_tables() + 16; }

  static ingest::LiveEngine::Batch AddBatch(const std::string& name,
                                            TableId origin = 0) {
    Table derived = lake().table(origin);
    derived.set_name(name);
    ingest::LiveEngine::Batch batch;
    batch.adds.push_back(std::move(derived));
    return batch;
  }

  struct NamedHit {
    std::string name;
    double score = 0;
  };

  static std::vector<NamedHit> Canon(const std::vector<TableHit>& hits) {
    std::vector<NamedHit> out;
    for (const TableHit& h : hits) out.push_back({h.table, h.score});
    std::sort(out.begin(), out.end(),
              [](const NamedHit& a, const NamedHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.name < b.name;
              });
    return out;
  }

  static void ExpectSameHits(const std::vector<NamedHit>& expected,
                             const std::vector<NamedHit>& actual,
                             const std::string& context) {
    ASSERT_EQ(expected.size(), actual.size()) << context;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].name, actual[i].name) << context << " rank " << i;
      EXPECT_DOUBLE_EQ(expected[i].score, actual[i].score)
          << context << " rank " << i << " (" << expected[i].name << ")";
    }
  }

  static GeneratedLake* lake_;
};

GeneratedLake* ClusterRepairTest::lake_ = nullptr;

// ------------------------------------------------------- content digests

TEST_F(ClusterRepairTest, TableDigestIsDeterministicAndContentSensitive) {
  const Table& original = lake().table(0);
  const Table copy = original;  // identical content -> identical digest
  EXPECT_EQ(ingest::TableContentDigest(original),
            ingest::TableContentDigest(copy));

  // The name is part of the identity the digest covers.
  Table renamed = original;
  renamed.set_name("digest_rename_probe");
  EXPECT_NE(ingest::TableContentDigest(original),
            ingest::TableContentDigest(renamed));

  // Same name, different cells: the digest sees through the name to the
  // content (a repaired copy must match bytes, not labels).
  Table impostor = lake().table(1);
  impostor.set_name(original.name());
  EXPECT_NE(ingest::TableContentDigest(original),
            ingest::TableContentDigest(impostor));
}

TEST_F(ClusterRepairTest, EngineDigestIncrementalMatchesRecompute) {
  ingest::LiveEngine live(CopyCatalog(4), EngineOptions());
  EXPECT_NE(live.content_digest(), 0u);
  EXPECT_EQ(live.content_digest(), live.RecomputeContentDigest());
  EXPECT_EQ(live.TableDigests().size(), 4u);

  // Mutations keep the incremental rollup in lockstep with a full
  // recompute (adds, removes, and a remove of a just-added delta table).
  const uint64_t before = live.content_digest();
  ASSERT_TRUE(live.ApplyBatch(AddBatch("digest_probe_a", 4)).published);
  EXPECT_NE(live.content_digest(), before);
  EXPECT_EQ(live.content_digest(), live.RecomputeContentDigest());

  ingest::LiveEngine::Batch mixed;
  mixed.removes.push_back(lake().table(1).name());
  mixed.removes.push_back("digest_probe_a");
  Table add = lake().table(5);
  add.set_name("digest_probe_b");
  mixed.adds.push_back(std::move(add));
  ASSERT_TRUE(live.ApplyBatch(std::move(mixed)).published);
  EXPECT_EQ(live.content_digest(), live.RecomputeContentDigest());
  EXPECT_EQ(live.TableDigests().size(), 4u);  // 4 - 1 + 1
}

TEST_F(ClusterRepairTest, EngineDigestIsInvariantAcrossCompaction) {
  // Two engines with the same visible content must digest identically no
  // matter how it is split between base and delta: one built cold over
  // the final corpus, one that ingested its way there.
  ingest::LiveEngine grown(CopyCatalog(3), EngineOptions());
  ingest::LiveEngine::Batch batch;
  Table added = lake().table(3);
  added.set_name("compaction_probe");
  batch.adds.push_back(std::move(added));
  batch.removes.push_back(lake().table(1).name());
  ASSERT_TRUE(grown.ApplyBatch(std::move(batch)).published);

  auto cold_catalog = std::make_shared<DataLakeCatalog>();
  Table cold_added = lake().table(3);
  cold_added.set_name("compaction_probe");
  ASSERT_TRUE(cold_catalog->AddTable(lake().table(0)).ok());
  ASSERT_TRUE(cold_catalog->AddTable(lake().table(2)).ok());
  ASSERT_TRUE(cold_catalog->AddTable(std::move(cold_added)).ok());
  ingest::LiveEngine cold(std::move(cold_catalog), EngineOptions());

  EXPECT_EQ(grown.content_digest(), cold.content_digest());

  // Compaction rearranges base/delta but never the visible content.
  const uint64_t before = grown.content_digest();
  ASSERT_TRUE(grown.Compact().ok());
  EXPECT_EQ(grown.content_digest(), before);
  EXPECT_EQ(grown.content_digest(), grown.RecomputeContentDigest());
}

// ---------------------------------------------------------- quorum writes

TEST_F(ClusterRepairTest, QuorumAcksAndMarksFailedReplicaStale) {
  serve::MetricsRegistry metrics;
  ReplicaSet rs(/*shard_id=*/7, CopyCatalog(8), ReplicaOptions(3, &metrics));
  EXPECT_EQ(rs.write_quorum(), 2u);  // default: majority of 3

  FailpointRegistry::Instance().Arm(ReplicaSet::ApplyFailpointName(7, 2),
                                    FaultSpec{});
  const ingest::LiveEngine::BatchOutcome outcome =
      rs.ApplyBatch(AddBatch("quorum_ack_probe"));

  // 2 of 3 applied and agree: the batch acks with the winners' outcome.
  ASSERT_EQ(outcome.adds.size(), 1u);
  EXPECT_TRUE(outcome.adds[0].ok()) << outcome.adds[0].status();
  EXPECT_TRUE(outcome.published);

  // The failed replica is stale and digest-divergent; the winners agree.
  EXPECT_FALSE(rs.stale(0));
  EXPECT_FALSE(rs.stale(1));
  EXPECT_TRUE(rs.stale(2));
  EXPECT_EQ(rs.replica(0)->content_digest(), rs.replica(1)->content_digest());
  EXPECT_NE(rs.replica(2)->content_digest(), rs.replica(0)->content_digest());

  // Pick never routes a query to the stale replica.
  const auto now = ReplicaSet::Clock::now();
  for (int i = 0; i < 12; ++i) {
    ReplicaSet::Route route;
    ASSERT_TRUE(rs.Pick(now, SIZE_MAX, &route));
    EXPECT_NE(route.replica, 2u);
  }

  EXPECT_EQ(metrics.GetCounterFamily("cluster.apply.replica_failures", "shard")
                ->WithLabel(uint64_t{7})
                ->value(),
            1u);
  EXPECT_EQ(metrics.GetGaugeFamily("serve.replica.stale", "shard")
                ->WithLabel(uint64_t{7})
                ->value(),
            1u);

  // Stale replicas still receive writes best-effort (small repair diffs),
  // but stay excluded until the scrubber verifies digest equality.
  ASSERT_TRUE(rs.ApplyBatch(AddBatch("quorum_ack_probe_2", 1)).published);
  EXPECT_TRUE(rs.stale(2));
  EXPECT_NE(rs.replica(2)->content_digest(), rs.replica(0)->content_digest());
}

TEST_F(ClusterRepairTest, AllReplicaFailureFailStopsTheWrite) {
  serve::MetricsRegistry metrics;
  ReplicaSet rs(/*shard_id=*/3, CopyCatalog(6), ReplicaOptions(3, &metrics));
  const uint64_t digest_before = rs.replica(0)->content_digest();
  for (size_t r = 0; r < 3; ++r) {
    FailpointRegistry::Instance().Arm(ReplicaSet::ApplyFailpointName(3, r),
                                      FaultSpec{});
  }

  ingest::LiveEngine::Batch batch = AddBatch("failstop_probe");
  batch.removes.push_back(lake().table(0).name());
  const ingest::LiveEngine::BatchOutcome outcome =
      rs.ApplyBatch(std::move(batch));

  // Nothing applied anywhere: every op reports kUnavailable, nothing is
  // acknowledged, and — critically — nobody is stale: all replicas still
  // agree (on the old state), so reads keep serving it.
  EXPECT_FALSE(outcome.published);
  ASSERT_EQ(outcome.adds.size(), 1u);
  ASSERT_EQ(outcome.removes.size(), 1u);
  EXPECT_EQ(outcome.adds[0].status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(outcome.removes[0].code(), StatusCode::kUnavailable);
  EXPECT_EQ(rs.num_stale(), 0u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(rs.replica(r)->content_digest(), digest_before);
  }
  EXPECT_GE(metrics.GetCounterFamily("cluster.apply.quorum_failures", "shard")
                ->WithLabel(uint64_t{3})
                ->value(),
            1u);
}

TEST_F(ClusterRepairTest, OutcomeMismatchFiresInATwoReplicaConfig) {
  serve::MetricsRegistry metrics;
  ReplicaSet::Options opts = ReplicaOptions(2, &metrics);
  opts.write_quorum = 1;  // R=2 with quorum off: any single success acks
  ReplicaSet rs(/*shard_id=*/0, CopyCatalog(6), opts);

  // Diverge replica 1 behind the quorum protocol's back (models a lost
  // write): the next quorum write sees a 1-vs-1 digest split.
  ASSERT_TRUE(rs.replica(1)->ApplyBatch(AddBatch("silent_divergence"))
                  .published);

  const ingest::LiveEngine::BatchOutcome outcome =
      rs.ApplyBatch(AddBatch("mismatch_probe", 2));

  // Ties trust replica 0, so the write still acks under W=1, the
  // divergent replica is caught (stale), and the mismatch counter fires —
  // detection must not need R >= 3.
  ASSERT_EQ(outcome.adds.size(), 1u);
  EXPECT_TRUE(outcome.adds[0].ok()) << outcome.adds[0].status();
  EXPECT_FALSE(rs.stale(0));
  EXPECT_TRUE(rs.stale(1));
  EXPECT_GE(metrics.GetCounter("cluster.apply.outcome_mismatch")->value(),
            1u);
}

TEST_F(ClusterRepairTest, SubQuorumWinnersKeepTheUnackedWrite) {
  serve::MetricsRegistry metrics;
  ReplicaSet::Options opts = ReplicaOptions(3, &metrics);
  opts.write_quorum = 3;  // W=R: any failure blocks the ack
  ReplicaSet rs(/*shard_id=*/1, CopyCatalog(6), opts);
  FailpointRegistry::Instance().Arm(ReplicaSet::ApplyFailpointName(1, 1),
                                    FaultSpec{});

  const ingest::LiveEngine::BatchOutcome outcome =
      rs.ApplyBatch(AddBatch("unacked_probe"));

  // 2 of 3 agree but W=3: no ack. The winners keep the write (they are
  // canonical; anti-entropy converges the loser TO them), the failed
  // replica alone is stale — unacknowledged is not rolled back.
  ASSERT_EQ(outcome.adds.size(), 1u);
  EXPECT_EQ(outcome.adds[0].status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(rs.stale(0));
  EXPECT_TRUE(rs.stale(1));
  EXPECT_FALSE(rs.stale(2));
  EXPECT_EQ(rs.replica(0)->content_digest(), rs.replica(2)->content_digest());
  EXPECT_NE(rs.replica(1)->content_digest(), rs.replica(0)->content_digest());
  EXPECT_GE(metrics.GetCounterFamily("cluster.apply.quorum_failures", "shard")
                ->WithLabel(uint64_t{1})
                ->value(),
            1u);
}

// ------------------------------------------------------- pick exhaustion

TEST_F(ClusterRepairTest, PickFailsWhenEveryReplicaIsKilled) {
  ReplicaSet rs(/*shard_id=*/0, CopyCatalog(4), ReplicaOptions(3, nullptr));
  for (size_t r = 0; r < 3; ++r) rs.Kill(r);
  ReplicaSet::Route route;
  EXPECT_FALSE(rs.Pick(ReplicaSet::Clock::now(), SIZE_MAX, &route));
  // Reviving one is enough to serve again.
  rs.Revive(1);
  ASSERT_TRUE(rs.Pick(ReplicaSet::Clock::now(), SIZE_MAX, &route));
  EXPECT_EQ(route.replica, 1u);
}

TEST_F(ClusterRepairTest, PickFailsWhenEveryBreakerIsOpen) {
  ReplicaSet::Options opts = ReplicaOptions(2, nullptr);
  opts.breaker.min_volume = 1;  // one failure trips
  ReplicaSet rs(/*shard_id=*/0, CopyCatalog(4), opts);
  const auto now = ReplicaSet::Clock::now();
  for (size_t r = 0; r < 2; ++r) rs.RecordOutcome(r, /*success=*/false, now);
  ReplicaSet::Route route;
  // Same instant: both breakers are open and their backoff has not
  // elapsed, so the shard is down for this query.
  EXPECT_FALSE(rs.Pick(now, SIZE_MAX, &route));
}

TEST_F(ClusterRepairTest, PickFailsWhenExcludeIsTheOnlyLiveReplica) {
  ReplicaSet rs(/*shard_id=*/0, CopyCatalog(4), ReplicaOptions(2, nullptr));
  rs.Kill(0);
  ReplicaSet::Route route;
  const auto now = ReplicaSet::Clock::now();
  // The one live replica just failed this query (exclude=1): no failover
  // target remains.
  EXPECT_FALSE(rs.Pick(now, /*exclude=*/1, &route));
  ASSERT_TRUE(rs.Pick(now, /*exclude=*/0, &route));
  EXPECT_EQ(route.replica, 1u);
}

TEST_F(ClusterRepairTest, PickRotatesFairlyAcrossHealthyReplicas) {
  ReplicaSet rs(/*shard_id=*/0, CopyCatalog(4), ReplicaOptions(3, nullptr));
  std::map<size_t, size_t> picked;
  const auto now = ReplicaSet::Clock::now();
  for (int i = 0; i < 99; ++i) {
    ReplicaSet::Route route;
    ASSERT_TRUE(rs.Pick(now, SIZE_MAX, &route));
    ++picked[route.replica];
  }
  // Round-robin: an exact three-way split, not merely "roughly balanced".
  ASSERT_EQ(picked.size(), 3u);
  for (const auto& [replica, count] : picked) {
    EXPECT_EQ(count, 33u) << "replica " << replica;
  }
}

// --------------------------------------------------- breaker-aware health

TEST_F(ClusterRepairTest, HealthReportsBreakerTrippedReplicaAsNotServing) {
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/1);
  opts.breaker.min_volume = 1;  // one failed query trips the breaker
  opts.max_failover_attempts = 1;
  ClusterEngine cluster(lake(), opts);
  serve::QueryService service(&cluster, serve::QueryService::Options{});

  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  FailpointRegistry::Instance().Arm("cluster.exec.0.0", spec);
  const TableQueryResponse failed = cluster.Keyword(lake_->topic_of[0], 5);
  EXPECT_FALSE(failed.status.ok());

  // The replica is alive — Kill was never called — but its breaker is
  // open, so it is NOT serving. Health must say so instead of reporting
  // a shard Pick refuses to route to as healthy.
  const std::vector<ClusterEngine::ShardHealth> health = cluster.Health();
  ASSERT_EQ(health.size(), 1u);
  ASSERT_EQ(health[0].replicas.size(), 1u);
  EXPECT_EQ(health[0].replicas_alive, 1u);
  EXPECT_EQ(health[0].replicas_serving, 0u);
  EXPECT_TRUE(health[0].replicas[0].alive);
  EXPECT_FALSE(health[0].replicas[0].serving);
  EXPECT_EQ(health[0].replicas[0].breaker_state,
            serve::CircuitBreaker::State::kOpen);

  const serve::QueryService::HealthSnapshot snapshot = service.Health();
  EXPECT_TRUE(snapshot.degraded);
}

// ---------------------------------------------- anti-entropy convergence

TEST_F(ClusterRepairTest, QuorumStaleExclusionAndScrubConvergence) {
  // The acceptance scenario: a replica's apply fails mid-stream. The
  // batch still acks (W-of-R), the failed replica is stale and never
  // picked, the scrubber repairs it, and post-repair every replica is
  // digest-equal with top-k answers bit-identical to a never-failed
  // single engine.
  serve::MetricsRegistry metrics;
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/3);
  opts.metrics = &metrics;
  ClusterEngine cluster(lake(), opts);
  ClusterEngine single(lake(), ClusterOptions(1, /*replicas=*/1));
  serve::QueryService service(&cluster, serve::QueryService::Options{});

  // A healthy write lands everywhere before the fault.
  ASSERT_TRUE(cluster.ApplyBatch(AddBatch("stream_0", 0)).adds[0].ok());
  ASSERT_TRUE(single.ApplyBatch(AddBatch("stream_0", 0)).adds[0].ok());

  // Mid-stream fault: replica 2 of stream_1's owner shard misses the
  // batch. Quorum (2 of 3) still acks it.
  const uint32_t victim_shard = cluster.OwnerOf("stream_1");
  constexpr size_t kVictimReplica = 2;
  FailpointRegistry::Instance().Arm(
      ReplicaSet::ApplyFailpointName(victim_shard, kVictimReplica),
      FaultSpec{});
  ASSERT_TRUE(cluster.ApplyBatch(AddBatch("stream_1", 1)).adds[0].ok());
  ASSERT_TRUE(single.ApplyBatch(AddBatch("stream_1", 1)).adds[0].ok());

  // The stream keeps flowing after the fault; the stale replica receives
  // this write best-effort but stays divergent (it missed stream_1).
  ASSERT_TRUE(cluster.ApplyBatch(AddBatch("stream_2", 2)).adds[0].ok());
  ASSERT_TRUE(single.ApplyBatch(AddBatch("stream_2", 2)).adds[0].ok());

  // Health sees the divergence exactly where it was injected.
  bool checked = false;
  for (const ClusterEngine::ShardHealth& sh : cluster.Health()) {
    if (sh.shard != victim_shard) {
      EXPECT_EQ(sh.replicas_stale, 0u) << "shard " << sh.shard;
      EXPECT_TRUE(sh.digests_agree) << "shard " << sh.shard;
      continue;
    }
    checked = true;
    EXPECT_EQ(sh.replicas_alive, 3u);
    EXPECT_EQ(sh.replicas_serving, 2u);
    EXPECT_EQ(sh.replicas_stale, 1u);
    EXPECT_FALSE(sh.digests_agree);
    EXPECT_TRUE(sh.replicas[kVictimReplica].stale);
    EXPECT_FALSE(sh.replicas[kVictimReplica].serving);
  }
  ASSERT_TRUE(checked);
  const serve::QueryService::HealthSnapshot degraded_health =
      service.Health();
  EXPECT_EQ(degraded_health.stale_replicas, 1u);
  EXPECT_TRUE(degraded_health.replicas_divergent);

  // While stale: queries never read the divergent replica, and answers
  // stay bit-identical to the never-failed engine (the stale copy cannot
  // leak stale hits into the merge).
  for (size_t t = 0; t < lake_->topic_of.size(); ++t) {
    const TableQueryResponse expected =
        single.Keyword(lake_->topic_of[t], FullK());
    ASSERT_TRUE(expected.status.ok()) << expected.status;
    for (int round = 0; round < 4; ++round) {
      const TableQueryResponse got =
          cluster.Keyword(lake_->topic_of[t], FullK());
      ASSERT_TRUE(got.status.ok()) << got.status;
      EXPECT_FALSE(got.degraded);
      for (const ShardTrace& trace : got.traces) {
        if (trace.shard == victim_shard) {
          EXPECT_NE(trace.replica, kVictimReplica);
        }
      }
      ExpectSameHits(Canon(expected.hits), Canon(got.hits),
                     "stale topic " + std::to_string(t));
    }
  }

  // One scrub pass repairs the replica by copying the missed table from
  // a majority-agreeing peer and re-admits it.
  const ClusterEngine::ScrubReport report = cluster.ScrubOnce();
  EXPECT_EQ(report.shards_checked, 2u);
  EXPECT_EQ(report.shards_divergent, 1u);
  EXPECT_EQ(report.replicas_repaired, 1u);
  EXPECT_EQ(report.replicas_unrepaired, 0u);
  EXPECT_GE(report.tables_copied, 1u);

  // Converged: all R replicas digest-equal, nobody stale, and the
  // repaired replica is back in the read rotation.
  for (const ClusterEngine::ShardHealth& sh : cluster.Health()) {
    EXPECT_EQ(sh.replicas_stale, 0u) << "shard " << sh.shard;
    EXPECT_EQ(sh.replicas_serving, 3u) << "shard " << sh.shard;
    EXPECT_TRUE(sh.digests_agree) << "shard " << sh.shard;
    for (const ClusterEngine::ReplicaHealth& rh : sh.replicas) {
      EXPECT_EQ(rh.content_digest, sh.replicas.front().content_digest);
    }
  }
  const serve::QueryService::HealthSnapshot healed_health = service.Health();
  EXPECT_EQ(healed_health.stale_replicas, 0u);
  EXPECT_FALSE(healed_health.replicas_divergent);

  // A second pass finds a clean cluster.
  const ClusterEngine::ScrubReport idle = cluster.ScrubOnce();
  EXPECT_EQ(idle.shards_divergent, 0u);

  // Post-repair answers are still bit-identical to the never-failed
  // engine, now with every replica eligible.
  bool victim_served = false;
  for (size_t t = 0; t < lake_->topic_of.size(); ++t) {
    const TableQueryResponse expected =
        single.Keyword(lake_->topic_of[t], FullK());
    ASSERT_TRUE(expected.status.ok()) << expected.status;
    for (int round = 0; round < 3; ++round) {
      const TableQueryResponse got =
          cluster.Keyword(lake_->topic_of[t], FullK());
      ASSERT_TRUE(got.status.ok()) << got.status;
      for (const ShardTrace& trace : got.traces) {
        if (trace.shard == victim_shard &&
            trace.replica == kVictimReplica) {
          victim_served = true;
        }
      }
      ExpectSameHits(Canon(expected.hits), Canon(got.hits),
                     "healed topic " + std::to_string(t));
    }
  }
  EXPECT_TRUE(victim_served);  // re-admitted, not just digest-equal

  EXPECT_GE(metrics.GetCounterFamily("cluster.repair.replicas_repaired",
                                     "shard")
                ->WithLabel(static_cast<uint64_t>(victim_shard))
                ->value(),
            1u);
  EXPECT_GE(metrics.GetCounterFamily("cluster.repair.tables_copied", "shard")
                ->WithLabel(static_cast<uint64_t>(victim_shard))
                ->value(),
            1u);
  EXPECT_GE(metrics.GetCounter("cluster.repair.scrub_passes")->value(), 2u);
}

TEST_F(ClusterRepairTest, BitFlippedRecoveryDivergenceIsRepaired) {
  // Divergence the write path never saw: one replica recovers from a
  // checkpoint whose delta section was bit-flipped on disk (recovery
  // drops the corrupt section, costing that table). Only the digest
  // comparison can catch it; the scrubber must repair and re-admit.
  const std::string root = TestDir("bitflip");
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/2);
  opts.store_root = root;

  std::vector<NamedHit> expected;
  {
    ClusterEngine cluster(lake(), opts);
    ASSERT_TRUE(cluster.ApplyBatch(AddBatch("durable_probe", 2))
                    .adds[0]
                    .ok());
    ASSERT_TRUE(cluster.Checkpoint().ok());
    const TableQueryResponse before =
        cluster.Keyword(lake_->topic_of[0], FullK());
    ASSERT_TRUE(before.status.ok()) << before.status;
    expected = Canon(before.hits);
  }

  // Flip one payload byte of replica 1's persisted delta table.
  const std::string replica_dir = root + "/shard-0/replica-1";
  const std::vector<uint64_t> generations =
      store::SnapshotStore(replica_dir).Generations();
  ASSERT_FALSE(generations.empty());
  const std::string path =
      replica_dir + "/" +
      store::SnapshotStore::SnapshotFileName(generations.back());
  auto reader = store::SnapshotReader::OpenFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  bool corrupted = false;
  for (const auto& info : reader->sections()) {
    if (info.name != std::string(ingest::LiveEngine::kDeltaPrefix) +
                         "durable_probe") {
      continue;
    }
    std::string bytes = ReadFileBytes(path);
    ASSERT_LT(info.offset + 5, bytes.size());
    bytes[info.offset + 5] ^= 1;
    WriteFileBytes(path, bytes);
    corrupted = true;
  }
  ASSERT_TRUE(corrupted);

  Result<std::unique_ptr<ClusterEngine>> recovered =
      ClusterEngine::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status();

  // Replica 1 came back without the probe table: digests disagree.
  {
    const std::vector<ClusterEngine::ShardHealth> health =
        (*recovered)->Health();
    ASSERT_EQ(health.size(), 1u);
    EXPECT_FALSE(health[0].digests_agree);
  }

  const ClusterEngine::ScrubReport report = (*recovered)->ScrubOnce();
  EXPECT_EQ(report.shards_divergent, 1u);
  EXPECT_EQ(report.replicas_repaired, 1u);
  EXPECT_GE(report.tables_copied, 1u);

  const std::vector<ClusterEngine::ShardHealth> health =
      (*recovered)->Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_TRUE(health[0].digests_agree);
  EXPECT_EQ(health[0].replicas_stale, 0u);
  ASSERT_EQ(health[0].replicas.size(), 2u);
  EXPECT_EQ(health[0].replicas[0].content_digest,
            health[0].replicas[1].content_digest);

  // Answers match the pre-crash cluster exactly, probe table included.
  const TableQueryResponse after =
      (*recovered)->Keyword(lake_->topic_of[0], FullK());
  ASSERT_TRUE(after.status.ok()) << after.status;
  ExpectSameHits(expected, Canon(after.hits), "recovered keyword");
  fs::remove_all(root);
}

TEST_F(ClusterRepairTest, BackgroundScrubberRepairsWithoutBeingAsked) {
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/2);
  opts.write_quorum = 1;  // let the single healthy replica ack
  opts.enable_scrubber = true;
  // A cadence slow enough that no background pass can sneak in between
  // the injected divergence and RunPassAndWait's triggered pass — that
  // pass must be the one doing the repair.
  opts.scrub_interval_ms = 1000;
  ClusterEngine cluster(lake(), opts);
  ASSERT_NE(cluster.scrubber(), nullptr);

  FailpointRegistry::Instance().Arm(ReplicaSet::ApplyFailpointName(0, 1),
                                    FaultSpec{});
  ASSERT_TRUE(cluster.ApplyBatch(AddBatch("scrubbed_probe", 3))
                  .adds[0]
                  .ok());

  // RunPassAndWait starts a pass strictly after the divergence above, so
  // its report must already show the repair.
  const ClusterEngine::ScrubReport report =
      cluster.scrubber()->RunPassAndWait();
  EXPECT_EQ(report.replicas_repaired + report.replicas_unrepaired, 1u);
  EXPECT_EQ(report.replicas_repaired, 1u);

  const std::vector<ClusterEngine::ShardHealth> health = cluster.Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_TRUE(health[0].digests_agree);
  EXPECT_EQ(health[0].replicas_stale, 0u);

  // The cadence keeps ticking on its own (bounded wait, generous budget).
  const uint64_t passes = cluster.scrubber()->passes();
  const auto deadline = steady_clock::now() + milliseconds(5000);
  while (cluster.scrubber()->passes() <= passes &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_GT(cluster.scrubber()->passes(), passes);
}

}  // namespace
}  // namespace lake::cluster
