#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.h"
#include "cluster/replica_set.h"
#include "cluster/retry_budget.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"
#include "util/failpoint.h"

namespace lake::cluster {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

/// Tail-tolerance suite: hedged reads (first response wins, loser
/// cancelled, results bit-identical), the shared retry/hedge budget
/// (duplicated work is capped; exhausted = degrade like today), and
/// latency-based outlier ejection (eject -> probe -> re-admit, with the
/// last-healthy-replica floor).
class ClusterTailTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 23;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
  }

  static void TearDownTestSuite() {
    delete lake_;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static const DataLakeCatalog& lake() { return lake_->catalog; }

  static ClusterEngine::Options ClusterOptions(size_t shards,
                                               size_t replicas) {
    ClusterEngine::Options opts;
    opts.num_shards = shards;
    opts.num_replicas = replicas;
    opts.engine.base_options = BaseOptions();
    opts.engine.kb = &lake_->kb;
    return opts;
  }

  static size_t FullK() { return lake().num_tables() + 8; }

  struct NamedHit {
    std::string name;
    double score = 0;
  };

  static std::vector<NamedHit> Canon(const std::vector<TableHit>& hits) {
    std::vector<NamedHit> out;
    for (const TableHit& h : hits) out.push_back({h.table, h.score});
    std::sort(out.begin(), out.end(),
              [](const NamedHit& a, const NamedHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.name < b.name;
              });
    return out;
  }

  static void ExpectSameHits(const std::vector<NamedHit>& expected,
                             const std::vector<NamedHit>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].name, actual[i].name) << "rank " << i;
      EXPECT_DOUBLE_EQ(expected[i].score, actual[i].score) << "rank " << i;
    }
  }

  /// Persistently slow replica: every hit of the failpoint stalls.
  static void ArmSlowReplica(uint32_t shard, size_t replica, uint64_t ms) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kDelay;
    spec.arg = ms;
    spec.max_fires = 0;  // unlimited
    FailpointRegistry::Instance().Arm(
        "cluster.exec." + std::to_string(shard) + "." +
            std::to_string(replica),
        spec);
  }

  static GeneratedLake* lake_;
};

GeneratedLake* ClusterTailTest::lake_ = nullptr;

// --- Hedged reads ---------------------------------------------------------

TEST_F(ClusterTailTest, HedgeWinsAgainstPersistentlySlowReplica) {
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/2);
  ClusterEngine baseline(lake(), opts);  // no hedging
  const std::string& topic = lake_->topic_of[0];
  const TableQueryResponse expected = baseline.Keyword(topic, FullK());
  ASSERT_TRUE(expected.status.ok()) << expected.status;
  ASSERT_FALSE(expected.hits.empty());

  opts.tail.enable_hedging = true;
  opts.tail.hedge_max_delay = milliseconds(5);
  // Keep the delay pinned at hedge_max_delay (no p95-derived shortcut) so
  // the test's timing is deterministic.
  opts.tail.hedge_min_samples = 1 << 20;
  ClusterEngine cluster(lake(), opts);
  ArmSlowReplica(0, 0, /*ms=*/60);

  size_t hedged_queries = 0;
  for (int i = 0; i < 6; ++i) {
    const TableQueryResponse got = cluster.Keyword(topic, FullK());
    ASSERT_TRUE(got.status.ok()) << got.status;
    EXPECT_FALSE(got.degraded);
    // Hedged answers are bit-identical to the unhedged baseline: same
    // generation-pinned read over content-equal replicas.
    ExpectSameHits(Canon(expected.hits), Canon(got.hits));
    for (const ShardTrace& t : got.traces) {
      if (t.hedged) ++hedged_queries;
      // A hedge is not a failover: the retry loop never ran.
      EXPECT_LE(t.attempts, 1u);
    }
  }
  // Round-robin lands the slow replica as primary about half the time;
  // each such sub-query must have hedged and the sibling must have won.
  const ClusterEngine::TailStats stats = cluster.tail_stats();
  EXPECT_GT(hedged_queries, 0u);
  EXPECT_GT(stats.hedges_dispatched, 0u);
  EXPECT_GT(stats.hedges_won, 0u);
  EXPECT_LE(stats.hedges_won, stats.hedges_dispatched);
}

TEST_F(ClusterTailTest, NoHedgeWhenDeadlineBudgetBelowHedgeDelay) {
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/2);
  opts.tail.enable_hedging = true;
  opts.tail.hedge_max_delay = milliseconds(50);
  opts.tail.hedge_min_samples = 1 << 20;  // delay stays at hedge_max_delay
  opts.shard_deadline = milliseconds(30);  // below the hedge delay
  ClusterEngine cluster(lake(), opts);
  // Both replicas slow enough that a hedge WOULD fire if it were allowed.
  ArmSlowReplica(0, 0, /*ms=*/100);
  ArmSlowReplica(0, 1, /*ms=*/100);

  const TableQueryResponse got = cluster.Keyword(lake_->topic_of[0], FullK());
  // The shard blows its 30ms budget either way; the invariant under test
  // is that no duplicate work was dispatched with the budget already
  // too small for the hedge delay.
  EXPECT_EQ(cluster.tail_stats().hedges_dispatched, 0u);
  EXPECT_TRUE(got.degraded || !got.status.ok());
}

TEST_F(ClusterTailTest, MutationsAreNeverHedged) {
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/2);
  opts.tail.enable_hedging = true;
  opts.tail.hedge_max_delay = milliseconds(1);
  ClusterEngine cluster(lake(), opts);
  // Slow apply path on one replica: if mutations could hedge, this is
  // exactly the shape that would trigger it.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDelay;
  spec.arg = 20;
  spec.max_fires = 0;
  FailpointRegistry::Instance().Arm("cluster.apply.0.0", spec);

  ingest::LiveEngine::Batch batch;
  Table derived = lake().table(0);
  derived.set_name("tail_mutation_probe");
  batch.adds.push_back(std::move(derived));
  const auto outcome = cluster.ApplyBatch(std::move(batch));
  ASSERT_EQ(outcome.adds.size(), 1u);
  EXPECT_TRUE(outcome.adds[0].ok());

  // The write path never touched the hedge/budget machinery.
  const ClusterEngine::TailStats stats = cluster.tail_stats();
  EXPECT_EQ(stats.hedges_dispatched, 0u);
  EXPECT_EQ(stats.budget_requests, 0u);
  EXPECT_EQ(stats.budget_acquired, 0u);
}

// --- Retry/hedge budget ---------------------------------------------------

TEST_F(ClusterTailTest, ExhaustedBudgetDegradesLikeAnExhaustedFailover) {
  // Zero budget: the failover loop's extra attempts are denied, so an
  // erroring replica degrades the shard exactly as max_attempts=1 would.
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/2);
  opts.max_failover_attempts = 2;
  opts.tail.budget_ratio = 0;
  opts.tail.budget_min_tokens = 0;
  ClusterEngine cluster(lake(), opts);

  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  spec.max_fires = 0;
  FailpointRegistry::Instance().Arm("cluster.exec.0.0", spec);
  FailpointRegistry::Instance().Arm("cluster.exec.0.1", spec);

  const TableQueryResponse got = cluster.Keyword(lake_->topic_of[0], FullK());
  EXPECT_FALSE(got.status.ok());
  ASSERT_EQ(got.traces.size(), 1u);
  EXPECT_EQ(got.traces[0].attempts, 1u);  // retry denied, not attempted
  const ClusterEngine::TailStats stats = cluster.tail_stats();
  EXPECT_GT(stats.budget_denied, 0u);
  EXPECT_EQ(stats.budget_acquired, 0u);
}

TEST_F(ClusterTailTest, DefaultBudgetStillAllowsFailover) {
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/2);
  opts.max_failover_attempts = 3;
  ClusterEngine cluster(lake(), opts);

  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  spec.max_fires = 1;
  FailpointRegistry::Instance().Arm("cluster.exec.0.0", spec);
  FailpointRegistry::Instance().Arm("cluster.exec.0.1", spec);

  // Both replicas error exactly once, so the first two attempts fail and
  // the third succeeds; the burst floor (min_tokens) funds both retries.
  const TableQueryResponse got = cluster.Keyword(lake_->topic_of[0], FullK());
  ASSERT_TRUE(got.status.ok()) << got.status;
  ASSERT_EQ(got.traces.size(), 1u);
  EXPECT_EQ(got.traces[0].attempts, 3u);
  EXPECT_EQ(cluster.tail_stats().budget_acquired, 2u);
}

TEST(RetryBudgetTest, RatioPlusFloorBoundsExtras) {
  RetryBudget::Options opts;
  opts.ratio = 0.1;
  opts.min_tokens = 2;
  opts.window_slices = 4;
  opts.slice_width = milliseconds(1000);
  RetryBudget budget(opts);
  const auto now = RetryBudget::Clock::now();
  for (int i = 0; i < 100; ++i) budget.RecordRequest(now);
  // Cap inside one window: 0.1 * 100 + 2 = 12 extras.
  uint64_t granted = 0;
  for (int i = 0; i < 50; ++i) {
    if (budget.TryAcquire(now)) ++granted;
  }
  EXPECT_EQ(granted, 12u);
  EXPECT_EQ(budget.denied(), 38u);
  // A new window far in the future: old volume AND old spend rolled off,
  // only the floor remains.
  const auto later = now + milliseconds(1000 * 10);
  granted = 0;
  for (int i = 0; i < 50; ++i) {
    if (budget.TryAcquire(later)) ++granted;
  }
  EXPECT_EQ(granted, 2u);
}

// --- Latency-based outlier ejection --------------------------------------

class ReplicaSetTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_shared<DataLakeCatalog>();
    Table t("tail_probe");
    t.AddColumn(Column("c", DataType::kString,
                       {Value("a"), Value("b"), Value("c")}));
    catalog_->AddTable(std::move(t));
  }

  static ReplicaSet::Options SetOptions(size_t replicas) {
    ReplicaSet::Options opts;
    opts.num_replicas = replicas;
    opts.engine.base_options = BaseOptions();
    opts.tail.eject_multiple = 3.0;
    opts.tail.eject_quantile = 0.95;
    opts.tail.eject_min_samples = 10;
    opts.tail.eject_base = milliseconds(50);
    opts.tail.eject_max = milliseconds(200);
    opts.tail.eject_probes = 3;
    return opts;
  }

  /// Feeds `n` successful outcomes of `us` microseconds to one replica.
  static void Feed(ReplicaSet& rs, size_t replica, int n, double us,
                   ReplicaSet::Clock::time_point now) {
    for (int i = 0; i < n; ++i) rs.RecordOutcome(replica, true, now, us);
  }

  std::shared_ptr<DataLakeCatalog> catalog_;
};

TEST_F(ReplicaSetTailTest, SlowOutlierIsEjectedAndPickRoutesAround) {
  ReplicaSet rs(0, catalog_, SetOptions(3));
  const auto now = ReplicaSet::Clock::now();
  Feed(rs, 1, 20, 100.0, now);
  Feed(rs, 2, 20, 100.0, now);
  EXPECT_EQ(rs.num_ejected(), 0u);
  // Replica 0 tracks ~30x its peers' median: ejected at the verdict.
  Feed(rs, 0, 20, 3000.0, now);
  EXPECT_TRUE(rs.slow_ejected(0));
  EXPECT_EQ(rs.slow_ejections(0), 1u);
  EXPECT_EQ(rs.num_ejected(), 1u);

  // Pick skips the ejected replica while siblings are available.
  for (int i = 0; i < 10; ++i) {
    ReplicaSet::Route route;
    ASSERT_TRUE(rs.Pick(now, SIZE_MAX, &route));
    EXPECT_NE(route.replica, 0u);
  }
}

TEST_F(ReplicaSetTailTest, EjectedReplicaIsProbedAndReadmittedWhenFast) {
  ReplicaSet rs(0, catalog_, SetOptions(3));
  const auto now = ReplicaSet::Clock::now();
  Feed(rs, 1, 20, 100.0, now);
  Feed(rs, 2, 20, 100.0, now);
  Feed(rs, 0, 20, 3000.0, now);
  ASSERT_TRUE(rs.slow_ejected(0));

  // After the ejection backoff, the replica earns bounded probes; fast
  // probe responses re-admit it (its window was reset on eject, so the
  // verdict judges probe samples, not the stale slowness).
  const auto probe_time = now + milliseconds(60);  // past eject_base=50ms
  size_t probes_of_zero = 0;
  while (!(!rs.slow_ejected(0))) {
    ReplicaSet::Route route;
    ASSERT_TRUE(rs.Pick(probe_time, SIZE_MAX, &route));
    if (route.replica == 0) {
      ++probes_of_zero;
      rs.RecordOutcome(0, true, probe_time, 120.0);
    } else {
      rs.RecordOutcome(route.replica, true, probe_time, 100.0);
    }
    ASSERT_LT(probes_of_zero, 100u) << "replica 0 never re-admitted";
  }
  EXPECT_EQ(probes_of_zero, 3u);  // exactly eject_probes probes needed
  EXPECT_FALSE(rs.slow_ejected(0));
  EXPECT_EQ(rs.num_ejected(), 0u);
}

TEST_F(ReplicaSetTailTest, StillSlowProbesReEjectWithLongerBackoff) {
  ReplicaSet rs(0, catalog_, SetOptions(3));
  const auto now = ReplicaSet::Clock::now();
  Feed(rs, 1, 20, 100.0, now);
  Feed(rs, 2, 20, 100.0, now);
  Feed(rs, 0, 20, 3000.0, now);
  ASSERT_TRUE(rs.slow_ejected(0));

  // Probes still slow: the verdict re-ejects with a doubled backoff.
  const auto probe_time = now + milliseconds(60);
  // Keep the peers' windows warm at probe time.
  Feed(rs, 1, 20, 100.0, probe_time);
  Feed(rs, 2, 20, 100.0, probe_time);
  size_t probes = 0;
  while (rs.slow_ejections(0) < 2) {
    ReplicaSet::Route route;
    ASSERT_TRUE(rs.Pick(probe_time, SIZE_MAX, &route));
    if (route.replica == 0) {
      ++probes;
      rs.RecordOutcome(0, true, probe_time, 3000.0);
    } else {
      rs.RecordOutcome(route.replica, true, probe_time, 100.0);
    }
    ASSERT_LT(probes, 100u) << "replica 0 never re-ejected";
  }
  EXPECT_TRUE(rs.slow_ejected(0));
  // Doubled backoff: not yet probing again right after eject_base.
  const auto too_soon = probe_time + milliseconds(60);
  for (int i = 0; i < 6; ++i) {
    ReplicaSet::Route route;
    ASSERT_TRUE(rs.Pick(too_soon, SIZE_MAX, &route));
    EXPECT_NE(route.replica, 0u);
  }
}

TEST_F(ReplicaSetTailTest, LastHealthyReplicaIsNeverEjected) {
  ReplicaSet rs(0, catalog_, SetOptions(2));
  const auto now = ReplicaSet::Clock::now();
  // Replica 1 is dead: replica 0 is the last healthy one, and no peer
  // median exists, so no amount of slowness may eject it.
  rs.Kill(1);
  Feed(rs, 0, 50, 50000.0, now);
  EXPECT_FALSE(rs.slow_ejected(0));
  ReplicaSet::Route route;
  ASSERT_TRUE(rs.Pick(now, SIZE_MAX, &route));
  EXPECT_EQ(route.replica, 0u);
}

TEST_F(ReplicaSetTailTest, PickFallsBackToEjectedReplicaAsLastResort) {
  ReplicaSet rs(0, catalog_, SetOptions(2));
  const auto now = ReplicaSet::Clock::now();
  Feed(rs, 1, 20, 100.0, now);
  Feed(rs, 0, 20, 3000.0, now);
  ASSERT_TRUE(rs.slow_ejected(0));

  // The fast sibling dies: ejection must not make the shard unavailable —
  // the second Pick pass admits the ejected replica anyway.
  rs.Kill(1);
  ReplicaSet::Route route;
  ASSERT_TRUE(rs.Pick(now, SIZE_MAX, &route));
  EXPECT_EQ(route.replica, 0u);
}

TEST_F(ClusterTailTest, HealthExportsLatencyAndEjectionState) {
  ClusterEngine::Options opts = ClusterOptions(1, /*replicas=*/2);
  opts.tail.eject_multiple = 3.0;
  opts.tail.eject_min_samples = 8;
  serve::MetricsRegistry metrics;
  opts.metrics = &metrics;
  ClusterEngine cluster(lake(), opts);
  serve::QueryService service(&cluster, serve::QueryService::Options{});

  ArmSlowReplica(0, 0, /*ms=*/30);
  const std::string& topic = lake_->topic_of[0];
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(cluster.Keyword(topic, FullK()).status.ok());
  }

  const auto health = cluster.Health();
  ASSERT_EQ(health.size(), 1u);
  ASSERT_EQ(health[0].replicas.size(), 2u);
  bool any_samples = false;
  for (const auto& rh : health[0].replicas) {
    if (rh.latency_samples > 0) any_samples = true;
  }
  EXPECT_TRUE(any_samples);
  // The persistently slow replica's tracked p95 dwarfs its sibling's and
  // the ejection state machine has taken it out of the first-pass pick.
  EXPECT_EQ(health[0].replicas_ejected, 1u);
  EXPECT_TRUE(health[0].replicas[0].slow_ejected);
  EXPECT_GT(health[0].replicas[0].latency_p95_us,
            health[0].replicas[1].latency_p95_us);
  // Ejection does not remove capacity: the replica still counts as
  // serving (it remains the last-resort fallback).
  EXPECT_EQ(health[0].replicas_serving, 2u);

  // The service health surface carries the rollup.
  const auto snapshot = service.Health();
  EXPECT_EQ(snapshot.ejected_replicas, 1u);
}

// --- Metastable-failure regression ---------------------------------------

TEST_F(ClusterTailTest, BudgetCapsDuplicatedWorkUnderOverload) {
  // 4x overload (8 client threads against a 2-worker scatter pool) with
  // one persistently slow replica. The regression this guards: without a
  // budget, every slow primary spawns duplicated work, the duplicates
  // queue behind the slowness, and the cluster enters the metastable
  // regime where goodput collapses even after the trigger clears.
  const std::string& topic = lake_->topic_of[0];
  const int kThreads = 8;
  const int kQueriesPerThread = 25;

  auto run = [&](ClusterEngine& cluster) {
    std::atomic<size_t> ok{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const TableQueryResponse got = cluster.Keyword(topic, 10);
          if (got.status.ok() && !got.degraded) {
            ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    return ok.load();
  };

  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/2);
  opts.num_workers = 2;
  opts.tail.enable_hedging = true;
  opts.tail.hedge_max_delay = milliseconds(5);
  opts.tail.hedge_min_samples = 1 << 20;

  ClusterEngine clean(lake(), opts);
  const size_t clean_ok = run(clean);

  ClusterEngine slow(lake(), opts);
  ArmSlowReplica(0, 0, /*ms=*/25);
  const size_t slow_ok = run(slow);

  // Duplicated work (hedges + funded failovers) stays within the budget:
  // the ratio of the window volume plus the burst floor per live window.
  // Lifetime counters span multiple windows, so allow the floor several
  // times over — an unbudgeted implementation hedges ~50% of sub-queries
  // here and fails this by an order of magnitude.
  const ClusterEngine::TailStats stats = slow.tail_stats();
  EXPECT_GT(stats.budget_requests, 0u);
  EXPECT_LE(stats.hedges_dispatched + stats.budget_acquired -
                std::min(stats.hedges_dispatched, stats.budget_acquired),
            stats.budget_acquired);  // every hedge was budget-funded
  EXPECT_LE(stats.budget_acquired,
            static_cast<uint64_t>(0.1 * static_cast<double>(
                                            stats.budget_requests)) +
                5 * 10);
  // Goodput within 10% of the clean run: the slow replica costs hedged
  // sub-queries a few ms, never correctness or availability.
  EXPECT_GE(static_cast<double>(slow_ok),
            0.9 * static_cast<double>(clean_ok));
}

}  // namespace
}  // namespace lake::cluster
