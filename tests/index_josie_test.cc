#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "index/inverted_index.h"
#include "index/josie.h"
#include "util/random.h"

namespace lake {
namespace {

std::vector<std::string> Values(size_t begin, size_t end) {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) out.push_back("v" + std::to_string(i));
  return out;
}

// --- InvertedIndex -----------------------------------------------------

TEST(InvertedIndexTest, PostingsAndOverlap) {
  InvertedIndex idx;
  idx.AddSet(10, {1, 2, 3});
  idx.AddSet(20, {2, 3, 4});
  idx.AddSet(30, {9});
  EXPECT_EQ(idx.num_sets(), 3u);
  EXPECT_EQ(idx.Postings(2), (std::vector<uint64_t>{10, 20}));
  EXPECT_TRUE(idx.Postings(77).empty());
  EXPECT_EQ(idx.DocumentFrequency(3), 2u);

  auto overlaps = idx.OverlapCounts({2, 3, 4, 4});  // dup query token
  std::map<uint64_t, uint32_t> m(overlaps.begin(), overlaps.end());
  EXPECT_EQ(m[10], 2u);
  EXPECT_EQ(m[20], 3u);
  EXPECT_EQ(m.count(30), 0u);
}

TEST(InvertedIndexTest, DuplicateTokensCollapsed) {
  InvertedIndex idx;
  idx.AddSet(1, {5, 5, 5});
  EXPECT_EQ(idx.Postings(5).size(), 1u);
  EXPECT_EQ(idx.TotalPostings(), 1u);
}

// --- JOSIE ------------------------------------------------------------

TEST(JosieTest, ExactTopKSimple) {
  JosieIndex idx;
  ASSERT_TRUE(idx.AddSet(0, Values(0, 100)).ok());   // overlap 50
  ASSERT_TRUE(idx.AddSet(1, Values(40, 90)).ok());   // overlap 50 (all)
  ASSERT_TRUE(idx.AddSet(2, Values(45, 55)).ok());   // overlap 10
  ASSERT_TRUE(idx.AddSet(3, Values(500, 600)).ok()); // overlap 0
  ASSERT_TRUE(idx.Build().ok());

  const auto hits = idx.TopK(Values(40, 90), 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].overlap, 50u);
  EXPECT_EQ(hits[1].overlap, 50u);
  // Zero-overlap sets never surface.
  const auto all = idx.TopK(Values(40, 90), 10).value();
  for (const auto& h : all) EXPECT_NE(h.id, 3u);
}

TEST(JosieTest, LifecycleErrors) {
  JosieIndex idx;
  ASSERT_TRUE(idx.AddSet(0, Values(0, 5)).ok());
  EXPECT_FALSE(idx.TopK(Values(0, 5), 1).ok());  // not built
  ASSERT_TRUE(idx.Build().ok());
  EXPECT_FALSE(idx.AddSet(1, Values(0, 5)).ok());  // already built
  EXPECT_FALSE(idx.Build().ok());
}

TEST(JosieTest, EmptyAndUnseenQueries) {
  JosieIndex idx;
  ASSERT_TRUE(idx.AddSet(0, Values(0, 5)).ok());
  ASSERT_TRUE(idx.Build().ok());
  EXPECT_TRUE(idx.TopK({}, 3).value().empty());
  EXPECT_TRUE(idx.TopK(Values(1000, 1010), 3).value().empty());
  EXPECT_TRUE(idx.TopK(Values(0, 5), 0).value().empty());
}

TEST(JosieTest, NormalizationApplied) {
  JosieIndex idx;
  ASSERT_TRUE(idx.AddSet(0, {"  Apple ", "BANANA"}).ok());
  ASSERT_TRUE(idx.Build().ok());
  const auto hits = idx.TopK({"apple", "banana"}, 1).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].overlap, 2u);
}

TEST(JosieTest, StatsShowPruning) {
  JosieIndex idx;
  // One dominant set and many sets sharing only a few common tokens.
  ASSERT_TRUE(idx.AddSet(0, Values(0, 200)).ok());
  for (size_t s = 1; s <= 60; ++s) {
    auto set = Values(0, 3);  // 3 very frequent tokens
    auto rare = Values(10000 + s * 100, 10000 + s * 100 + 50);
    set.insert(set.end(), rare.begin(), rare.end());
    ASSERT_TRUE(idx.AddSet(s, set).ok());
  }
  ASSERT_TRUE(idx.Build().ok());
  JosieIndex::QueryStats stats;
  const auto hits = idx.TopK(Values(0, 200), 1, &stats).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[0].overlap, 200u);
  // The rare-first order defers the frequent tokens; with k=1 the scan
  // should terminate before reading every list.
  EXPECT_LT(stats.lists_read, 200u);
}

TEST(JosieSerializationTest, SaveLoadRoundTrip) {
  JosieIndex idx;
  ASSERT_TRUE(idx.AddSet(10, Values(0, 100)).ok());
  ASSERT_TRUE(idx.AddSet(20, Values(40, 90)).ok());
  ASSERT_TRUE(idx.AddSet(30, Values(500, 600)).ok());
  ASSERT_TRUE(idx.Build().ok());

  std::stringstream buffer;
  ASSERT_TRUE(idx.Save(&buffer).ok());

  JosieIndex loaded;
  ASSERT_TRUE(loaded.Load(&buffer).ok());
  EXPECT_TRUE(loaded.built());
  EXPECT_EQ(loaded.num_sets(), idx.num_sets());
  EXPECT_EQ(loaded.vocabulary_size(), idx.vocabulary_size());

  const auto a = idx.TopK(Values(40, 90), 3).value();
  const auto b = loaded.TopK(Values(40, 90), 3).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].overlap, b[i].overlap);
  }
}

TEST(JosieSerializationTest, Errors) {
  JosieIndex unbuilt;
  ASSERT_TRUE(unbuilt.AddSet(0, Values(0, 5)).ok());
  std::stringstream buffer;
  EXPECT_FALSE(unbuilt.Save(&buffer).ok());  // must be built

  std::stringstream garbage("not an index");
  JosieIndex target;
  EXPECT_FALSE(target.Load(&garbage).ok());

  // Truncated stream.
  JosieIndex idx;
  ASSERT_TRUE(idx.AddSet(0, Values(0, 50)).ok());
  ASSERT_TRUE(idx.Build().ok());
  std::stringstream full;
  ASSERT_TRUE(idx.Save(&full).ok());
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(target.Load(&truncated).ok());
}

// Property: JOSIE's filtered top-k matches brute force on random inputs
// (exactness is JOSIE's contract — the filters must only save work).
class JosieExactness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JosieExactness, MatchesBruteForce) {
  Rng rng(GetParam());
  JosieIndex idx;
  const size_t num_sets = 60 + rng.NextBounded(60);
  const size_t universe = 500;
  for (size_t s = 0; s < num_sets; ++s) {
    const size_t size = 5 + rng.NextBounded(80);
    std::vector<std::string> set;
    for (size_t i = 0; i < size; ++i) {
      set.push_back("v" + std::to_string(rng.NextBounded(universe)));
    }
    ASSERT_TRUE(idx.AddSet(s, set).ok());
  }
  ASSERT_TRUE(idx.Build().ok());

  for (int q = 0; q < 5; ++q) {
    const size_t qsize = 5 + rng.NextBounded(60);
    std::vector<std::string> query;
    for (size_t i = 0; i < qsize; ++i) {
      query.push_back("v" + std::to_string(rng.NextBounded(universe)));
    }
    const size_t k = 1 + rng.NextBounded(10);
    const auto fast = idx.TopK(query, k).value();
    const auto slow = idx.TopKBruteForce(query, k).value();
    ASSERT_EQ(fast.size(), slow.size());
    // Overlap multiset must match exactly (ids may permute within ties).
    std::vector<uint32_t> fo, so;
    for (const auto& h : fast) fo.push_back(h.overlap);
    for (const auto& h : slow) so.push_back(h.overlap);
    EXPECT_EQ(fo, so);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JosieExactness,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace lake
