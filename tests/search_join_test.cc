#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "lakegen/benchmark_lakes.h"
#include "search/join_containment.h"
#include "search/join_correlated.h"
#include "search/join_jaccard.h"
#include "search/join_josie.h"
#include "search/join_mate.h"
#include "search/join_pexeso.h"
#include "util/logging.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

std::vector<std::string> Values(size_t begin, size_t end,
                                const std::string& prefix = "v") {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

DataLakeCatalog SmallJoinLake() {
  DataLakeCatalog cat;
  auto add = [&cat](const std::string& name,
                    const std::vector<std::string>& vals) {
    Table t(name);
    LAKE_CHECK(t.AddColumn(MakeColumn("key", vals)).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  };
  add("full_overlap", Values(0, 100));        // containment 1.0, J=1.0
  add("superset", Values(0, 1000));           // containment 1.0, J=0.1
  add("half", Values(50, 150));               // containment 0.5
  add("disjoint", Values(5000, 5100));        // containment 0
  return cat;
}

// --- Exact baseline ------------------------------------------------------

TEST(ExactJoinTest, JaccardIsBiasedAgainstLargeSets) {
  DataLakeCatalog cat = SmallJoinLake();
  ExactSetJoinSearch search(&cat);
  const auto query = Values(0, 100);

  const auto by_jaccard = search.TopKByJaccard(query, 4);
  const auto by_containment = search.TopKByContainment(query, 4);
  ASSERT_GE(by_jaccard.size(), 2u);
  ASSERT_GE(by_containment.size(), 2u);

  // Jaccard ranks the exact-duplicate far above the superset...
  EXPECT_EQ(cat.table(by_jaccard[0].column.table_id).name(), "full_overlap");
  EXPECT_NE(cat.table(by_jaccard[1].column.table_id).name(), "superset");
  // ...but containment scores both at 1.0 (the E2 claim).
  std::unordered_set<std::string> top2;
  top2.insert(cat.table(by_containment[0].column.table_id).name());
  top2.insert(cat.table(by_containment[1].column.table_id).name());
  EXPECT_TRUE(top2.count("full_overlap"));
  EXPECT_TRUE(top2.count("superset"));
  EXPECT_DOUBLE_EQ(by_containment[0].score, 1.0);
  EXPECT_DOUBLE_EQ(by_containment[1].score, 1.0);
}

TEST(ExactJoinTest, DisjointNeverReturned) {
  DataLakeCatalog cat = SmallJoinLake();
  ExactSetJoinSearch search(&cat);
  for (const auto& r : search.TopKByContainment(Values(0, 100), 10)) {
    EXPECT_NE(cat.table(r.column.table_id).name(), "disjoint");
  }
}

TEST(ExactJoinTest, NormalizationMatches) {
  DataLakeCatalog cat;
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("k", {"  Apple ", "BANANA", "c"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  ExactSetJoinSearch search(&cat);
  const auto hits = search.TopKByJaccard({"apple", "banana", "c"}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

// --- LSH Ensemble engine ---------------------------------------------------

TEST(LshEnsembleJoinTest, FindsPlantedContainment) {
  DataLakeCatalog cat = SmallJoinLake();
  LshEnsembleJoinSearch search(&cat);
  const auto results = search.Search(Values(0, 100), 0.7, 5).value();
  ASSERT_GE(results.size(), 2u);
  std::unordered_set<std::string> names;
  for (const auto& r : results) {
    names.insert(cat.table(r.column.table_id).name());
    EXPECT_GE(r.score, 0.7);
  }
  EXPECT_TRUE(names.count("full_overlap"));
  EXPECT_TRUE(names.count("superset"));
  EXPECT_FALSE(names.count("disjoint"));
}

TEST(LshEnsembleJoinTest, CandidatesRecallOnSkewedWorkload) {
  SkewedSetsOptions opts;
  opts.num_sets = 150;
  opts.num_queries = 5;
  const SkewedSetsWorkload w = MakeSkewedSetsWorkload(opts);
  DataLakeCatalog cat;
  for (size_t s = 0; s < w.sets.size(); ++s) {
    Table t("set" + std::to_string(s));
    LAKE_CHECK(t.AddColumn(MakeColumn("values", w.sets[s])).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  }
  LshEnsembleJoinSearch search(&cat);
  const double threshold = 0.6;
  size_t relevant = 0, found = 0;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto cands = search.Candidates(w.queries[q], threshold).value();
    const std::unordered_set<size_t> cand_set(cands.begin(), cands.end());
    for (size_t s = 0; s < w.sets.size(); ++s) {
      if (w.containment[q][s] >= threshold) {
        ++relevant;
        // Column index == table index here (one column per table).
        if (cand_set.count(s)) ++found;
      }
    }
  }
  ASSERT_GT(relevant, 0u);
  EXPECT_GT(static_cast<double>(found) / relevant, 0.7);
}

// --- JOSIE engine ------------------------------------------------------------

TEST(JosieJoinTest, ExactOverlapRanking) {
  DataLakeCatalog cat = SmallJoinLake();
  JosieJoinSearch search(&cat);
  const auto hits = search.Search(Values(0, 100), 3).value();
  ASSERT_GE(hits.size(), 3u);
  EXPECT_DOUBLE_EQ(hits[0].score, 100);  // both full-overlap columns
  EXPECT_DOUBLE_EQ(hits[1].score, 100);
  EXPECT_DOUBLE_EQ(hits[2].score, 50);
}

// --- PEXESO ---------------------------------------------------------------

TEST(PexesoJoinTest, FindsFuzzyVariants) {
  DataLakeCatalog cat;
  Table t1("clean");
  LAKE_CHECK(t1.AddColumn(MakeColumn(
      "country", {"kelovania", "morzania", "tuvaria", "zembalia"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t1)).ok());
  Table t2("unrelated");
  LAKE_CHECK(t2.AddColumn(MakeColumn(
      "code", {"qx1", "wz9", "pr5", "lm3"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t2)).ok());

  WordEmbedding words;
  PexesoJoinSearch::Options opts;
  opts.tau = 0.6;
  PexesoJoinSearch search(&cat, &words, opts);
  // Slightly perturbed variants of the clean values.
  const auto hits =
      search.Search({"kelovania", "morzania2", "tuvariaa", "zembalia"}, 2)
          .value();
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(cat.table(hits[0].column.table_id).name(), "clean");
  EXPECT_GT(hits[0].score, 0.5);
}

TEST(PexesoJoinTest, EmptyQuery) {
  DataLakeCatalog cat = SmallJoinLake();
  WordEmbedding words;
  PexesoJoinSearch search(&cat, &words);
  EXPECT_TRUE(search.Search({}, 3).value().empty());
  EXPECT_TRUE(search.Search({"", "  "}, 3).value().empty());
}

// --- MATE -------------------------------------------------------------------

DataLakeCatalog CompositeKeyLake() {
  DataLakeCatalog cat;
  // Table joinable on (first, last): same pairs as the query.
  Table good("good");
  LAKE_CHECK(good.AddColumn(MakeColumn("first", {"ann", "bob", "cal", "dan"}))
                 .ok());
  LAKE_CHECK(good.AddColumn(MakeColumn("last", {"xu", "yee", "zorn", "wu"}))
                 .ok());
  LAKE_CHECK(good.AddColumn(MakeColumn("city", {"k1", "k2", "k3", "k4"}))
                 .ok());
  LAKE_CHECK(cat.AddTable(std::move(good)).ok());
  // Table sharing each attribute's values but with MISALIGNED pairs: a
  // single-attribute join matches, the composite join must not.
  Table shuffled("shuffled");
  LAKE_CHECK(
      shuffled.AddColumn(MakeColumn("first", {"ann", "bob", "cal", "dan"}))
          .ok());
  LAKE_CHECK(shuffled.AddColumn(MakeColumn("last", {"yee", "xu", "wu", "zorn"}))
                 .ok());
  LAKE_CHECK(cat.AddTable(std::move(shuffled)).ok());
  return cat;
}

TEST(MateJoinTest, CompositeKeyDistinguishesAlignment) {
  DataLakeCatalog cat = CompositeKeyLake();
  MateJoinSearch search(&cat);

  Table query("q");
  LAKE_CHECK(query.AddColumn(MakeColumn("f", {"ann", "bob", "cal"})).ok());
  LAKE_CHECK(query.AddColumn(MakeColumn("l", {"xu", "yee", "zorn"})).ok());

  const auto results = search.Search(query, {0, 1}, 5).value();
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(cat.table(results[0].table_id).name(), "good");
  EXPECT_EQ(results[0].joinable_rows, 3u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
  for (const auto& r : results) {
    if (cat.table(r.table_id).name() == "shuffled") {
      EXPECT_LT(r.score, 0.5);
    }
  }
}

TEST(MateJoinTest, ColumnMappingRecovered) {
  DataLakeCatalog cat = CompositeKeyLake();
  MateJoinSearch search(&cat);
  Table query("q");
  LAKE_CHECK(query.AddColumn(MakeColumn("f", {"ann", "bob"})).ok());
  LAKE_CHECK(query.AddColumn(MakeColumn("l", {"xu", "yee"})).ok());
  const auto results = search.Search(query, {0, 1}, 1).value();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].column_mapping.size(), 2u);
  EXPECT_EQ(results[0].column_mapping[0], 0);  // f -> first
  EXPECT_EQ(results[0].column_mapping[1], 1);  // l -> last
}

TEST(MateJoinTest, SuperKeyPrunes) {
  DataLakeCatalog cat = CompositeKeyLake();
  MateJoinSearch search(&cat);
  Table query("q");
  LAKE_CHECK(query.AddColumn(MakeColumn("f", {"ann", "bob", "cal"})).ok());
  LAKE_CHECK(query.AddColumn(MakeColumn("l", {"nomatch1", "nomatch2",
                                              "nomatch3"})).ok());
  MateJoinSearch::QueryStats stats;
  const auto results = search.Search(query, {0, 1}, 5, &stats).value();
  EXPECT_TRUE(results.empty());
  // The mask filter must reject candidates before exact verification.
  EXPECT_LT(stats.superkey_survivors, stats.candidate_rows);
  EXPECT_EQ(stats.verified_rows, stats.superkey_survivors);
}

TEST(MateJoinTest, InputValidation) {
  DataLakeCatalog cat = CompositeKeyLake();
  MateJoinSearch search(&cat);
  Table query("q");
  LAKE_CHECK(query.AddColumn(MakeColumn("f", {"ann"})).ok());
  EXPECT_FALSE(search.Search(query, {}, 3).ok());
  EXPECT_FALSE(search.Search(query, {7}, 3).ok());
}

// --- Correlated join ----------------------------------------------------------

TEST(CorrelatedJoinTest, RanksPlantedCorrelationsFirst) {
  CorrelatedOptions opts;
  opts.num_pairs = 12;
  const CorrelatedWorkload w = MakeCorrelatedWorkload(opts);
  const DataLakeCatalog cat = CatalogFromCorrelatedWorkload(w);
  CorrelatedJoinSearch search(&cat);
  ASSERT_GT(search.num_indexed_pairs(), 0u);

  const auto results =
      search.Search(w.query_keys, w.query_values, 4).value();
  ASSERT_FALSE(results.empty());
  // The top hits should be the pairs with the largest |planted rho|.
  double top_planted = 0;
  for (const auto& r : results) {
    top_planted = std::max(
        top_planted, std::abs(w.pairs[r.table_id].planted_correlation));
    EXPECT_GE(r.est_containment, 0.2);
  }
  EXPECT_GT(top_planted, 0.8);
  // Estimated correlation sign should match the planted one for the top hit.
  const auto& top = results[0];
  EXPECT_GT(top.est_correlation * w.pairs[top.table_id].planted_correlation,
            0.0);
}

TEST(CorrelatedJoinTest, QueryValidation) {
  const DataLakeCatalog cat =
      CatalogFromCorrelatedWorkload(MakeCorrelatedWorkload({}));
  CorrelatedJoinSearch search(&cat);
  EXPECT_FALSE(search.Search({"a"}, {1.0, 2.0}, 3).ok());
  EXPECT_FALSE(search.Search({"a", "b"}, {1.0, 2.0}, 3).ok());  // < 3 rows
}

}  // namespace
}  // namespace lake
