#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "store/snapshot.h"
#include "table/catalog.h"
#include "table/column.h"
#include "table/csv.h"
#include "table/schema.h"
#include "table/stats.h"
#include "table/table.h"
#include "table/type_infer.h"
#include "table/value.h"

namespace lake {
namespace {

// --- Value ------------------------------------------------------------

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(int64_t{7}).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).as_string(), "hi");
}

TEST(ValueTest, ToDouble) {
  double d;
  EXPECT_TRUE(Value(int64_t{3}).ToDouble(&d));
  EXPECT_DOUBLE_EQ(d, 3.0);
  EXPECT_TRUE(Value(true).ToDouble(&d));
  EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_FALSE(Value(std::string("x")).ToDouble(&d));
  EXPECT_FALSE(Value().ToDouble(&d));
}

TEST(ValueTest, ToStringCanonical) {
  EXPECT_EQ(Value(int64_t{-4}).ToString(), "-4");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
  EXPECT_EQ(Value(std::string("ab")).ToString(), "ab");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));  // different types
  EXPECT_EQ(Value(), Value::Null());
}

// --- Type inference -----------------------------------------------------

TEST(TypeInferTest, IntColumn) {
  EXPECT_EQ(InferColumnType({"1", "2", " 3 "}), DataType::kInt);
}

TEST(TypeInferTest, DoublePromotion) {
  EXPECT_EQ(InferColumnType({"1", "2.5"}), DataType::kDouble);
}

TEST(TypeInferTest, BoolColumn) {
  EXPECT_EQ(InferColumnType({"true", "FALSE", "yes"}), DataType::kBool);
}

TEST(TypeInferTest, DigitColumnsPreferInt) {
  EXPECT_EQ(InferColumnType({"0", "1", "0"}), DataType::kInt);
}

TEST(TypeInferTest, MixedFallsToString) {
  EXPECT_EQ(InferColumnType({"1", "abc"}), DataType::kString);
}

TEST(TypeInferTest, EmptyCellsIgnored) {
  EXPECT_EQ(InferColumnType({"", "7", ""}), DataType::kInt);
  EXPECT_EQ(InferColumnType({"", ""}), DataType::kNull);
}

TEST(TypeInferTest, ParseCellNullOnEmpty) {
  EXPECT_TRUE(ParseCell("  ", DataType::kInt).is_null());
}

TEST(TypeInferTest, ParseCellDegradesToString) {
  const Value v = ParseCell("abc", DataType::kInt);
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "abc");
}

// --- Column -------------------------------------------------------------

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) {
    c.Append(v.empty() ? Value::Null() : Value(v));
  }
  return c;
}

TEST(ColumnTest, DistinctStrings) {
  Column c = MakeColumn("x", {"a", "b", "a", "", "c", "b"});
  EXPECT_EQ(c.DistinctStrings(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(c.NullCount(), 1u);
}

TEST(ColumnTest, NumbersSkipsNonNumeric) {
  Column c("n", DataType::kDouble);
  c.Append(Value(1.5));
  c.Append(Value::Null());
  c.Append(Value(int64_t{2}));
  EXPECT_EQ(c.Numbers(), (std::vector<double>{1.5, 2.0}));
  EXPECT_TRUE(c.IsNumeric());
}

// --- Schema / Table -------------------------------------------------------

TEST(SchemaTest, FindField) {
  Schema s({{"a", DataType::kInt}, {"b", DataType::kString}});
  EXPECT_EQ(s.FindField("b"), 1);
  EXPECT_EQ(s.FindField("zz"), -1);
  EXPECT_EQ(s.ToString(), "a:int, b:string");
}

TEST(TableTest, AddColumnEnforcesLength) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeColumn("a", {"1", "2"})).ok());
  EXPECT_FALSE(t.AddColumn(MakeColumn("b", {"1"})).ok());
  EXPECT_TRUE(t.AddColumn(MakeColumn("b", {"x", "y"})).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, AppendRow) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(Column("a", DataType::kInt)).ok());
  ASSERT_TRUE(t.AddColumn(Column("b", DataType::kString)).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(std::string("x"))}).ok());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{2})}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ProjectAndSlice) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeColumn("a", {"1", "2", "3"})).ok());
  ASSERT_TRUE(t.AddColumn(MakeColumn("b", {"x", "y", "z"})).ok());
  auto proj = t.Project({1});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->num_columns(), 1u);
  EXPECT_EQ(proj->column(0).name(), "b");
  EXPECT_FALSE(t.Project({5}).ok());

  auto slice = t.Slice(1, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->num_rows(), 2u);
  EXPECT_EQ(slice->column(0).cell(0).ToString(), "2");
  EXPECT_FALSE(t.Slice(2, 1).ok());
  EXPECT_FALSE(t.Slice(0, 99).ok());
}

TEST(TableTest, PreviewRenders) {
  Table t("demo");
  ASSERT_TRUE(t.AddColumn(MakeColumn("name", {"ann", "bob"})).ok());
  const std::string p = t.Preview();
  EXPECT_NE(p.find("demo"), std::string::npos);
  EXPECT_NE(p.find("ann"), std::string::npos);
}

// --- Stats ---------------------------------------------------------------

TEST(StatsTest, BasicProfile) {
  Column c("x", DataType::kString);
  c.Append(Value(std::string("ab")));
  c.Append(Value(std::string("a1")));
  c.Append(Value::Null());
  c.Append(Value(std::string("ab")));
  const ColumnStats s = ComputeColumnStats(c);
  EXPECT_EQ(s.row_count, 4u);
  EXPECT_EQ(s.null_count, 1u);
  EXPECT_EQ(s.distinct_count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_length, 2.0);
  EXPECT_NEAR(s.digit_fraction, 1.0 / 6, 1e-9);
  EXPECT_NEAR(s.Uniqueness(), 2.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(s.NullFraction(), 0.25);
}

TEST(StatsTest, NumericMoments) {
  Column c("n", DataType::kInt);
  for (int i = 1; i <= 4; ++i) c.Append(Value(int64_t{i}));
  const ColumnStats s = ComputeColumnStats(c);
  EXPECT_EQ(s.numeric_count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-9);
}

TEST(StatsTest, EmptyColumn) {
  Column c("e", DataType::kNull);
  const ColumnStats s = ComputeColumnStats(c);
  EXPECT_EQ(s.row_count, 0u);
  EXPECT_DOUBLE_EQ(s.Uniqueness(), 0.0);
  EXPECT_DOUBLE_EQ(s.NullFraction(), 0.0);
}

// --- Catalog ---------------------------------------------------------------

Table SmallTable(const std::string& name) {
  Table t(name);
  Column c("k", DataType::kString);
  c.Append(Value(std::string("a")));
  c.Append(Value(std::string("b")));
  EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  return t;
}

TEST(CatalogTest, AddAndFind) {
  DataLakeCatalog cat;
  auto id = cat.AddTable(SmallTable("t1"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cat.num_tables(), 1u);
  EXPECT_EQ(cat.FindTable("t1").value(), id.value());
  EXPECT_FALSE(cat.FindTable("nope").ok());
  EXPECT_FALSE(cat.AddTable(SmallTable("t1")).ok());  // duplicate name
}

TEST(CatalogTest, StatsCached) {
  DataLakeCatalog cat;
  const TableId id = cat.AddTable(SmallTable("t")).value();
  const ColumnStats& s = cat.stats(ColumnRef{id, 0});
  EXPECT_EQ(s.distinct_count, 2u);
}

TEST(CatalogTest, ForEachColumnVisitsAll) {
  DataLakeCatalog cat;
  ASSERT_TRUE(cat.AddTable(SmallTable("a")).ok());
  ASSERT_TRUE(cat.AddTable(SmallTable("b")).ok());
  size_t count = 0;
  cat.ForEachColumn([&](const ColumnRef&, const Column&) { ++count; });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(cat.num_columns(), 2u);
  EXPECT_EQ(cat.AllColumns().size(), 2u);
  EXPECT_EQ(cat.AllTables().size(), 2u);
}

TEST(CatalogTest, SaveAndReloadRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "lakefind_save_test";
  fs::remove_all(dir);
  DataLakeCatalog cat;
  ASSERT_TRUE(cat.AddTable(SmallTable("alpha")).ok());
  ASSERT_TRUE(cat.AddTable(SmallTable("beta")).ok());
  ASSERT_TRUE(cat.SaveToDirectory(dir.string()).ok());

  DataLakeCatalog reloaded;
  auto ids = reloaded.LoadDirectory(dir.string());
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(reloaded.num_tables(), 2u);
  const TableId alpha = reloaded.FindTable("alpha").value();
  EXPECT_EQ(reloaded.table(alpha).num_rows(), 2u);
  EXPECT_EQ(reloaded.table(alpha).column(0).cell(0).ToString(), "a");
  fs::remove_all(dir);

  // Names with path separators are rejected, not written elsewhere.
  DataLakeCatalog bad;
  ASSERT_TRUE(bad.AddTable(SmallTable("x/y")).ok());
  EXPECT_FALSE(bad.SaveToDirectory(dir.string()).ok());
  fs::remove_all(dir);
}

TEST(CatalogTest, LoadDirectory) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "lakefind_catalog_test";
  fs::create_directories(dir);
  {
    std::ofstream f(dir / "one.csv");
    f << "a,b\n1,x\n2,y\n";
  }
  {
    std::ofstream f(dir / "two.csv");
    f << "c\nhello\n";
  }
  {
    std::ofstream f(dir / "ignored.txt");
    f << "not a csv";
  }
  DataLakeCatalog cat;
  auto ids = cat.LoadDirectory(dir.string());
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  EXPECT_TRUE(cat.FindTable("one").ok());
  EXPECT_TRUE(cat.FindTable("two").ok());
  EXPECT_FALSE(cat.LoadDirectory((dir / "one.csv").string()).ok());
  fs::remove_all(dir);
}

TEST(CatalogTest, LoadDirectoryOrderIsSortedNotFilesystemOrder) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "lakefind_order_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // Create in reverse and shuffled order: table ids must come out sorted
  // by filename regardless of what order the directory iterator yields.
  for (const char* name : {"zulu", "mike", "alpha", "yankee", "bravo"}) {
    std::ofstream f(dir / (std::string(name) + ".csv"));
    f << "col\n" << name << "\n";
  }
  DataLakeCatalog cat;
  auto ids = cat.LoadDirectory(dir.string());
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 5u);
  const std::vector<std::string> expected = {"alpha", "bravo", "mike",
                                             "yankee", "zulu"};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(cat.table((*ids)[i]).name(), expected[i]) << i;
    EXPECT_EQ((*ids)[i], static_cast<TableId>(i));
  }
  // A second load into a fresh catalog assigns identical ids: snapshot
  // compaction and cold rebuilds depend on this determinism.
  DataLakeCatalog again;
  auto ids2 = again.LoadDirectory(dir.string());
  ASSERT_TRUE(ids2.ok());
  ASSERT_EQ(ids2->size(), 5u);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(again.table((*ids2)[i]).name(), expected[i]) << i;
  }
  // A nonexistent directory is an explicit error, not an empty load.
  DataLakeCatalog missing;
  EXPECT_FALSE(missing.LoadDirectory((dir / "nope").string()).ok());
  fs::remove_all(dir);
}

TEST(CatalogTest, SnapshotPreservesTableMetadata) {
  DataLakeCatalog cat;
  Table t = SmallTable("documented");
  t.metadata().description = "quarterly sales extract";
  t.metadata().tags = {"sales", "quarterly"};
  t.metadata().source = "portal://finance";
  ASSERT_TRUE(cat.AddTable(std::move(t)).ok());
  ASSERT_TRUE(cat.AddTable(SmallTable("bare")).ok());

  store::SnapshotWriter writer;
  ASSERT_TRUE(cat.SaveSnapshot(&writer).ok());
  Result<store::SnapshotReader> reader =
      store::SnapshotReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  // Only the table with metadata gets a companion section.
  EXPECT_TRUE(reader->has_section("tablemeta/documented"));
  EXPECT_FALSE(reader->has_section("tablemeta/bare"));

  DataLakeCatalog reloaded;
  ASSERT_TRUE(reloaded.LoadSnapshot(*reader).ok());
  const TableId id = reloaded.FindTable("documented").value();
  EXPECT_EQ(reloaded.table(id).metadata().description,
            "quarterly sales extract");
  EXPECT_EQ(reloaded.table(id).metadata().tags,
            (std::vector<std::string>{"sales", "quarterly"}));
  EXPECT_EQ(reloaded.table(id).metadata().source, "portal://finance");
}

}  // namespace
}  // namespace lake
