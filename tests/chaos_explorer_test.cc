// Unit + smoke tests of the deterministic chaos explorer (src/chaos):
// the workload oracle's three-valued constraints, the plan format's
// byte-identical round trip, MakePlan determinism, and a real (small)
// RunChaos sweep that must come back clean twice with the same verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/explorer.h"
#include "chaos/plan.h"
#include "chaos/oracle.h"
#include "chaos/workload.h"
#include "ingest/live_engine.h"
#include "table/table.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace lake::chaos {
namespace {

namespace fs = std::filesystem;

Table Tbl(const std::string& name, int64_t salt) {
  Table t(name);
  t.AddColumn(Column("k", DataType::kInt, {Value(salt), Value(salt + 1)}));
  return t;
}

uint32_t Digest(const Table& t) { return ingest::TableContentDigest(t); }

class ChaosExplorerTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  std::string Scratch(const std::string& leaf) {
    fs::path dir = fs::temp_directory_path() /
                   ("chaos_explorer_test_" + std::to_string(::getpid())) /
                   leaf;
    fs::remove_all(dir);
    return dir.string();
  }
};

// ---------------------------------------------------------------- oracle

TEST_F(ChaosExplorerTest, OracleFlagsAcknowledgedLoss) {
  WorkloadOracle oracle;
  oracle.AckAdd(Tbl("t1", 7));
  const auto violations = oracle.Violations({});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("acknowledged loss"), std::string::npos);
  EXPECT_NE(violations[0].find("t1"), std::string::npos);
}

TEST_F(ChaosExplorerTest, OracleFlagsResurrectionAfterAckedRemove) {
  WorkloadOracle oracle;
  const Table t = Tbl("t1", 7);
  oracle.AckAdd(t);
  oracle.AckRemove("t1");
  EXPECT_TRUE(oracle.Violations({}).empty());
  const auto violations = oracle.Violations({{"t1", Digest(t)}});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("resurrected"), std::string::npos);
}

TEST_F(ChaosExplorerTest, OracleFlagsContentMismatchAndPhantoms) {
  WorkloadOracle oracle;
  oracle.AckAdd(Tbl("t1", 7));
  const auto mismatch =
      oracle.Violations({{"t1", Digest(Tbl("t1", 8))}});
  ASSERT_EQ(mismatch.size(), 1u);
  EXPECT_NE(mismatch[0].find("content mismatch"), std::string::npos);

  const auto phantom = oracle.Violations(
      {{"t1", Digest(Tbl("t1", 7))}, {"ghost", 123u}});
  ASSERT_EQ(phantom.size(), 1u);
  EXPECT_NE(phantom[0].find("phantom"), std::string::npos);
}

TEST_F(ChaosExplorerTest, OracleIndeterminateOpsWidenTheConstraint) {
  WorkloadOracle oracle;
  const Table v1 = Tbl("t1", 7);
  const Table v2 = Tbl("t1", 8);
  oracle.AckAdd(v1);
  // A failed re-add with different content: either version (or, after the
  // indeterminate remove below, absence) is now legal.
  oracle.IndeterminateAdd(v2);
  EXPECT_TRUE(oracle.Violations({{"t1", Digest(v1)}}).empty());
  EXPECT_TRUE(oracle.Violations({{"t1", Digest(v2)}}).empty());
  EXPECT_FALSE(oracle.Violations({}).empty());  // still must be present

  oracle.IndeterminateRemove("t1");
  EXPECT_TRUE(oracle.Violations({}).empty());
  EXPECT_TRUE(oracle.Violations({{"t1", Digest(v2)}}).empty());
}

TEST_F(ChaosExplorerTest, OracleDefinitiveRejectionsLeaveStateUnchanged) {
  EXPECT_TRUE(WorkloadOracle::DefinitelyNotApplied(
      Status::NotFound("no such table")));
  EXPECT_TRUE(WorkloadOracle::DefinitelyNotApplied(
      Status::AlreadyExists("duplicate")));
  EXPECT_TRUE(WorkloadOracle::DefinitelyNotApplied(
      Status::InvalidArgument("bad name")));
  EXPECT_FALSE(WorkloadOracle::DefinitelyNotApplied(
      Status::Unavailable("quorum lost")));
  EXPECT_FALSE(
      WorkloadOracle::DefinitelyNotApplied(Status::IoError("disk")));
}

TEST_F(ChaosExplorerTest, OraclePresentNamesTracksOnlyMustPresent) {
  WorkloadOracle oracle;
  oracle.AckAdd(Tbl("sure", 1));
  oracle.IndeterminateAdd(Tbl("maybe", 2));
  EXPECT_EQ(oracle.PresentNames(),
            std::vector<std::string>{"sure"});
  const auto possible = oracle.PossiblyPresentNames();
  EXPECT_EQ(possible, (std::vector<std::string>{"maybe", "sure"}));
}

// ------------------------------------------------------------------ plan

TEST_F(ChaosExplorerTest, PlanSerializeParseRoundTripsByteIdentically) {
  const ChaosPlan plan = MakePlan(42, PlanShape{});
  const std::string text = plan.Serialize();
  Result<ChaosPlan> parsed = ChaosPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == plan);
  EXPECT_EQ(parsed.value().Serialize(), text);
}

TEST_F(ChaosExplorerTest, PlanParseSkipsLeadingComments) {
  // Repro files carry "# violation: ..." headers above the format line.
  const ChaosPlan plan = MakePlan(7, PlanShape{});
  const std::string annotated =
      "# chaos repro: seed 7\n# violation: something\n" + plan.Serialize();
  Result<ChaosPlan> parsed = ChaosPlan::Parse(annotated);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == plan);
}

TEST_F(ChaosExplorerTest, MakePlanIsDeterministicAndSeedSensitive) {
  PlanShape shape;
  shape.num_ops = 30;
  EXPECT_EQ(MakePlan(5, shape).Serialize(), MakePlan(5, shape).Serialize());
  EXPECT_NE(MakePlan(5, shape).Serialize(), MakePlan(6, shape).Serialize());
}

TEST_F(ChaosExplorerTest, MakePlanDrawsFaultsFromTheCatalogOnly) {
  const std::vector<std::string> catalog = RegisterFailpointCatalog(3, 3);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosPlan plan = MakePlan(seed, PlanShape{});
    for (const FaultEvent& f : plan.faults) {
      EXPECT_TRUE(std::find(catalog.begin(), catalog.end(), f.failpoint) !=
                  catalog.end())
          << "seed " << seed << " armed unknown site " << f.failpoint;
    }
  }
}

// ------------------------------------------------------------- workload

TEST_F(ChaosExplorerTest, SameSeedSameVerdictTwiceAndCleanOnFixedTree) {
  // A real end-to-end run, small enough for a unit suite: same plan twice
  // must execute the same number of ops and reach the same verdict, and
  // on the current tree the verdict must be "no violations".
  PlanShape shape;
  shape.num_ops = 14;
  shape.max_faults = 2;
  const ChaosPlan plan = MakePlan(3, shape);

  RunOptions run;
  run.scratch_dir = Scratch("verdict_a");
  const ChaosReport first = RunChaos(plan, run);
  run.scratch_dir = Scratch("verdict_b");
  const ChaosReport second = RunChaos(plan, run);

  EXPECT_TRUE(first.ok) << (first.violations.empty()
                                ? "?"
                                : first.violations[0]);
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_EQ(first.ops_executed, second.ops_executed);
  EXPECT_EQ(first.faults_armed, second.faults_armed);
  EXPECT_EQ(first.crashes, second.crashes);
}

TEST_F(ChaosExplorerTest, SweepOfAFewSeedsIsCleanAndWritesNoRepros) {
  SweepOptions sweep;
  sweep.first_seed = 1;
  sweep.num_seeds = 2;
  sweep.shape.num_ops = 12;
  sweep.shape.max_faults = 2;
  sweep.run.scratch_dir = Scratch("sweep");
  sweep.out_dir = Scratch("sweep_out");
  const SweepReport report = SweepSeeds(sweep);
  EXPECT_EQ(report.seeds_run, 2u);
  EXPECT_EQ(report.seeds_failed, 0u)
      << (report.failures.empty() ? "?" : report.failures[0].violations[0]);
  EXPECT_TRUE(report.failures.empty());
}

}  // namespace
}  // namespace lake::chaos
