#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/recovery.h"
#include "store/snapshot.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace lake::store {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_store_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class FailpointFixture : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }
};

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / Castagnoli reference vector.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (iSCSI test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t a = Crc32cExtend(0, data.data(), split);
    const uint32_t b =
        Crc32cExtend(a, data.data() + split, data.size() - split);
    EXPECT_EQ(b, Crc32c(data)) << "split=" << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  const std::string data = "snapshot payload bytes";
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string corrupt = data;
    corrupt[i] ^= 1;
    EXPECT_NE(Crc32c(corrupt), clean) << "offset " << i;
  }
}

// ------------------------------------------------------------- failpoints

TEST_F(FailpointFixture, FiresOnceOnScheduledHit) {
  auto& registry = FailpointRegistry::Instance();
  registry.Arm("test.fp", FaultSpec{FaultSpec::Kind::kError, /*after_hits=*/2});
  EXPECT_FALSE(registry.Hit("test.fp").has_value());  // hit 1
  EXPECT_FALSE(registry.Hit("test.fp").has_value());  // hit 2
  auto fired = registry.Hit("test.fp");               // hit 3 fires
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->kind, FaultSpec::Kind::kError);
  // One-shot: disarmed after firing.
  EXPECT_FALSE(registry.Hit("test.fp").has_value());
  EXPECT_EQ(registry.hits("test.fp"), 4u);
}

TEST_F(FailpointFixture, ScopedFailpointDisarms) {
  {
    ScopedFailpoint scoped("test.scoped", FaultSpec{});
  }
  EXPECT_FALSE(FailpointHit("test.scoped").has_value());
}

TEST_F(FailpointFixture, TornWriteKeepsPrefixThenKillsSink) {
  ScopedFailpoint scoped(
      "test.torn", FaultSpec{FaultSpec::Kind::kTornWrite, 0, /*arg=*/5});
  std::ostringstream real;
  FaultInjectingOStream out(&real, "test.torn");
  out.write("0123456789", 10);
  EXPECT_FALSE(out.good());
  out.clear();
  out.write("more", 4);  // sink stays dead after the tear
  EXPECT_FALSE(out.good());
  EXPECT_EQ(real.str(), "01234");
}

TEST_F(FailpointFixture, ShortReadTruncatesStream) {
  ScopedFailpoint scoped(
      "test.short", FaultSpec{FaultSpec::Kind::kShortRead, 0, /*arg=*/3});
  std::istringstream real("0123456789");
  FaultInjectingIStream in(&real, "test.short");
  char buf[10] = {};
  in.read(buf, 10);
  EXPECT_EQ(in.gcount(), 3);
  EXPECT_FALSE(in.good());
}

TEST_F(FailpointFixture, BitFlipAtOffset) {
  ScopedFailpoint scoped(
      "test.flip", FaultSpec{FaultSpec::Kind::kBitFlip, 0, /*arg=*/4});
  std::istringstream real("0123456789");
  FaultInjectingIStream in(&real, "test.flip");
  char buf[10] = {};
  in.read(buf, 10);
  EXPECT_EQ(in.gcount(), 10);
  EXPECT_EQ(buf[4], '4' ^ 1);
  EXPECT_EQ(buf[3], '3');
  EXPECT_EQ(buf[5], '5');
}

// --------------------------------------------------------------- envelope

TEST(SnapshotEnvelopeTest, RoundTrip) {
  SnapshotWriter writer;
  writer.AddSection("alpha", "payload one");
  writer.AddSection("beta", std::string(1000, 'x'));
  ASSERT_TRUE(writer
                  .AddSection("gamma",
                              [](BinaryWriter* w) {
                                w->WriteVarint(42);
                                w->WriteString("nested");
                                return Status::OK();
                              })
                  .ok());

  auto reader = SnapshotReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->framing_status().ok());
  ASSERT_EQ(reader->sections().size(), 3u);
  EXPECT_TRUE(reader->has_section("alpha"));
  EXPECT_FALSE(reader->has_section("delta"));

  auto alpha = reader->ReadSection("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(*alpha, "payload one");
  auto beta = reader->ReadSection("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta->size(), 1000u);
  auto gamma = reader->ReadSection("gamma");
  ASSERT_TRUE(gamma.ok());
  std::istringstream in(*gamma);
  BinaryReader r(&in);
  EXPECT_EQ(r.ReadVarint().value(), 42u);
  EXPECT_EQ(r.ReadString().value(), "nested");

  EXPECT_EQ(reader->ReadSection("delta").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotEnvelopeTest, EmptyEnvelopeRoundTrips) {
  SnapshotWriter writer;
  auto reader = SnapshotReader::Parse(writer.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->sections().empty());
}

TEST(SnapshotEnvelopeTest, PayloadCorruptionIsolatedToItsSection) {
  SnapshotWriter writer;
  writer.AddSection("good", "healthy payload");
  writer.AddSection("bad", "doomed payload");
  std::string bytes = writer.Serialize();

  // Flip one bit inside the second payload.
  const size_t pos = bytes.find("doomed");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 1;

  auto reader = SnapshotReader::Parse(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->framing_status().ok());  // framing is intact
  EXPECT_TRUE(reader->ReadSection("good").ok());
  const auto bad = reader->ReadSection("bad");
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotEnvelopeTest, FramingCorruptionLeavesEarlierSectionsReadable) {
  SnapshotWriter writer;
  writer.AddSection("first", "first payload");
  writer.AddSection("second", "second payload");
  writer.AddSection("third", "third payload");
  std::string bytes = writer.Serialize();

  // Corrupt the *name* of the second section: its framing CRC must catch
  // the lie, and the walk stops there.
  const size_t pos = bytes.find("second");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 1;

  auto reader = SnapshotReader::Parse(std::move(bytes));
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->framing_status().ok());
  ASSERT_EQ(reader->sections().size(), 1u);
  EXPECT_TRUE(reader->ReadSection("first").ok());
  EXPECT_FALSE(reader->ReadSection("third").ok());
}

TEST(SnapshotEnvelopeTest, BadMagicRejected) {
  SnapshotWriter writer;
  writer.AddSection("a", "b");
  std::string bytes = writer.Serialize();
  bytes[0] ^= 0xff;
  EXPECT_FALSE(SnapshotReader::Parse(std::move(bytes)).ok());
}

// --------------------------------------------------------- atomic commits

TEST_F(FailpointFixture, AtomicWriteSurvivesProcessView) {
  const std::string dir = TestDir("atomic");
  const std::string path = dir + "/file.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "version one").ok());
  EXPECT_EQ(ReadFileBytes(path), "version one");
  ASSERT_TRUE(AtomicWriteFile(path, "version two").ok());
  EXPECT_EQ(ReadFileBytes(path), "version two");
}

TEST_F(FailpointFixture, TornWriteLeavesOldFileIntact) {
  const std::string dir = TestDir("torn");
  const std::string path = dir + "/file.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "committed").ok());

  ScopedFailpoint scoped(
      "atomic_write.write",
      FaultSpec{FaultSpec::Kind::kTornWrite, 0, /*arg=*/4});
  EXPECT_FALSE(AtomicWriteFile(path, "replacement bytes").ok());
  // The visible file is untouched; only the temp file is torn.
  EXPECT_EQ(ReadFileBytes(path), "committed");
}

TEST_F(FailpointFixture, FsyncAndRenameFailuresKeepOldFile) {
  const std::string dir = TestDir("fsync");
  const std::string path = dir + "/file.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "committed").ok());
  {
    ScopedFailpoint scoped("atomic_write.fsync", FaultSpec{});
    EXPECT_FALSE(AtomicWriteFile(path, "next").ok());
    EXPECT_EQ(ReadFileBytes(path), "committed");
  }
  {
    ScopedFailpoint scoped("atomic_write.rename", FaultSpec{});
    EXPECT_FALSE(AtomicWriteFile(path, "next").ok());
    EXPECT_EQ(ReadFileBytes(path), "committed");
  }
}

// ------------------------------------------------------------------ store

SnapshotWriter MakeSnapshot(const std::string& tag) {
  SnapshotWriter writer;
  writer.AddSection("data", "payload " + tag);
  return writer;
}

TEST(SnapshotStoreTest, CommitAndOpenLatest) {
  SnapshotStore store(TestDir("store_basic"));
  auto gen1 = store.Commit(MakeSnapshot("one"));
  ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();
  EXPECT_EQ(*gen1, 1u);

  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 1u);
  EXPECT_EQ(opened->reader.ReadSection("data").value(), "payload one");

  auto gen2 = store.Commit(MakeSnapshot("two"));
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ(*gen2, 2u);
  opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 2u);
  EXPECT_EQ(opened->reader.ReadSection("data").value(), "payload two");
}

TEST(SnapshotStoreTest, PrunesBeyondKeepGenerations) {
  const std::string dir = TestDir("store_prune");
  SnapshotStore::Options options;
  options.keep_generations = 2;
  SnapshotStore store(dir, options);
  ASSERT_TRUE(store.Commit(MakeSnapshot("one")).ok());
  ASSERT_TRUE(store.Commit(MakeSnapshot("two")).ok());
  ASSERT_TRUE(store.Commit(MakeSnapshot("three")).ok());

  EXPECT_EQ(store.Generations(), (std::vector<uint64_t>{2, 3}));
  EXPECT_FALSE(fs::exists(dir + "/" + SnapshotStore::SnapshotFileName(1)));
  EXPECT_TRUE(store.OpenGeneration(2).ok());
  EXPECT_TRUE(store.OpenGeneration(3).ok());
}

TEST(SnapshotStoreTest, MissingManifestFallsBackToDirectoryScan) {
  const std::string dir = TestDir("store_scan");
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Commit(MakeSnapshot("one")).ok());
  ASSERT_TRUE(store.Commit(MakeSnapshot("two")).ok());
  fs::remove(dir + "/MANIFEST");

  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 2u);
  // And the next commit does not reuse generation numbers.
  auto gen = store.Commit(MakeSnapshot("three"));
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(*gen, 3u);
}

TEST(SnapshotStoreTest, CorruptNewestFallsBackToPreviousGeneration) {
  const std::string dir = TestDir("store_fallback");
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Commit(MakeSnapshot("one")).ok());
  ASSERT_TRUE(store.Commit(MakeSnapshot("two")).ok());

  // Stomp the newest envelope's header so it no longer parses at all.
  const std::string newest = dir + "/" + SnapshotStore::SnapshotFileName(2);
  std::string bytes = ReadFileBytes(newest);
  bytes[0] ^= 0xff;
  WriteFileBytes(newest, bytes);

  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 1u);
  EXPECT_EQ(opened->reader.ReadSection("data").value(), "payload one");
}

class SnapshotStoreFailpointTest : public FailpointFixture {};

TEST_F(SnapshotStoreFailpointTest, TornEnvelopeWriteKeepsPreviousCurrent) {
  const std::string dir = TestDir("store_torn");
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Commit(MakeSnapshot("one")).ok());

  ScopedFailpoint scoped(
      "store.snap.write", FaultSpec{FaultSpec::Kind::kTornWrite, 0, 8});
  EXPECT_FALSE(store.Commit(MakeSnapshot("two")).ok());

  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 1u);
  EXPECT_EQ(opened->reader.ReadSection("data").value(), "payload one");
}

TEST_F(SnapshotStoreFailpointTest, ManifestCommitFailureRollsBackEnvelope) {
  const std::string dir = TestDir("store_manifest");
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Commit(MakeSnapshot("one")).ok());

  ScopedFailpoint scoped("store.manifest.rename", FaultSpec{});
  EXPECT_FALSE(store.Commit(MakeSnapshot("two")).ok());

  // The uncommitted generation-2 envelope must not linger: state matches
  // the old MANIFEST.
  EXPECT_FALSE(fs::exists(dir + "/" + SnapshotStore::SnapshotFileName(2)));
  auto opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->generation, 1u);

  // Recovery after the "crash": the next commit succeeds with a fresh
  // generation number.
  auto gen = store.Commit(MakeSnapshot("three"));
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(store.OpenLatest()->reader.ReadSection("data").value(),
            "payload three");
}

// --------------------------------------------------------------- recovery

TEST(RecoveryManagerTest, LoadsEverySectionWhenHealthy) {
  SnapshotStore store(TestDir("rec_ok"));
  SnapshotWriter writer;
  writer.AddSection("a", "payload a");
  writer.AddSection("b", "payload b");
  ASSERT_TRUE(store.Commit(writer).ok());

  RecoveryManager recovery(&store);
  std::string got_a, got_b;
  recovery.Register("a", [&](const std::string& p) {
    got_a = p;
    return Status::OK();
  });
  recovery.Register("b", [&](const std::string& p) {
    got_b = p;
    return Status::OK();
  });
  EXPECT_TRUE(recovery.RecoverAll().ok());
  EXPECT_EQ(got_a, "payload a");
  EXPECT_EQ(got_b, "payload b");
  EXPECT_FALSE(recovery.degraded());
  EXPECT_TRUE(recovery.quarantined().empty());
  EXPECT_EQ(recovery.sections_loaded(), 2u);
  EXPECT_EQ(recovery.recovered_generation(), 1u);
}

TEST(RecoveryManagerTest, CorruptSectionFallsBackToOlderGeneration) {
  const std::string dir = TestDir("rec_fallback");
  SnapshotStore store(dir);
  SnapshotWriter writer;
  writer.AddSection("idx", "generation-one bytes");
  ASSERT_TRUE(store.Commit(writer).ok());
  SnapshotWriter writer2;
  writer2.AddSection("idx", "generation-two bytes");
  ASSERT_TRUE(store.Commit(writer2).ok());

  // Corrupt the section payload in the NEWEST generation only.
  const std::string newest = dir + "/" + SnapshotStore::SnapshotFileName(2);
  std::string bytes = ReadFileBytes(newest);
  const size_t pos = bytes.find("generation-two");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 1;
  WriteFileBytes(newest, bytes);

  RecoveryManager recovery(&store);
  std::string got;
  recovery.Register("idx", [&](const std::string& p) {
    got = p;
    return Status::OK();
  });
  EXPECT_TRUE(recovery.RecoverAll().ok());
  EXPECT_EQ(got, "generation-one bytes");  // staleness, not an outage
  EXPECT_FALSE(recovery.degraded());
}

TEST(RecoveryManagerTest, QuarantineAndBackoffWithFakeClock) {
  const std::string dir = TestDir("rec_backoff");
  SnapshotStore store(dir);
  SnapshotWriter writer;
  writer.AddSection("idx", "index bytes");
  ASSERT_TRUE(store.Commit(writer).ok());

  // Corrupt the only copy.
  const std::string path = dir + "/" + SnapshotStore::SnapshotFileName(1);
  std::string bytes = ReadFileBytes(path);
  const size_t pos = bytes.find("index bytes");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 1;
  WriteFileBytes(path, bytes);

  uint64_t fake_now = 1000;
  RecoveryManager::Options options;
  options.backoff_initial_ms = 100;
  options.backoff_max_ms = 400;
  options.now_ms = [&fake_now] { return fake_now; };
  RecoveryManager recovery(&store, options);

  int attempts = 0;
  recovery.Register("idx", [&](const std::string&) {
    ++attempts;
    return Status::OK();
  });

  EXPECT_FALSE(recovery.RecoverAll().ok());
  EXPECT_TRUE(recovery.degraded());
  ASSERT_EQ(recovery.quarantined().size(), 1u);
  EXPECT_EQ(recovery.quarantined()[0].section, "idx");
  EXPECT_EQ(recovery.quarantined()[0].attempts, 1u);
  EXPECT_EQ(recovery.quarantined()[0].next_retry_ms, 1100u);
  EXPECT_EQ(attempts, 0);  // CRC failed before the loader ran

  // Before the backoff expires nothing is retried.
  EXPECT_EQ(recovery.RetryQuarantined(), 0u);

  // Expired: retried, still corrupt, backoff doubles.
  fake_now = 1100;
  EXPECT_EQ(recovery.RetryQuarantined(), 0u);
  ASSERT_EQ(recovery.quarantined().size(), 1u);
  EXPECT_EQ(recovery.quarantined()[0].attempts, 2u);
  EXPECT_EQ(recovery.quarantined()[0].next_retry_ms, 1100u + 200u);

  // Backoff is capped.
  fake_now = 10000;
  EXPECT_EQ(recovery.RetryQuarantined(), 0u);
  EXPECT_EQ(recovery.quarantined()[0].next_retry_ms, 10000u + 400u);

  // Repair the snapshot (a fresh commit), advance past the backoff, and
  // the section recovers.
  SnapshotWriter repaired;
  repaired.AddSection("idx", "index bytes");
  ASSERT_TRUE(store.Commit(repaired).ok());
  fake_now = 20000;
  EXPECT_EQ(recovery.RetryQuarantined(), 1u);
  EXPECT_EQ(attempts, 1);
  EXPECT_FALSE(recovery.degraded());
  EXPECT_TRUE(recovery.quarantined().empty());
  EXPECT_GE(recovery.retry_attempts(), 3u);
}

TEST(RecoveryManagerTest, LoaderRejectionQuarantines) {
  SnapshotStore store(TestDir("rec_reject"));
  SnapshotWriter writer;
  writer.AddSection("idx", "valid bytes, wrong content");
  ASSERT_TRUE(store.Commit(writer).ok());

  RecoveryManager recovery(&store);
  recovery.Register("idx", [](const std::string&) {
    return Status::IoError("loader rejects payload");
  });
  const Status status = recovery.RecoverAll();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(recovery.degraded());
  ASSERT_EQ(recovery.quarantined().size(), 1u);
  EXPECT_NE(recovery.quarantined()[0].status.message().find("rejects"),
            std::string::npos);
}

TEST(RecoveryManagerTest, EmptyStoreQuarantinesAllSections) {
  SnapshotStore store(TestDir("rec_empty"));
  RecoveryManager recovery(&store);
  recovery.Register("idx", [](const std::string&) { return Status::OK(); });
  EXPECT_FALSE(recovery.RecoverAll().ok());
  EXPECT_TRUE(recovery.degraded());
}

}  // namespace
}  // namespace lake::store
