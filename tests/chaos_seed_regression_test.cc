// Replays every pinned chaos schedule in tests/data/chaos_seeds/ and
// requires a clean verdict. Each .plan file is a minimized repro of a
// real bug the explorer found (the bug is named in the file's comment
// header); a regression resurfacing re-fails the exact schedule that
// caught it. To pin a new one: shrink with tools/chaos_explorer, fix the
// bug, and copy the emitted repro file here — it must replay green on
// the fixed tree before it lands.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/plan.h"
#include "chaos/workload.h"
#include "util/failpoint.h"

namespace lake::chaos {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> PinnedPlans() {
  std::vector<std::string> out;
  const fs::path dir = fs::path(LAKE_TEST_DATA_DIR) / "chaos_seeds";
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".plan") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ChaosSeedRegressionTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }
};

TEST_F(ChaosSeedRegressionTest, CorpusIsNotEmpty) {
  EXPECT_GE(PinnedPlans().size(), 3u);
}

TEST_F(ChaosSeedRegressionTest, EveryPinnedScheduleReplaysClean) {
  const fs::path scratch =
      fs::temp_directory_path() /
      ("chaos_seed_regression_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  for (const std::string& path : PinnedPlans()) {
    SCOPED_TRACE(path);
    Result<ChaosPlan> plan = ChaosPlan::Load(path);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    RunOptions run;
    run.scratch_dir =
        (scratch / fs::path(path).stem().string()).string();
    const ChaosReport report = RunChaos(plan.value(), run);
    EXPECT_TRUE(report.ok);
    for (const std::string& v : report.violations) {
      ADD_FAILURE() << "pinned schedule violated: " << v;
    }
    EXPECT_GT(report.ops_executed, 0u);
  }
  fs::remove_all(scratch);
}

}  // namespace
}  // namespace lake::chaos
