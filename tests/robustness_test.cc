#include <gtest/gtest.h>

#include "lakegen/generator.h"
#include "nav/linkage_graph.h"
#include "nav/organization.h"
#include "search/discovery_engine.h"
#include "table/csv.h"
#include "util/logging.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) {
    c.Append(v.empty() ? Value::Null() : Value(v));
  }
  return c;
}

// --- Degenerate lakes --------------------------------------------------

TEST(RobustnessTest, EmptyCatalogEngineAnswersEmptily) {
  DataLakeCatalog catalog;
  DiscoveryEngine engine(&catalog);
  EXPECT_TRUE(engine.Keyword("anything", 5).empty());
  EXPECT_TRUE(
      engine.Joinable({"x", "y"}, JoinMethod::kExactJaccard, 5)->empty());
  EXPECT_TRUE(engine.Joinable({"x"}, JoinMethod::kJosie, 5)->empty());
  Table query("q");
  LAKE_CHECK(query.AddColumn(MakeColumn("c", {"a", "b"})).ok());
  EXPECT_TRUE(engine.Unionable(query, UnionMethod::kTus, 5)->empty());
  EXPECT_TRUE(engine.Unionable(query, UnionMethod::kSantos, 5)->empty());
  EXPECT_TRUE(engine.Unionable(query, UnionMethod::kStarmie, 5)->empty());
  EXPECT_TRUE(engine.Unionable(query, UnionMethod::kD3l, 5)->empty());
  EXPECT_FALSE(engine.annotator_ready());  // nothing to learn from
}

TEST(RobustnessTest, AllNullAndEmptyColumns) {
  DataLakeCatalog catalog;
  Table t("weird");
  LAKE_CHECK(t.AddColumn(MakeColumn("nulls", {"", "", ""})).ok());
  LAKE_CHECK(t.AddColumn(MakeColumn("vals", {"a", "b", "c"})).ok());
  LAKE_CHECK(catalog.AddTable(std::move(t)).ok());
  Table empty("empty");  // zero columns
  LAKE_CHECK(catalog.AddTable(std::move(empty)).ok());

  DiscoveryEngine engine(&catalog);
  const auto results =
      engine.Joinable({"a", "b"}, JoinMethod::kExactContainment, 5).value();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].column.column_index, 1u);
}

TEST(RobustnessTest, SingleRowTables) {
  DataLakeCatalog catalog;
  for (int i = 0; i < 3; ++i) {
    Table t("single" + std::to_string(i));
    LAKE_CHECK(t.AddColumn(MakeColumn("c", {"only" + std::to_string(i)}))
                   .ok());
    LAKE_CHECK(catalog.AddTable(std::move(t)).ok());
  }
  DiscoveryEngine engine(&catalog);
  // No crash, and the minimum-distinct filters simply exclude everything.
  EXPECT_TRUE(
      engine.Joinable({"only0"}, JoinMethod::kExactJaccard, 5)->empty());
}

// --- Byte-level robustness ----------------------------------------------

TEST(RobustnessTest, Utf8ValuesPassThrough) {
  // Multi-byte UTF-8 is treated as opaque bytes: no mangling anywhere in
  // CSV round trips or search.
  const std::string csv =
      "stadt,fluss\nM\xC3\xBCnchen,Isar\nK\xC3\xB6ln,Rhein\n";
  auto t = ReadCsvString(csv, "de");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).cell(0).as_string(), "M\xC3\xBCnchen");
  auto round = ReadCsvString(WriteCsvString(*t), "de2");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->column(0).cell(0).as_string(), "M\xC3\xBCnchen");

  DataLakeCatalog catalog;
  LAKE_CHECK(catalog.AddTable(std::move(t).value()).ok());
  DiscoveryEngine engine(&catalog);
  const auto hits =
      engine.Joinable({"M\xC3\xBCnchen", "K\xC3\xB6ln"},
                      JoinMethod::kExactJaccard, 3).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

TEST(RobustnessTest, VeryWideTable) {
  DataLakeCatalog catalog;
  Table wide("wide");
  for (int c = 0; c < 100; ++c) {
    LAKE_CHECK(wide.AddColumn(MakeColumn(
        "col" + std::to_string(c),
        {"w" + std::to_string(c) + "a", "w" + std::to_string(c) + "b"}))
                   .ok());
  }
  LAKE_CHECK(catalog.AddTable(std::move(wide)).ok());
  Table narrow("narrow");
  LAKE_CHECK(narrow.AddColumn(MakeColumn("col5", {"w5a", "w5b"})).ok());
  LAKE_CHECK(catalog.AddTable(std::move(narrow)).ok());

  DiscoveryEngine engine(&catalog);
  // Bipartite aggregation over a 100-column candidate must not blow up.
  // The wide table contains an identical col5, so it legitimately ties the
  // narrow table's self-match at score 1.0.
  const auto results =
      engine.Unionable(catalog.table(1), UnionMethod::kTus, 2).value();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-9);
  EXPECT_NEAR(results[1].score, 1.0, 1e-9);
}

TEST(RobustnessTest, DuplicateValuesEverywhere) {
  DataLakeCatalog catalog;
  Table t("dups");
  LAKE_CHECK(t.AddColumn(MakeColumn(
      "c", {"same", "same", "same", "same", "other"})).ok());
  LAKE_CHECK(catalog.AddTable(std::move(t)).ok());
  DiscoveryEngine engine(&catalog);
  const auto hits =
      engine.Joinable({"same", "other"}, JoinMethod::kJosie, 2).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].score, 2.0);  // set semantics: overlap 2
}

// --- Navigation edge cases ---------------------------------------------

TEST(RobustnessTest, OrganizationOfOneTable) {
  DataLakeCatalog catalog;
  Table t("only");
  LAKE_CHECK(t.AddColumn(MakeColumn("c", {"a", "b"})).ok());
  LAKE_CHECK(catalog.AddTable(std::move(t)).ok());
  WordEmbedding words;
  ColumnEncoder cols(&words);
  TableEncoder enc(&cols, &words);
  LakeOrganization org(&catalog, &enc);
  EXPECT_EQ(org.num_leaves(), 1u);
  const auto path = org.Navigate(enc.Encode(catalog.table(0)));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(org.nodes()[path.back()].table, 0);
}

TEST(RobustnessTest, LinkageGraphSelfTableEdgesExcluded) {
  // Two identical columns inside ONE table must not link to each other.
  DataLakeCatalog catalog;
  Table t("self");
  LAKE_CHECK(t.AddColumn(MakeColumn("a", {"x", "y", "z"})).ok());
  LAKE_CHECK(t.AddColumn(MakeColumn("b", {"x", "y", "z"})).ok());
  LAKE_CHECK(catalog.AddTable(std::move(t)).ok());
  LinkageGraph graph(&catalog);
  EXPECT_EQ(graph.num_links(), 0u);
}

// --- Generator stress -----------------------------------------------------

TEST(RobustnessTest, GeneratorSurvivesSmallAlphabetRequest) {
  // values_per_domain larger than the default alphabet can spell: the
  // generator must grow the alphabet instead of looping forever (this was
  // a real hang before the capacity guard).
  GeneratorOptions opts;
  opts.seed = 77;
  opts.num_domains = 3;
  opts.num_templates = 2;
  opts.tables_per_template = 2;
  opts.syllables_per_domain = 2;   // capacity 12 « 300 requested
  opts.values_per_domain = 300;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  EXPECT_EQ(lake.catalog.num_tables(), 4u);
}

}  // namespace
}  // namespace lake
