// Unit and integration tests for the sampling-based approximate discovery
// tier (src/approx): estimator intervals, adaptive verification with exact
// fallback, top-k search against the brute-force oracle, sample-quality
// checks, and the serving-layer plumbing (approx_ok routing, cache keying,
// approx.* metrics, brownout interplay, live and cluster modes).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "approx/approx_search.h"
#include "approx/estimator.h"
#include "approx/oracle.h"
#include "approx/quality.h"
#include "approx/verifier.h"
#include "cluster/cluster_engine.h"
#include "ingest/live_engine.h"
#include "lakegen/benchmark_lakes.h"
#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"

namespace lake {
namespace {

using approx::AdaptiveVerifier;
using approx::ApproxEstimator;
using approx::ApproxJoinSearch;
using approx::ApproxQueryStats;
using approx::DiscoveryOracle;
using approx::IntervalEstimate;
using approx::Verdict;

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

std::vector<std::string> Values(size_t begin, size_t end,
                                const std::string& prefix = "v") {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) {
    out.push_back(prefix + std::to_string(i));
  }
  return out;
}

DataLakeCatalog OneColumnLake(
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        tables) {
  DataLakeCatalog cat;
  for (const auto& [name, vals] : tables) {
    Table t(name);
    LAKE_CHECK(t.AddColumn(MakeColumn("key", vals)).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  }
  return cat;
}

/// Skewed-sets lake whose largest columns dwarf the sample width, so the
/// estimator genuinely samples instead of degenerating to exact.
DataLakeCatalog SkewedLake(SkewedSetsWorkload* workload) {
  SkewedSetsOptions opts;
  opts.seed = 29;
  opts.num_sets = 120;
  opts.min_set_size = 16;
  opts.max_set_size = 4096;
  opts.num_queries = 6;
  opts.query_size = 128;
  opts.universe_size = 30000;
  *workload = MakeSkewedSetsWorkload(opts);
  DataLakeCatalog cat;
  for (size_t s = 0; s < workload->sets.size(); ++s) {
    Table t("set" + std::to_string(s));
    LAKE_CHECK(t.AddColumn(MakeColumn("values", workload->sets[s])).ok());
    LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  }
  return cat;
}

// --- Hoeffding bound ------------------------------------------------------

TEST(HoeffdingTest, HalfWidthMatchesClosedFormAndShrinks) {
  // sqrt(ln(2/0.05) / (2 * 100)) = sqrt(ln(40) / 200)
  EXPECT_NEAR(approx::HoeffdingHalfWidth(100, 0.05),
              std::sqrt(std::log(40.0) / 200.0), 1e-12);
  EXPECT_EQ(approx::HoeffdingHalfWidth(0, 0.05), 1.0);
  double prev = 1.0;
  for (size_t trials : {16, 64, 256, 1024}) {
    const double hw = approx::HoeffdingHalfWidth(trials, 0.1);
    EXPECT_LT(hw, prev);
    prev = hw;
  }
  // Tighter confidence (smaller delta) costs width.
  EXPECT_GT(approx::HoeffdingHalfWidth(100, 0.01),
            approx::HoeffdingHalfWidth(100, 0.1));
}

// --- ApproxEstimator ------------------------------------------------------

TEST(ApproxEstimatorTest, SmallColumnsDegenerateToExact) {
  DataLakeCatalog cat = OneColumnLake({
      {"full", Values(0, 50)},
      {"half", Values(25, 75)},
      {"disjoint", Values(100, 150)},
  });
  ApproxEstimator est(&cat);  // max_sample 1024 >> 50: samples are exhaustive
  ASSERT_EQ(est.num_indexed_columns(), 3u);
  const HashedSet query = est.QuerySet(Values(0, 50));
  for (size_t i = 0; i < 3; ++i) {
    const IntervalEstimate e = est.EstimateContainment(query, i, 1024, 0.05);
    EXPECT_TRUE(e.exact);
    EXPECT_EQ(e.lo, e.hi);
    EXPECT_EQ(e.point, est.ExactContainment(query, i));
  }
}

TEST(ApproxEstimatorTest, IntervalCoversTruthOnLargeColumn) {
  // 8000 distinct values, half shared with the query's 400: containment of
  // the query is 1.0 for "super" and ~0 for "far".
  std::vector<std::string> big = Values(0, 8000);
  DataLakeCatalog cat = OneColumnLake({
      {"super", big},
      {"far", Values(20000, 28000)},
  });
  ApproxEstimator::Options opts;
  opts.max_sample = 256;
  ApproxEstimator est(&cat, opts);
  const HashedSet query = est.QuerySet(Values(0, 400));
  const IntervalEstimate sup = est.EstimateContainment(query, 0, 256, 0.05);
  EXPECT_FALSE(sup.exact);
  EXPECT_GT(sup.trials, 0u);
  EXPECT_LE(sup.lo, 1.0);
  EXPECT_EQ(sup.hi, 1.0);  // every sampled trial matches
  EXPECT_GE(sup.point, 0.99);

  const IntervalEstimate far = est.EstimateContainment(query, 1, 256, 0.05);
  EXPECT_EQ(far.point, 0.0);
  EXPECT_LE(far.lo, 0.0);
  EXPECT_LT(far.hi, 1.0);
}

TEST(ApproxEstimatorTest, DoublingTheSampleTightensTheInterval) {
  DataLakeCatalog cat = OneColumnLake({{"big", Values(0, 10000)}});
  ApproxEstimator::Options opts;
  opts.max_sample = 1024;
  ApproxEstimator est(&cat, opts);
  const HashedSet query = est.QuerySet(Values(5000, 6000));
  double prev_width = 2.0;
  size_t prev_trials = 0;
  for (size_t s : {64, 128, 256, 512, 1024}) {
    const IntervalEstimate e = est.EstimateContainment(query, 0, s, 0.05);
    EXPECT_GE(e.trials, prev_trials);
    EXPECT_LT(e.width(), prev_width);
    prev_width = e.width();
    prev_trials = e.trials;
  }
}

TEST(ApproxEstimatorTest, DeterministicAcrossRebuilds) {
  SkewedSetsWorkload w;
  DataLakeCatalog cat = SkewedLake(&w);
  ApproxEstimator::Options opts;
  opts.max_sample = 128;
  ApproxEstimator a(&cat, opts);
  ApproxEstimator b(&cat, opts);
  EXPECT_EQ(a.hash_seed(), b.hash_seed());
  const HashedSet qa = a.QuerySet(w.queries[0]);
  const HashedSet qb = b.QuerySet(w.queries[0]);
  for (size_t i = 0; i < a.num_indexed_columns(); ++i) {
    const IntervalEstimate ea = a.EstimateContainment(qa, i, 64, 0.1);
    const IntervalEstimate eb = b.EstimateContainment(qb, i, 64, 0.1);
    EXPECT_EQ(ea.point, eb.point);
    EXPECT_EQ(ea.lo, eb.lo);
    EXPECT_EQ(ea.hi, eb.hi);
    EXPECT_EQ(ea.trials, eb.trials);
  }
}

TEST(ApproxEstimatorTest, EmptyQueryIsExactZero) {
  DataLakeCatalog cat = OneColumnLake({{"t", Values(0, 100)}});
  ApproxEstimator est(&cat);
  const HashedSet query = est.QuerySet({});
  const IntervalEstimate e = est.EstimateContainment(query, 0, 64, 0.1);
  EXPECT_TRUE(e.exact);
  EXPECT_EQ(e.point, 0.0);
}

// --- AdaptiveVerifier -----------------------------------------------------

TEST(AdaptiveVerifierTest, ClearMarginDecidesByIntervalAlone) {
  DataLakeCatalog cat = OneColumnLake({{"super", Values(0, 8000)}});
  ApproxEstimator::Options eopts;
  eopts.max_sample = 1024;
  ApproxEstimator est(&cat, eopts);
  AdaptiveVerifier verifier(&est);
  const HashedSet query = est.QuerySet(Values(0, 400));  // containment 1.0
  ApproxQueryStats stats;
  const Verdict v =
      verifier.VerifyContainment(query, 0, 0.3, &stats).value();
  EXPECT_TRUE(v.accepted);
  EXPECT_FALSE(v.exact);
  EXPECT_EQ(stats.exact_fallbacks, 0u);
  EXPECT_EQ(stats.interval_decisions, 1u);
  EXPECT_GT(stats.estimates, 0u);
}

TEST(AdaptiveVerifierTest, StraddlingIntervalFallsBackToExact) {
  // Containment is exactly 0.5; a threshold of 0.5 sits inside every
  // nondegenerate interval, so only exact verification can settle it.
  std::vector<std::string> column = Values(0, 4000);
  std::vector<std::string> query = Values(2000, 6000);  // half inside
  DataLakeCatalog cat = OneColumnLake({{"half", column}});
  ApproxEstimator::Options eopts;
  eopts.max_sample = 512;
  ApproxEstimator est(&cat, eopts);
  AdaptiveVerifier::Options vopts;
  vopts.min_sample = 64;
  vopts.max_sample = 512;
  AdaptiveVerifier verifier(&est, vopts);
  ApproxQueryStats stats;
  const Verdict v =
      verifier.VerifyContainment(est.QuerySet(query), 0, 0.5, &stats)
          .value();
  EXPECT_TRUE(v.exact);
  EXPECT_EQ(v.estimate.lo, v.estimate.hi);
  EXPECT_EQ(v.estimate.point, 0.5);
  EXPECT_TRUE(v.accepted);  // 0.5 >= 0.5
  EXPECT_EQ(stats.exact_fallbacks, 1u);
  EXPECT_GT(stats.rounds, 1u);  // the sample doubled before giving up
}

TEST(AdaptiveVerifierTest, VerdictsMatchOracleAcrossThresholds) {
  SkewedSetsWorkload w;
  DataLakeCatalog cat = SkewedLake(&w);
  ApproxEstimator::Options eopts;
  eopts.max_sample = 256;
  ApproxEstimator est(&cat, eopts);
  AdaptiveVerifier verifier(&est);
  DiscoveryOracle oracle(&cat);
  // Map estimator column order onto oracle truth by ColumnRef.
  for (double threshold : {0.25, 0.5, 0.75}) {
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const HashedSet query = est.QuerySet(w.queries[q]);
      for (size_t i = 0; i < est.num_indexed_columns(); ++i) {
        const Verdict v =
            verifier.VerifyContainment(query, i, threshold).value();
        const double truth =
            oracle.ContainmentOf(w.queries[q],
                                 i);  // same eligibility order
        if (v.exact) {
          EXPECT_EQ(v.accepted, truth >= threshold);
        } else if (v.accepted) {
          // Interval-accepted: the lower bound cleared the threshold, so
          // with the advertised confidence the truth does too. These
          // deterministic seeds happen to be well inside the bound.
          EXPECT_GE(truth + 1e-9, threshold - v.estimate.width());
        }
      }
    }
  }
}

TEST(AdaptiveVerifierTest, FailpointsCoverBothPhases) {
  DataLakeCatalog cat = OneColumnLake({{"half", Values(0, 4000)}});
  ApproxEstimator::Options eopts;
  eopts.max_sample = 256;
  ApproxEstimator est(&cat, eopts);
  AdaptiveVerifier verifier(&est);
  const HashedSet query = est.QuerySet(Values(2000, 6000));

  {
    ScopedFailpoint scoped(
        "approx.sample",
        FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/0, 1.0});
    EXPECT_FALSE(verifier.VerifyContainment(query, 0, 0.5).ok());
  }
  {
    // Sampling proceeds; the exact fallback errors out.
    ScopedFailpoint scoped(
        "approx.verify",
        FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/0, 1.0});
    EXPECT_FALSE(verifier.VerifyContainment(query, 0, 0.5).ok());
  }
  // Unarmed: the same call succeeds.
  EXPECT_TRUE(verifier.VerifyContainment(query, 0, 0.5).ok());
}

// --- ApproxJoinSearch vs DiscoveryOracle ---------------------------------

TEST(ApproxJoinSearchTest, TopKRecallAgainstOracle) {
  SkewedSetsWorkload w;
  DataLakeCatalog cat = SkewedLake(&w);
  ApproxJoinSearch::Options opts;
  opts.estimator.max_sample = 256;
  opts.min_sample = 64;
  opts.max_sample = 256;
  ApproxJoinSearch search(&cat, opts);
  DiscoveryOracle oracle(&cat);
  const size_t k = 10;
  double recall_sum = 0;
  size_t recall_n = 0;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const std::vector<ColumnResult> approx_top =
        search.Search(w.queries[q], k).value();
    const std::vector<ColumnResult> exact_top =
        oracle.TopKByContainment(w.queries[q], k);
    if (exact_top.empty()) continue;
    std::set<TableId> got;
    for (const ColumnResult& r : approx_top) got.insert(r.column.table_id);
    size_t hit = 0;
    for (const ColumnResult& r : exact_top) {
      if (got.count(r.column.table_id)) ++hit;
    }
    recall_sum += static_cast<double>(hit) /
                  static_cast<double>(exact_top.size());
    ++recall_n;
  }
  ASSERT_GT(recall_n, 0u);
  EXPECT_GE(recall_sum / static_cast<double>(recall_n), 0.95);
}

TEST(ApproxJoinSearchTest, EveryAnswerCarriesIntervalOrExactTag) {
  SkewedSetsWorkload w;
  DataLakeCatalog cat = SkewedLake(&w);
  ApproxJoinSearch::Options opts;
  opts.estimator.max_sample = 128;
  opts.min_sample = 32;
  opts.max_sample = 128;
  ApproxJoinSearch search(&cat, opts);
  ApproxQueryStats stats;
  const std::vector<ColumnResult> results =
      search.Search(w.queries[0], 8, /*error_budget=*/0.1, &stats).value();
  ASSERT_FALSE(results.empty());
  for (const ColumnResult& r : results) {
    const bool interval = r.why.find("ci=[") != std::string::npos;
    const bool exact = r.why.find("(exact)") != std::string::npos;
    EXPECT_TRUE(interval || exact) << r.why;
  }
  EXPECT_GT(stats.estimates, 0u);
  EXPECT_GT(stats.decisions(), 0u);
}

TEST(ApproxJoinSearchTest, ThresholdSearchAgreesWithOracleAfterFallback) {
  SkewedSetsWorkload w;
  DataLakeCatalog cat = SkewedLake(&w);
  ApproxJoinSearch::Options opts;
  opts.estimator.max_sample = 256;
  ApproxJoinSearch search(&cat, opts);
  DiscoveryOracle oracle(&cat);
  const double threshold = 0.5;
  for (size_t q = 0; q < 3; ++q) {
    ApproxQueryStats stats;
    const std::vector<ColumnResult> accepted =
        search
            .SearchThreshold(w.queries[q], threshold, /*k=*/64,
                             /*error_budget=*/0.05, &stats)
            .value();
    // Exact-fallback verdicts are ground truth; interval verdicts hold at
    // 95% per decision. Check the exact ones strictly.
    for (const ColumnResult& r : accepted) {
      if (r.why.find("(exact)") == std::string::npos) continue;
      // Recover the oracle index for this table (one column per table).
      for (size_t i = 0; i < oracle.num_indexed_columns(); ++i) {
        if (oracle.indexed_columns()[i].table_id == r.column.table_id) {
          EXPECT_GE(oracle.ContainmentOf(w.queries[q], i), threshold);
        }
      }
    }
  }
}

TEST(ApproxJoinSearchTest, SearchIsDeterministic) {
  SkewedSetsWorkload w;
  DataLakeCatalog cat = SkewedLake(&w);
  ApproxJoinSearch a(&cat);
  ApproxJoinSearch b(&cat);
  for (size_t q = 0; q < 2; ++q) {
    const auto ra = a.Search(w.queries[q], 10).value();
    const auto rb = b.Search(w.queries[q], 10).value();
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].column, rb[i].column);
      EXPECT_EQ(ra[i].score, rb[i].score);
      EXPECT_EQ(ra[i].why, rb[i].why);
    }
  }
}

// --- DiscoveryOracle ------------------------------------------------------

TEST(DiscoveryOracleTest, SetMeasuresAreExact) {
  const std::vector<std::string> a = Values(0, 100);
  const std::vector<std::string> b = Values(50, 150);
  EXPECT_EQ(DiscoveryOracle::ExactDistinct(a), 100u);
  EXPECT_EQ(DiscoveryOracle::ExactOverlap(a, b), 50u);
  EXPECT_DOUBLE_EQ(DiscoveryOracle::ExactContainment(a, b), 0.5);
  EXPECT_DOUBLE_EQ(DiscoveryOracle::ExactJaccard(a, b), 50.0 / 150.0);
  // Normalization: case and duplicates collapse like the engines'.
  EXPECT_EQ(DiscoveryOracle::ExactDistinct({"A", "a", "a ", "b"}), 2u);
}

TEST(DiscoveryOracleTest, TopKByContainmentIsBruteForce) {
  DataLakeCatalog cat = OneColumnLake({
      {"best", Values(0, 100)},     // containment 1.0
      {"half", Values(50, 150)},    // 0.5
      {"none", Values(500, 600)},   // 0.0 -> excluded
  });
  DiscoveryOracle oracle(&cat);
  DiscoveryOracle::Stats stats;
  const auto top = oracle.TopKByContainment(Values(0, 100), 5, &stats);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].score, 1.0);
  EXPECT_DOUBLE_EQ(top[1].score, 0.5);
  EXPECT_EQ(stats.candidates_checked, 3u);
  EXPECT_GT(stats.probes, 0u);
}

// --- Sample-quality checks ------------------------------------------------

TEST(QualityTest, SeededHashesLookUniform) {
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < 5000; ++i) {
    hashes.push_back(Hash64("value" + std::to_string(i), /*seed=*/1234));
  }
  const approx::QualityCheck chi = approx::ChiSquareUniformity(hashes);
  EXPECT_TRUE(chi.passed) << chi.statistic << " vs " << chi.critical_value;
  const approx::QualityCheck ks = approx::KolmogorovSmirnovUniform(hashes);
  EXPECT_TRUE(ks.passed) << ks.statistic << " vs " << ks.critical_value;
}

TEST(QualityTest, SkewedSampleFailsBothChecks) {
  // Raw small integers are nowhere near uniform on [0, 2^64).
  std::vector<uint64_t> skewed;
  for (uint64_t i = 0; i < 5000; ++i) skewed.push_back(i);
  EXPECT_FALSE(approx::ChiSquareUniformity(skewed).passed);
  EXPECT_FALSE(approx::KolmogorovSmirnovUniform(skewed).passed);
}

// --- Engine + serving integration ----------------------------------------

DiscoveryEngine::Options LeanEngineOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

class ApproxServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 37;
    opts.num_domains = 4;
    opts.num_templates = 2;
    opts.tables_per_template = 3;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
    engine_ = new DiscoveryEngine(&lake_->catalog, &lake_->kb,
                                  LeanEngineOptions());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete lake_;
    engine_ = nullptr;
    lake_ = nullptr;
  }
  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static serve::QueryRequest ApproxJoin() {
    serve::QueryRequest req;
    req.kind = serve::QueryKind::kJoin;
    req.join_method = JoinMethod::kJosie;
    req.approx_ok = true;
    req.values = lake_->catalog.table(0).column(0).DistinctStrings();
    req.k = 5;
    return req;
  }

  static GeneratedLake* lake_;
  static DiscoveryEngine* engine_;
};

GeneratedLake* ApproxServeTest::lake_ = nullptr;
DiscoveryEngine* ApproxServeTest::engine_ = nullptr;

TEST_F(ApproxServeTest, EngineDispatchesKApprox) {
  const auto results =
      engine_->Joinable(lake_->catalog.table(0).column(0).DistinctStrings(),
                        JoinMethod::kApprox, 5)
          .value();
  ASSERT_FALSE(results.empty());
  // The query column itself is in the lake: containment 1.0 at the top.
  EXPECT_GE(results[0].score, 0.99);
}

TEST_F(ApproxServeTest, ServiceRoutesApproxOkAndRecordsMetrics) {
  serve::QueryService service(engine_, {});
  const serve::QueryResponse response = service.Execute(ApproxJoin());
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.approx);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.served_by, "join.approx");
  EXPECT_FALSE(response.columns.empty());
  EXPECT_EQ(service.metrics().GetCounter("approx.queries")->value(), 1u);
  EXPECT_GT(service.metrics().GetCounter("approx.estimates")->value(), 0u);
  const uint64_t decisions =
      service.metrics().GetCounter("approx.interval_decisions")->value() +
      service.metrics().GetCounter("approx.exact_fallbacks")->value();
  EXPECT_GT(decisions, 0u);
  EXPECT_GE(service.metrics().GetHistogram("approx.sample_size")->count(), 1u);
}

TEST_F(ApproxServeTest, RequireExactMethodVetoesApproxRouting) {
  serve::QueryService service(engine_, {});
  serve::QueryRequest req = ApproxJoin();
  req.require_exact_method = true;
  const serve::QueryResponse response = service.Execute(req);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_FALSE(response.approx);
  EXPECT_EQ(response.served_by, "join.josie");
}

TEST_F(ApproxServeTest, ApproxAndExactAreCachedSeparately) {
  serve::QueryService service(engine_, {});
  serve::QueryRequest exact = ApproxJoin();
  exact.approx_ok = false;

  const serve::QueryResponse first = service.Execute(ApproxJoin());
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  // The exact variant misses the approx entry (different join_method after
  // routing => different key).
  const serve::QueryResponse exact_resp = service.Execute(exact);
  ASSERT_TRUE(exact_resp.status.ok());
  EXPECT_FALSE(exact_resp.cache_hit);
  EXPECT_FALSE(exact_resp.approx);

  // Same approx query again: cache hit, still flagged approximate.
  const serve::QueryResponse again = service.Execute(ApproxJoin());
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.cache_hit);
  EXPECT_TRUE(again.approx);

  // A different error budget is a different answer: its own entry.
  serve::QueryRequest tight = ApproxJoin();
  tight.error_budget = 0.01;
  const serve::QueryResponse tight_resp = service.Execute(tight);
  ASSERT_TRUE(tight_resp.status.ok());
  EXPECT_FALSE(tight_resp.cache_hit);
}

TEST_F(ApproxServeTest, ErrorBudgetIsValidated) {
  serve::QueryService service(engine_, {});
  serve::QueryRequest req = ApproxJoin();
  req.error_budget = 1.5;
  EXPECT_EQ(service.Execute(req).status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ApproxServeTest, JosieBrownoutPrefersApproxTier) {
  serve::QueryService::Options opts;
  opts.enable_cache = false;
  serve::QueryService service(engine_, opts);
  ScopedFailpoint scoped(
      "serve.exec.join.josie",
      FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/0, 1.0});
  serve::QueryRequest req = ApproxJoin();
  req.approx_ok = false;  // not opted in: brownout, not routing
  const serve::QueryResponse response = service.Execute(req);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.approx);
  EXPECT_EQ(response.served_by, "join.approx");
}

TEST_F(ApproxServeTest, LiveModeServesApproxOverBaseAndDelta) {
  // The shared fixture catalog stays put (DataLakeCatalog is move-only);
  // this test builds its own small lake to hand to the live engine.
  GeneratorOptions gopts;
  gopts.seed = 39;
  gopts.num_domains = 3;
  gopts.num_templates = 2;
  gopts.tables_per_template = 2;
  gopts.min_rows = 30;
  gopts.max_rows = 50;
  GeneratedLake local = LakeGenerator(gopts).Generate();
  const Table origin = local.catalog.table(0);
  auto catalog =
      std::make_shared<const DataLakeCatalog>(std::move(local.catalog));
  auto base_engine = std::make_shared<const DiscoveryEngine>(
      catalog.get(), &local.kb, LeanEngineOptions());
  ingest::LiveEngine::Options lopts;
  lopts.base_options = LeanEngineOptions();
  lopts.kb = &local.kb;
  ingest::LiveEngine live(catalog, base_engine, lopts);

  // Ingest a copy of table 0 under a new name; its join column overlaps
  // table 0's completely, so the approx tier must surface the delta table.
  Table derived = origin;
  derived.set_name("derived_copy");
  ingest::LiveEngine::Batch batch;
  batch.adds.push_back(std::move(derived));
  const auto outcome = live.ApplyBatch(std::move(batch));
  ASSERT_EQ(outcome.adds.size(), 1u);
  ASSERT_TRUE(outcome.adds[0].ok());

  auto gen = live.Acquire();
  ApproxQueryStats stats;
  const auto results =
      ingest::MergedJoinable(*gen, origin.column(0).DistinctStrings(),
                             JoinMethod::kApprox, 10, nullptr, nullptr,
                             /*error_budget=*/0.1, &stats)
          .value();
  ASSERT_FALSE(results.empty());
  EXPECT_GT(stats.decisions(), 0u);
  const TableId delta_id = outcome.adds[0].value();
  EXPECT_TRUE(std::any_of(results.begin(), results.end(),
                          [&](const ColumnResult& r) {
                            return r.column.table_id == delta_id;
                          }));
}

TEST_F(ApproxServeTest, ClusterModeScattersApprox) {
  cluster::ClusterEngine::Options copts;
  copts.num_shards = 2;
  copts.engine.base_options = LeanEngineOptions();
  copts.engine.kb = &lake_->kb;
  cluster::ClusterEngine cluster(lake_->catalog, copts);
  const auto response = cluster.Joinable(
      lake_->catalog.table(0).column(0).DistinctStrings(),
      JoinMethod::kApprox, 5);
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_FALSE(response.hits.empty());
  EXPECT_GE(response.hits[0].score, 0.99);

  serve::QueryService service(&cluster, {});
  const serve::QueryResponse served = service.Execute(ApproxJoin());
  ASSERT_TRUE(served.status.ok()) << served.status;
  EXPECT_TRUE(served.approx);
  EXPECT_EQ(served.served_by, "join.approx");
  EXPECT_FALSE(served.columns.empty());
}

}  // namespace
}  // namespace lake
