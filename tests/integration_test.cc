#include <gtest/gtest.h>

#include <unordered_set>

#include "lakegen/benchmark_lakes.h"
#include "search/discovery_engine.h"
#include "table/csv.h"
#include "util/logging.h"

namespace lake {
namespace {

/// End-to-end test of the full Figure-1 pipeline: generate a lake, build
/// every index through the DiscoveryEngine facade, and run every query
/// type against ground truth. One engine is shared across tests because
/// construction builds ~10 indexes.
class DiscoveryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lake_ = new GeneratedLake(MakeUnionBenchmarkLake(
        /*seed=*/31, /*tables_per_template=*/5, /*distractors=*/6));
    engine_ = new DiscoveryEngine(&lake_->catalog, &lake_->kb,
                                  DiscoveryEngine::Options{});
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete lake_;
  }

  static GeneratedLake* lake_;
  static DiscoveryEngine* engine_;
};

GeneratedLake* DiscoveryEngineTest::lake_ = nullptr;
DiscoveryEngine* DiscoveryEngineTest::engine_ = nullptr;

TEST_F(DiscoveryEngineTest, AllEnginesBuilt) {
  EXPECT_NE(engine_->keyword_engine(), nullptr);
  EXPECT_NE(engine_->exact_join(), nullptr);
  EXPECT_NE(engine_->lsh_join(), nullptr);
  EXPECT_NE(engine_->josie_join(), nullptr);
  EXPECT_NE(engine_->pexeso_join(), nullptr);
  EXPECT_NE(engine_->mate_join(), nullptr);
  EXPECT_NE(engine_->correlated_join(), nullptr);
  EXPECT_NE(engine_->tus(), nullptr);
  EXPECT_NE(engine_->santos(), nullptr);
  EXPECT_NE(engine_->starmie(), nullptr);
  // Curated KB was augmented with synthesized facts.
  EXPECT_GT(engine_->kb().num_relation_instances(),
            lake_->kb.num_relation_instances());
}

TEST_F(DiscoveryEngineTest, KeywordSearchFindsTopicTables) {
  const std::string& topic = lake_->topic_of[0];
  const auto results = engine_->Keyword(topic, 5);
  ASSERT_FALSE(results.empty());
  // Relevant = every table whose template is about this topic (several
  // templates can share a subject topic, and distractors are topical too).
  std::vector<TableId> relevant;
  for (const auto& [t, tmpl] : lake_->template_of) {
    if (lake_->topic_of[tmpl] == topic) relevant.push_back(t);
  }
  EXPECT_GT(PrecisionAtK(results, relevant, 5), 0.3);
}

TEST_F(DiscoveryEngineTest, JoinableMethodsAgreeOnStrongSignal) {
  // Query column: the subject column of a template table.
  const TableId q = lake_->unionable_groups[0][0];
  const auto values =
      lake_->catalog.table(q).column(0).DistinctStrings();

  for (JoinMethod method :
       {JoinMethod::kExactJaccard, JoinMethod::kExactContainment,
        JoinMethod::kJosie}) {
    const auto results = engine_->Joinable(values, method, 10).value();
    ASSERT_FALSE(results.empty());
    // The query table's own column is indexed, so the top hit must be a
    // same-domain column with a near-perfect score.
    EXPECT_EQ(results[0].column.table_id, q)
        << "method " << static_cast<int>(method);
  }
}

TEST_F(DiscoveryEngineTest, LshEnsembleFindsSubjectColumn) {
  const TableId q = lake_->unionable_groups[1][0];
  const auto values = lake_->catalog.table(q).column(0).DistinctStrings();
  const auto results =
      engine_->Joinable(values, JoinMethod::kLshEnsemble, 10).value();
  ASSERT_FALSE(results.empty());
  bool found_self = false;
  for (const auto& r : results) {
    if (r.column.table_id == q && r.column.column_index == 0) {
      found_self = true;
    }
  }
  EXPECT_TRUE(found_self);
}

TEST_F(DiscoveryEngineTest, PexesoReturnsResults) {
  const TableId q = lake_->unionable_groups[2][0];
  const auto values = lake_->catalog.table(q).column(0).DistinctStrings();
  const auto results =
      engine_->Joinable(values, JoinMethod::kPexeso, 5).value();
  ASSERT_FALSE(results.empty());
  EXPECT_GT(results[0].score, 0.5);
}

TEST_F(DiscoveryEngineTest, UnionMethodsFindTemplatePartners) {
  const TableId q = lake_->unionable_groups[0][0];
  const Table& query = lake_->catalog.table(q);
  const auto truth = [&] {
    std::vector<TableId> out;
    for (TableId t : lake_->unionable_groups[0]) {
      if (t != q) out.push_back(t);
    }
    return out;
  }();
  for (UnionMethod method :
       {UnionMethod::kTus, UnionMethod::kSantos, UnionMethod::kStarmie}) {
    const auto results = engine_->Unionable(query, method, 4, q).value();
    ASSERT_FALSE(results.empty()) << static_cast<int>(method);
    EXPECT_GT(PrecisionAtK(results, truth, 4), 0.4)
        << "method " << static_cast<int>(method);
  }
}

TEST_F(DiscoveryEngineTest, SelectiveBuildRespectsOptions) {
  DiscoveryEngine::Options opts;
  opts.build_keyword = false;
  opts.build_pexeso = false;
  opts.build_starmie = false;
  opts.build_mate = false;
  opts.build_correlated = false;
  opts.synthesize_kb = false;
  DiscoveryEngine engine(&lake_->catalog, nullptr, opts);
  EXPECT_EQ(engine.keyword_engine(), nullptr);
  EXPECT_EQ(engine.pexeso_join(), nullptr);
  EXPECT_TRUE(engine.Keyword("anything", 3).empty());
  EXPECT_FALSE(
      engine.Joinable({"x"}, JoinMethod::kPexeso, 3).ok());
  EXPECT_FALSE(engine
                   .Unionable(lake_->catalog.table(0),
                              UnionMethod::kStarmie, 3)
                   .ok());
  // Remaining engines still answer.
  EXPECT_TRUE(engine.Joinable({"x"}, JoinMethod::kExactJaccard, 3).ok());
}

TEST_F(DiscoveryEngineTest, QueryTimeAnnotation) {
  ASSERT_TRUE(engine_->annotator_ready());
  // Annotate a fresh value column drawn from a known domain: the subject
  // values of template 0's first table.
  const TableId t = lake_->unionable_groups[0][0];
  std::vector<std::string> values;
  const Column& subject = lake_->catalog.table(t).column(0);
  for (size_t r = 0; r < 20 && r < subject.size(); ++r) {
    values.push_back(subject.cell(r).ToString());
  }
  const auto ann = engine_->AnnotateValues(values).value();
  // Labels come from distant supervision over the merged KB, so either the
  // curated ("type:<topic>") or the synthesized ("synth:<topic> ...")
  // vocabulary may win the vote; both identify the same topic.
  EXPECT_NE(ann.type_label.find(lake_->topic_of[0]), std::string::npos)
      << ann.type_label;
  EXPECT_GT(ann.confidence, 0.3);
}

TEST_F(DiscoveryEngineTest, JoinableAutoPicksAndAnswers) {
  const TableId q = lake_->unionable_groups[0][0];
  const auto values = lake_->catalog.table(q).column(0).DistinctStrings();
  const auto result = engine_->JoinableAuto(values, 5).value();
  // This lake is small, so the planner picks the exact scan.
  EXPECT_EQ(result.method, JoinMethod::kExactContainment);
  ASSERT_FALSE(result.results.empty());
  EXPECT_EQ(result.results[0].column.table_id, q);

  // With only JOSIE built, the planner falls back to it.
  DiscoveryEngine::Options opts;
  opts.build_keyword = opts.build_exact_join = opts.build_lsh_join = false;
  opts.build_pexeso = opts.build_mate = opts.build_correlated = false;
  opts.build_tus = opts.build_santos = opts.build_starmie = false;
  opts.build_d3l = false;
  opts.synthesize_kb = false;
  opts.train_annotator = false;
  DiscoveryEngine josie_only(&lake_->catalog, nullptr, opts);
  const auto r2 = josie_only.JoinableAuto(values, 5).value();
  EXPECT_EQ(r2.method, JoinMethod::kJosie);
  EXPECT_FALSE(r2.results.empty());

  // With nothing built, the planner reports the precondition failure.
  opts.build_josie = false;
  DiscoveryEngine none(&lake_->catalog, nullptr, opts);
  EXPECT_FALSE(none.JoinableAuto(values, 5).ok());
  EXPECT_FALSE(none.annotator_ready());
  EXPECT_FALSE(none.AnnotateValues(values).ok());
}

TEST_F(DiscoveryEngineTest, EndToEndCsvIngestToSearch) {
  // A user-facing flow: CSV text -> catalog -> engine -> query.
  DataLakeCatalog catalog;
  const char* csvs[] = {
      "city,population\nkelora,100\nkelavi,200\nkeluna,300\n",
      "city,mayor\nkelora,morvan\nkelavi,morlen\nkeluna,morzal\n",
      "movie,year\nstarfall,1999\nmoonrise,2005\n",
  };
  const char* names[] = {"cities_pop", "cities_mayors", "movies"};
  for (int i = 0; i < 3; ++i) {
    auto t = ReadCsvString(csvs[i], names[i]);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(catalog.AddTable(std::move(t).value()).ok());
  }
  DiscoveryEngine engine(&catalog);
  const auto join_results =
      engine.Joinable({"kelora", "kelavi"}, JoinMethod::kJosie, 3).value();
  ASSERT_GE(join_results.size(), 2u);
  std::unordered_set<std::string> tables;
  for (const auto& r : join_results) {
    tables.insert(catalog.table(r.column.table_id).name());
  }
  EXPECT_TRUE(tables.count("cities_pop"));
  EXPECT_TRUE(tables.count("cities_mayors"));
  EXPECT_FALSE(tables.count("movies"));
}

}  // namespace
}  // namespace lake
