// Back-compat regression tests over checked-in golden artifacts
// (tests/data, regenerated only via tools/make_compat_golden): a
// pre-ingest (PR 2 era) snapshot envelope and a serialized metrics
// snapshot. These pin the on-disk formats — "LKS1" store envelopes and
// "LSM2" metrics snapshots written before the ingest subsystem existed
// must keep loading, and ingest-aware recovery must treat them as an
// empty delta, not an error.

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ingest/live_engine.h"
#include "search/discovery_engine.h"
#include "serve/metrics.h"
#include "store/snapshot.h"
#include "table/catalog.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace lake {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_compat_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::string GoldenBytes(const std::string& name) {
  return ReadFileBytes(std::string(LAKE_TEST_DATA_DIR) + "/" + name);
}

/// The engine options the golden snapshot was produced with (see
/// tools/make_compat_golden.cc).
DiscoveryEngine::Options GoldenOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

/// Reconstructs a committed SnapshotStore directory holding `bytes` as
/// generation 1, the way PR 2's store would have left it on disk.
std::string MakeStoreDir(const std::string& name, const std::string& bytes) {
  const std::string dir = TestDir(name);
  const std::string file = store::SnapshotStore::SnapshotFileName(1);
  {
    std::ofstream out(dir + "/" + file, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::ofstream manifest(dir + "/MANIFEST");
  manifest << "LAKE-MANIFEST v1\n"
           << StrFormat("1 %s %llu\n", file.c_str(),
                        static_cast<unsigned long long>(bytes.size()));
  return dir;
}

/// Copies the checked-in wal_era store directory (snapshot + MANIFEST +
/// wal/ segment) into a scratch dir, since recovery appends to the WAL.
std::string CopyWalEraDir(const std::string& name) {
  const std::string dir = TestDir(name);
  fs::copy(std::string(LAKE_TEST_DATA_DIR) + "/wal_era", dir,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing);
  return dir;
}

TEST(StoreCompatTest, PreIngestEnvelopeParsesWithExpectedSections) {
  Result<store::SnapshotReader> reader =
      store::SnapshotReader::Parse(GoldenBytes("pre_ingest_snap.lks"));
  ASSERT_TRUE(reader.ok()) << reader.status();

  size_t tables = 0;
  for (const auto& section : reader->sections()) {
    if (section.name.rfind("table/", 0) == 0) ++tables;
    // A PR 2 era snapshot must not contain ingest sections.
    EXPECT_NE(section.name, ingest::LiveEngine::kStateSection);
    EXPECT_NE(section.name.rfind(ingest::LiveEngine::kDeltaPrefix, 0), 0u)
        << section.name;
  }
  EXPECT_EQ(tables, 3u);
  EXPECT_TRUE(reader->ReadSection(DiscoveryEngine::kJosieSection).ok());
  EXPECT_TRUE(reader->ReadSection(DiscoveryEngine::kStarmieSection).ok());
}

TEST(StoreCompatTest, PreIngestSnapshotLoadsCatalogAndIndexes) {
  const std::string dir =
      MakeStoreDir("load", GoldenBytes("pre_ingest_snap.lks"));
  store::SnapshotStore store(dir);
  Result<store::SnapshotStore::Opened> opened = store.OpenLatest();
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->generation, 1u);

  DataLakeCatalog catalog;
  Result<std::vector<TableId>> ids = catalog.LoadSnapshot(opened->reader);
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids->size(), 3u);
  EXPECT_TRUE(catalog.quarantined().empty());
  EXPECT_TRUE(catalog.FindTable("city_population").ok());

  DiscoveryEngine::Options eopts = GoldenOptions();
  eopts.defer_index_build = true;
  DiscoveryEngine engine(&catalog, nullptr, eopts);
  for (const char* section :
       {DiscoveryEngine::kJosieSection, DiscoveryEngine::kStarmieSection}) {
    Result<std::string> payload = opened->reader.ReadSection(section);
    ASSERT_TRUE(payload.ok()) << section;
    EXPECT_TRUE(engine.LoadIndexSection(section, payload.value()).ok())
        << section;
  }
  EXPECT_FALSE(engine.Keyword("city", 10).empty());
}

TEST(StoreCompatTest, IngestRecoveryTreatsPreIngestSnapshotAsEmptyDelta) {
  const std::string dir =
      MakeStoreDir("recover", GoldenBytes("pre_ingest_snap.lks"));
  store::SnapshotStore store(dir);
  ingest::LiveEngine::Options opts;
  opts.base_options = GoldenOptions();

  ingest::LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<ingest::LiveEngine>> live =
      ingest::LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(report.snapshot_generation, 1u);
  EXPECT_EQ(report.tables_loaded, 3u);
  EXPECT_EQ(report.index_sections_loaded, 2u);
  EXPECT_EQ(report.index_sections_rebuilt, 0u);
  EXPECT_EQ(report.deltas_replayed, 0u);
  EXPECT_EQ(report.tombstones_replayed, 0u);

  auto gen = (*live)->Acquire();
  EXPECT_FALSE(gen->has_delta());
  EXPECT_EQ(gen->visible_table_count(), 3u);

  // The recovered engine is fully live: it accepts new tables and its next
  // checkpoint upgrades the store to an ingest-aware generation in place.
  Table extra = gen->base_catalog().table(0);
  extra.set_name("post_upgrade");
  ASSERT_TRUE((*live)->AddTable(std::move(extra)).ok());
  ASSERT_TRUE((*live)->Checkpoint().ok());
  Result<store::SnapshotStore::Opened> upgraded = store.OpenLatest();
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->generation, 2u);
  EXPECT_TRUE(
      upgraded->reader.ReadSection(ingest::LiveEngine::kStateSection).ok());
}

TEST(StoreCompatTest, CorruptTableSectionIsQuarantinedNotFatal) {
  std::string bytes = GoldenBytes("pre_ingest_snap.lks");
  {
    Result<store::SnapshotReader> reader =
        store::SnapshotReader::Parse(bytes);
    ASSERT_TRUE(reader.ok());
    bool flipped = false;
    for (const auto& section : reader->sections()) {
      if (section.name == "table/city_weather") {
        bytes[section.offset + section.size / 2] ^= 0x01;
        flipped = true;
      }
    }
    ASSERT_TRUE(flipped);
  }

  Result<store::SnapshotReader> reader = store::SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());  // framing is intact; only one payload is bad
  DataLakeCatalog catalog;
  Result<std::vector<TableId>> ids = catalog.LoadSnapshot(*reader);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  ASSERT_EQ(catalog.quarantined().size(), 1u);
  EXPECT_EQ(catalog.quarantined()[0].path, "table/city_weather");
  EXPECT_TRUE(catalog.FindTable("city_population").ok());
  EXPECT_FALSE(catalog.FindTable("city_weather").ok());

  // Ingest-aware recovery over the damaged envelope: the stale index
  // sections no longer match the surviving tables, so recovery falls back
  // to a fresh base build — it never serves an index over quarantined
  // tables.
  const std::string dir = MakeStoreDir("corrupt", bytes);
  store::SnapshotStore store(dir);
  ingest::LiveEngine::Options opts;
  opts.base_options = GoldenOptions();
  ingest::LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<ingest::LiveEngine>> live =
      ingest::LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(report.tables_loaded, 2u);
  EXPECT_GE(report.index_sections_rebuilt, 1u);
  auto gen = (*live)->Acquire();
  EXPECT_EQ(gen->visible_table_count(), 2u);
  EXPECT_FALSE(gen->base().Keyword("city", 10).empty());
}

// --- WAL-era store golden (PR 5) ----------------------------------------
//
// The wal_era directory holds snapshot generation 1 (base + delta table
// "wal_covered", durable LSN 1 in the ingest/wal section) next to a WAL
// segment whose tail record (LSN 2) adds "wal_tail". The snapshot must
// stay readable to recovery with the WAL feature off — the tail batch is
// simply invisible — and WAL-aware recovery must replay it.

TEST(StoreCompatTest, WalEraStoreRecoversWithWalFeatureDisabled) {
  const std::string dir = CopyWalEraDir("wal_era_off");
  store::SnapshotStore store(dir);
  ingest::LiveEngine::Options opts;
  opts.base_options = GoldenOptions();
  opts.enable_wal = false;

  ingest::LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<ingest::LiveEngine>> live =
      ingest::LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(report.snapshot_generation, 1u);
  EXPECT_EQ(report.tables_loaded, 3u);
  EXPECT_EQ(report.deltas_replayed, 1u);
  // The durable-LSN marker parses even when replay is off; the tail
  // record is ignored, not an error.
  EXPECT_EQ(report.wal_durable_lsn, 1u);
  EXPECT_EQ(report.wal_records_replayed, 0u);

  auto gen = (*live)->Acquire();
  EXPECT_EQ(gen->visible_table_count(), 4u);
  EXPECT_TRUE(gen->FindTable("wal_covered").ok());
  EXPECT_FALSE(gen->FindTable("wal_tail").ok());
  EXPECT_FALSE((*live)->wal_status().enabled);
}

TEST(StoreCompatTest, WalEraStoreReplaysTailBatchWithWalFeatureEnabled) {
  const std::string dir = CopyWalEraDir("wal_era_on");
  store::SnapshotStore store(dir);
  ingest::LiveEngine::Options opts;
  opts.base_options = GoldenOptions();
  opts.enable_wal = true;

  ingest::LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<ingest::LiveEngine>> live =
      ingest::LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(report.snapshot_generation, 1u);
  EXPECT_EQ(report.deltas_replayed, 1u);
  EXPECT_EQ(report.wal_durable_lsn, 1u);
  EXPECT_EQ(report.wal_records_replayed, 1u);
  EXPECT_EQ(report.wal_last_lsn, 2u);
  EXPECT_EQ(report.wal_truncated_bytes, 0u);

  auto gen = (*live)->Acquire();
  EXPECT_EQ(gen->visible_table_count(), 5u);
  EXPECT_TRUE(gen->FindTable("wal_covered").ok());
  EXPECT_TRUE(gen->FindTable("wal_tail").ok());

  const ingest::LiveEngine::WalStatus wal = (*live)->wal_status();
  EXPECT_TRUE(wal.enabled);
  EXPECT_EQ(wal.last_lsn, 2u);
  EXPECT_EQ(wal.durable_lsn, 1u);

  // The recovered engine keeps logging: a checkpoint advances the durable
  // floor past the replayed tail and commits a new generation.
  ASSERT_TRUE((*live)->Checkpoint().ok());
  EXPECT_EQ((*live)->wal_status().durable_lsn, 2u);
  Result<store::SnapshotStore::Opened> upgraded = store.OpenLatest();
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->generation, 2u);
}

TEST(StoreCompatTest, PreWalSnapshotRecoversWithWalFeatureEnabled) {
  // Turning the WAL on over a pre-WAL store must be a clean upgrade: no
  // wal/ dir and no ingest/wal section recover to LSN 0 with an empty log.
  const std::string dir =
      MakeStoreDir("prewal_walon", GoldenBytes("pre_ingest_snap.lks"));
  store::SnapshotStore store(dir);
  ingest::LiveEngine::Options opts;
  opts.base_options = GoldenOptions();
  opts.enable_wal = true;

  ingest::LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<ingest::LiveEngine>> live =
      ingest::LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(report.tables_loaded, 3u);
  EXPECT_EQ(report.wal_durable_lsn, 0u);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(report.wal_truncated_bytes, 0u);

  // First mutation after the upgrade is logged at LSN 1.
  Table extra = (*live)->Acquire()->base_catalog().table(0);
  extra.set_name("first_logged");
  ASSERT_TRUE((*live)->AddTable(std::move(extra)).ok());
  const ingest::LiveEngine::WalStatus wal = (*live)->wal_status();
  EXPECT_TRUE(wal.enabled);
  EXPECT_EQ(wal.last_lsn, 1u);
}

TEST(StoreCompatTest, MetricsSnapshotV2RoundTrips) {
  const std::string bytes = GoldenBytes("metrics_v2.bin");
  std::istringstream in(bytes);
  BinaryReader reader(&in);
  Result<serve::MetricsRegistry::Snapshot> snap =
      serve::ReadSnapshot(&reader);
  ASSERT_TRUE(snap.ok()) << snap.status();

  ASSERT_EQ(snap->counters.size(), 2u);
  EXPECT_EQ(snap->counters[0].first, "serve.cache.hits");
  EXPECT_EQ(snap->counters[0].second, 41u);
  EXPECT_EQ(snap->counters[1].first, "serve.queries");
  EXPECT_EQ(snap->counters[1].second, 1297u);
  ASSERT_EQ(snap->gauges.size(), 2u);
  EXPECT_EQ(snap->gauges[1].first, "serve.quarantined_sections");
  EXPECT_EQ(snap->gauges[1].second, 2u);
  ASSERT_EQ(snap->histograms.size(), 1u);
  const serve::MetricsRegistry::HistogramRow& h = snap->histograms[0];
  EXPECT_EQ(h.name, "serve.latency.keyword");
  EXPECT_EQ(h.count, 512u);
  EXPECT_DOUBLE_EQ(h.mean_us, 133.5);
  EXPECT_DOUBLE_EQ(h.p50_us, 120.0);
  EXPECT_DOUBLE_EQ(h.p95_us, 240.0);
  EXPECT_DOUBLE_EQ(h.p99_us, 310.5);
  EXPECT_DOUBLE_EQ(h.max_us, 402.25);

  // Writing today's format over the same rows reproduces the golden bytes
  // exactly — the serialization is still v2.
  std::ostringstream out;
  BinaryWriter writer(&out);
  ASSERT_TRUE(serve::WriteSnapshot(*snap, &writer).ok());
  EXPECT_EQ(out.str(), bytes);
}

}  // namespace
}  // namespace lake
