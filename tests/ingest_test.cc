#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ingest/compactor.h"
#include "ingest/live_engine.h"
#include "ingest/pipeline.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"
#include "store/snapshot.h"
#include "table/csv.h"
#include "util/failpoint.h"

namespace lake::ingest {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lake_ingest_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

/// Shared immutable base (catalog + fully-built engine) for all tests;
/// each test wraps it in its own LiveEngine, which never mutates it.
class LiveEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 11;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 3;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
    catalog_ = new std::shared_ptr<const DataLakeCatalog>(
        std::make_shared<DataLakeCatalog>(std::move(lake_->catalog)));
    engine_ = new std::shared_ptr<const DiscoveryEngine>(
        std::make_shared<DiscoveryEngine>(catalog_->get(), &lake_->kb,
                                          BaseOptions()));
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete catalog_;
    delete lake_;
    engine_ = nullptr;
    catalog_ = nullptr;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static const DataLakeCatalog& base() { return **catalog_; }

  static LiveEngine::Options LiveOptions() {
    LiveEngine::Options opts;
    opts.base_options = BaseOptions();
    opts.kb = &lake_->kb;
    return opts;
  }

  static std::unique_ptr<LiveEngine> MakeLive(LiveEngine::Options opts) {
    return std::make_unique<LiveEngine>(*catalog_, *engine_, std::move(opts));
  }
  static std::unique_ptr<LiveEngine> MakeLive() {
    return MakeLive(LiveOptions());
  }

  /// A copy of a base table under a new name — the ingest payload used
  /// throughout: it overlaps its origin's join columns and is unionable
  /// with its origin's template group by construction.
  static Table Derived(TableId origin, const std::string& name) {
    Table copy = base().table(origin);
    copy.set_name(name);
    return copy;
  }

  static bool ContainsTable(const std::vector<TableResult>& results,
                            TableId id) {
    return std::any_of(results.begin(), results.end(),
                       [&](const TableResult& r) { return r.table_id == id; });
  }
  static bool ContainsColumnOf(const std::vector<ColumnResult>& results,
                               TableId id) {
    return std::any_of(
        results.begin(), results.end(),
        [&](const ColumnResult& r) { return r.column.table_id == id; });
  }

  static GeneratedLake* lake_;
  static std::shared_ptr<const DataLakeCatalog>* catalog_;
  static std::shared_ptr<const DiscoveryEngine>* engine_;
};

GeneratedLake* LiveEngineTest::lake_ = nullptr;
std::shared_ptr<const DataLakeCatalog>* LiveEngineTest::catalog_ = nullptr;
std::shared_ptr<const DiscoveryEngine>* LiveEngineTest::engine_ = nullptr;

// ----------------------------------------------------------- generations

TEST_F(LiveEngineTest, InitialGenerationServesBaseUnchanged) {
  auto live = MakeLive();
  auto gen = live->Acquire();
  ASSERT_NE(gen, nullptr);
  EXPECT_FALSE(gen->has_delta());
  EXPECT_EQ(gen->base_table_count(), base().num_tables());
  EXPECT_EQ(gen->visible_table_count(), base().num_tables());

  const std::vector<TableResult> merged =
      MergedKeyword(*gen, lake_->topic_of[0], 5);
  const std::vector<TableResult> direct =
      gen->base().Keyword(lake_->topic_of[0], 5);
  ASSERT_EQ(merged.size(), direct.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].table_id, direct[i].table_id);
    EXPECT_DOUBLE_EQ(merged[i].score, direct[i].score);
  }
}

TEST_F(LiveEngineTest, AddedTableIsDiscoverableWithoutRestart) {
  auto live = MakeLive();
  const TableId origin = lake_->unionable_groups[0][0];
  Result<TableId> added = live->AddTable(Derived(origin, "streamed_tbl"));
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_GE(added.value(), base().num_tables());  // delta id range

  auto gen = live->Acquire();
  EXPECT_TRUE(gen->has_delta());
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() + 1);
  ASSERT_TRUE(gen->FindTable("streamed_tbl").ok());
  EXPECT_EQ(gen->FindTable("streamed_tbl").value(), added.value());
  ASSERT_TRUE(gen->TableName(added.value()).ok());
  EXPECT_EQ(gen->TableName(added.value()).value(), "streamed_tbl");

  // Keyword: the topic of the origin's template also matches the copy.
  const int tmpl = lake_->template_of[origin];
  MergeStats stats;
  const std::vector<TableResult> keyword =
      MergedKeyword(*gen, lake_->topic_of[tmpl], 20, &stats);
  EXPECT_TRUE(ContainsTable(keyword, added.value()));
  EXPECT_GT(stats.delta_results, 0u);

  // Joinable: the copy's first column overlaps the origin's exactly.
  const std::vector<std::string> values =
      base().table(origin).column(0).DistinctStrings();
  Result<std::vector<ColumnResult>> join =
      MergedJoinable(*gen, values, JoinMethod::kJosie, 20);
  ASSERT_TRUE(join.ok()) << join.status();
  EXPECT_TRUE(ContainsColumnOf(join.value(), added.value()));

  // Unionable: querying with the copy itself must surface the copy.
  Result<std::vector<TableResult>> uni = MergedUnionable(
      *gen, base().table(origin), UnionMethod::kStarmie, 20);
  ASSERT_TRUE(uni.ok()) << uni.status();
  EXPECT_TRUE(ContainsTable(uni.value(), added.value()));
}

TEST_F(LiveEngineTest, RemovedBaseTableDisappearsImmediately) {
  auto live = MakeLive();
  const TableId victim = lake_->unionable_groups[0][0];
  const std::string name = base().table(victim).name();
  const int tmpl = lake_->template_of[victim];

  // Visible before.
  {
    auto gen = live->Acquire();
    EXPECT_TRUE(
        ContainsTable(MergedKeyword(*gen, lake_->topic_of[tmpl], 50), victim));
  }

  ASSERT_TRUE(live->RemoveTable(name).ok());
  auto gen = live->Acquire();
  EXPECT_EQ(gen->visible_table_count(), base().num_tables() - 1);
  EXPECT_FALSE(gen->FindTable(name).ok());
  EXPECT_FALSE(gen->FindTableById(victim).ok());

  MergeStats stats;
  EXPECT_FALSE(ContainsTable(
      MergedKeyword(*gen, lake_->topic_of[tmpl], 50, &stats), victim));
  EXPECT_GT(stats.tombstone_filtered, 0u);

  const std::vector<std::string> values =
      base().table(victim).column(0).DistinctStrings();
  Result<std::vector<ColumnResult>> join =
      MergedJoinable(*gen, values, JoinMethod::kJosie, 50);
  ASSERT_TRUE(join.ok());
  EXPECT_FALSE(ContainsColumnOf(join.value(), victim));

  // Removing twice reports NotFound.
  EXPECT_EQ(live->RemoveTable(name).code(), StatusCode::kNotFound);
}

TEST_F(LiveEngineTest, NameRulesAndShadowing) {
  auto live = MakeLive();
  // Duplicate of a live base name is rejected.
  const std::string taken = base().table(0).name();
  EXPECT_EQ(live->AddTable(Derived(0, taken)).status().code(),
            StatusCode::kAlreadyExists);
  // Invalid names are rejected (section naming owns '/').
  EXPECT_EQ(live->AddTable(Derived(0, "")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(live->AddTable(Derived(0, "a/b")).status().code(),
            StatusCode::kInvalidArgument);
  // A tombstoned base name can be re-used; the delta shadows the corpse.
  ASSERT_TRUE(live->RemoveTable(taken).ok());
  Result<TableId> readd = live->AddTable(Derived(1, taken));
  ASSERT_TRUE(readd.ok()) << readd.status();
  auto gen = live->Acquire();
  ASSERT_TRUE(gen->FindTable(taken).ok());
  EXPECT_EQ(gen->FindTable(taken).value(), readd.value());
  EXPECT_TRUE(gen->IsDeltaId(gen->FindTable(taken).value()));
}

TEST_F(LiveEngineTest, BatchPublishesOneGeneration) {
  auto live = MakeLive();
  const uint64_t before = live->version();
  LiveEngine::Batch batch;
  batch.adds.push_back(Derived(0, "batch_a"));
  batch.adds.push_back(Derived(1, "batch_b"));
  batch.removes.push_back(base().table(2).name());
  LiveEngine::BatchOutcome outcome = live->ApplyBatch(std::move(batch));
  EXPECT_TRUE(outcome.published);
  ASSERT_EQ(outcome.adds.size(), 2u);
  ASSERT_EQ(outcome.removes.size(), 1u);
  EXPECT_TRUE(outcome.adds[0].ok());
  EXPECT_TRUE(outcome.adds[1].ok());
  EXPECT_TRUE(outcome.removes[0].ok());
  EXPECT_EQ(live->version(), before + 1);  // one publish for the whole batch
  EXPECT_EQ(live->Acquire()->visible_table_count(), base().num_tables() + 1);
}

// ------------------------------------------------------------ compaction

TEST_F(LiveEngineTest, CompactionMatchesColdRebuildBitForBit) {
  auto live = MakeLive();
  const TableId origin = lake_->unionable_groups[0][0];
  ASSERT_TRUE(live->AddTable(Derived(origin, "zz_streamed")).ok());
  ASSERT_TRUE(live->AddTable(Derived(origin, "aa_streamed")).ok());
  const std::string removed = base().table(lake_->unionable_groups[1][0]).name();
  ASSERT_TRUE(live->RemoveTable(removed).ok());

  Result<LiveEngine::CompactionStats> stats = live->Compact();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->input_delta_tables, 2u);
  EXPECT_EQ(stats->tombstones_cleared, 1u);
  EXPECT_EQ(stats->output_tables, base().num_tables() + 1);
  EXPECT_EQ(live->num_delta_tables(), 0u);
  EXPECT_EQ(live->num_tombstones(), 0u);
  EXPECT_EQ(live->compactions(), 1u);

  auto gen = live->Acquire();
  EXPECT_FALSE(gen->has_delta());
  EXPECT_EQ(gen->number(), 1u);

  // Cold rebuild over the surviving corpus in sorted-name order — the
  // exact procedure a from-scratch boot would run.
  std::vector<const Table*> survivors;
  for (TableId id : base().AllTables()) {
    if (base().table(id).name() != removed) {
      survivors.push_back(&base().table(id));
    }
  }
  Table zz = Derived(origin, "zz_streamed");
  Table aa = Derived(origin, "aa_streamed");
  survivors.push_back(&zz);
  survivors.push_back(&aa);
  std::sort(survivors.begin(), survivors.end(),
            [](const Table* a, const Table* b) { return a->name() < b->name(); });
  DataLakeCatalog cold_catalog;
  for (const Table* t : survivors) {
    ASSERT_TRUE(cold_catalog.AddTable(*t).ok());
  }
  DiscoveryEngine cold(&cold_catalog, &lake_->kb, BaseOptions());

  // Identical id assignment...
  ASSERT_EQ(gen->base_catalog().num_tables(), cold_catalog.num_tables());
  for (TableId id : cold_catalog.AllTables()) {
    EXPECT_EQ(gen->base_catalog().table(id).name(),
              cold_catalog.table(id).name());
  }

  // ...and bit-identical answers across modalities (merged == base here,
  // since the delta is empty).
  const std::vector<TableResult> k1 =
      MergedKeyword(*gen, lake_->topic_of[0], 10);
  const std::vector<TableResult> k2 = cold.Keyword(lake_->topic_of[0], 10);
  ASSERT_EQ(k1.size(), k2.size());
  for (size_t i = 0; i < k1.size(); ++i) {
    EXPECT_EQ(k1[i].table_id, k2[i].table_id);
    EXPECT_DOUBLE_EQ(k1[i].score, k2[i].score);
  }

  const std::vector<std::string> values =
      base().table(origin).column(0).DistinctStrings();
  Result<std::vector<ColumnResult>> j1 =
      MergedJoinable(*gen, values, JoinMethod::kJosie, 10);
  Result<std::vector<ColumnResult>> j2 =
      cold.Joinable(values, JoinMethod::kJosie, 10);
  ASSERT_TRUE(j1.ok());
  ASSERT_TRUE(j2.ok());
  ASSERT_EQ(j1->size(), j2->size());
  for (size_t i = 0; i < j1->size(); ++i) {
    EXPECT_EQ((*j1)[i].column, (*j2)[i].column);
    EXPECT_DOUBLE_EQ((*j1)[i].score, (*j2)[i].score);
  }

  Result<std::vector<TableResult>> u1 = MergedUnionable(
      *gen, base().table(origin), UnionMethod::kStarmie, 10);
  Result<std::vector<TableResult>> u2 =
      cold.Unionable(base().table(origin), UnionMethod::kStarmie, 10);
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  ASSERT_EQ(u1->size(), u2->size());
  for (size_t i = 0; i < u1->size(); ++i) {
    EXPECT_EQ((*u1)[i].table_id, (*u2)[i].table_id);
    EXPECT_DOUBLE_EQ((*u1)[i].score, (*u2)[i].score);
  }
}

TEST_F(LiveEngineTest, CompactionNeededThresholds) {
  auto live = MakeLive();
  EXPECT_FALSE(live->CompactionNeeded(2, 0.5));
  ASSERT_TRUE(live->AddTable(Derived(0, "cn_a")).ok());
  EXPECT_FALSE(live->CompactionNeeded(2, 0.5));
  ASSERT_TRUE(live->AddTable(Derived(0, "cn_b")).ok());
  EXPECT_TRUE(live->CompactionNeeded(2, 0.5));  // delta size trips
  auto live2 = MakeLive();
  ASSERT_TRUE(live2->RemoveTable(base().table(0).name()).ok());
  // 1 tombstone / 9 base tables ≈ 0.11.
  EXPECT_TRUE(live2->CompactionNeeded(100, 0.1));
  EXPECT_FALSE(live2->CompactionNeeded(100, 0.5));
}

// ------------------------------------------------------------ failpoints

TEST_F(LiveEngineTest, PublishFailpointRejectsWholeBatchAtomically) {
  auto live = MakeLive();
  const uint64_t version = live->version();
  FailpointRegistry::Instance().Arm(
      "ingest.publish.swap", FaultSpec{FaultSpec::Kind::kError});
  LiveEngine::Batch batch;
  batch.adds.push_back(Derived(0, "fp_add"));
  batch.removes.push_back(base().table(1).name());
  LiveEngine::BatchOutcome outcome = live->ApplyBatch(std::move(batch));
  EXPECT_FALSE(outcome.published);
  ASSERT_EQ(outcome.adds.size(), 1u);
  EXPECT_EQ(outcome.adds[0].status().code(), StatusCode::kIoError);
  EXPECT_EQ(outcome.removes[0].code(), StatusCode::kIoError);
  EXPECT_EQ(live->version(), version);
  EXPECT_EQ(live->num_delta_tables(), 0u);
  EXPECT_EQ(live->num_tombstones(), 0u);
  // One-shot fault: the retry succeeds.
  EXPECT_TRUE(live->AddTable(Derived(0, "fp_add")).ok());
}

TEST_F(LiveEngineTest, CompactionFailpointsAbortWithStateUnchanged) {
  for (const char* site : {"ingest.compact.build", "ingest.compact.swap"}) {
    auto live = MakeLive();
    ASSERT_TRUE(live->AddTable(Derived(0, "fp_delta")).ok());
    const uint64_t version = live->version();
    FailpointRegistry::Instance().Arm(site,
                                      FaultSpec{FaultSpec::Kind::kError});
    Result<LiveEngine::CompactionStats> stats = live->Compact();
    EXPECT_FALSE(stats.ok()) << site;
    EXPECT_EQ(live->version(), version) << site;
    EXPECT_EQ(live->num_delta_tables(), 1u) << site;
    EXPECT_EQ(live->compactions(), 0u) << site;
    EXPECT_EQ(live->Acquire()->number(), 0u) << site;
    FailpointRegistry::Instance().Clear();
    // The delta is still intact and compactable.
    ASSERT_TRUE(live->Compact().ok()) << site;
    EXPECT_EQ(live->num_delta_tables(), 0u) << site;
  }
}

// ------------------------------------------------------------ durability

TEST_F(LiveEngineTest, CheckpointRecoverRoundTrip) {
  const std::string dir = TestDir("roundtrip");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  auto live = MakeLive(opts);
  const TableId origin = lake_->unionable_groups[0][0];
  ASSERT_TRUE(live->AddTable(Derived(origin, "persisted_delta")).ok());
  const std::string removed = base().table(lake_->unionable_groups[1][0]).name();
  ASSERT_TRUE(live->RemoveTable(removed).ok());
  ASSERT_TRUE(live->Checkpoint().ok());

  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.tables_loaded, base().num_tables());
  EXPECT_EQ(report.index_sections_loaded, 2u);  // josie + starmie.hnsw
  EXPECT_EQ(report.index_sections_rebuilt, 0u);
  EXPECT_EQ(report.deltas_replayed, 1u);
  EXPECT_EQ(report.deltas_dropped, 0u);
  EXPECT_EQ(report.tombstones_replayed, 1u);

  auto orig = live->Acquire();
  auto gen = (*recovered)->Acquire();
  EXPECT_EQ(gen->visible_table_count(), orig->visible_table_count());
  EXPECT_TRUE(gen->FindTable("persisted_delta").ok());
  EXPECT_FALSE(gen->FindTable(removed).ok());

  // Merged answers from the recovered engine match the original live one.
  const std::vector<TableResult> k1 =
      MergedKeyword(*orig, lake_->topic_of[0], 10);
  const std::vector<TableResult> k2 =
      MergedKeyword(*gen, lake_->topic_of[0], 10);
  ASSERT_EQ(k1.size(), k2.size());
  for (size_t i = 0; i < k1.size(); ++i) {
    EXPECT_EQ(k1[i].table_id, k2[i].table_id);
    EXPECT_DOUBLE_EQ(k1[i].score, k2[i].score);
  }
}

TEST_F(LiveEngineTest, PersistFailpointKeepsPreviousCommittedGeneration) {
  const std::string dir = TestDir("persist_fp");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  auto live = MakeLive(opts);
  ASSERT_TRUE(live->AddTable(Derived(0, "gen1_delta")).ok());
  ASSERT_TRUE(live->Checkpoint().ok());

  ASSERT_TRUE(live->AddTable(Derived(1, "gen2_delta")).ok());
  FailpointRegistry::Instance().Arm("ingest.delta.persist",
                                    FaultSpec{FaultSpec::Kind::kError});
  EXPECT_EQ(live->Checkpoint().code(), StatusCode::kIoError);

  // Recovery sees the last committed generation: gen1_delta only.
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto gen = (*recovered)->Acquire();
  EXPECT_TRUE(gen->FindTable("gen1_delta").ok());
  EXPECT_FALSE(gen->FindTable("gen2_delta").ok());
}

TEST_F(LiveEngineTest, RecoverDropsCorruptDeltaButKeepsBaseConsistent) {
  const std::string dir = TestDir("corrupt_delta");
  store::SnapshotStore store(dir);
  LiveEngine::Options opts = LiveOptions();
  opts.store = &store;
  auto live = MakeLive(opts);
  ASSERT_TRUE(live->AddTable(Derived(0, "doomed_delta")).ok());
  ASSERT_TRUE(live->AddTable(Derived(1, "healthy_delta")).ok());
  ASSERT_TRUE(live->Checkpoint().ok());

  // Flip one byte inside the doomed delta section's payload.
  const std::string snap_path =
      dir + "/" + store::SnapshotStore::SnapshotFileName(1);
  std::ifstream in(snap_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = std::move(buf).str();
  in.close();
  Result<store::SnapshotReader> reader = store::SnapshotReader::Parse(bytes);
  ASSERT_TRUE(reader.ok());
  bool flipped = false;
  for (const auto& section : reader->sections()) {
    if (section.name == std::string(LiveEngine::kDeltaPrefix) +
                            "doomed_delta") {
      bytes[section.offset + section.size / 2] ^= 0x40;
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  LiveEngine::RecoveryReport report;
  Result<std::unique_ptr<LiveEngine>> recovered =
      LiveEngine::Recover(&store, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(report.deltas_replayed, 1u);
  EXPECT_EQ(report.deltas_dropped, 1u);
  EXPECT_EQ(report.index_sections_rebuilt, 0u);  // base untouched
  auto gen = (*recovered)->Acquire();
  EXPECT_FALSE(gen->FindTable("doomed_delta").ok());
  EXPECT_TRUE(gen->FindTable("healthy_delta").ok());
  EXPECT_EQ(gen->base_table_count(), base().num_tables());
}

// -------------------------------------------------------------- pipeline

TEST_F(LiveEngineTest, PipelinePublishesSubmittedTables) {
  auto live = MakeLive();
  IngestPipeline::Options popts;
  popts.batch_max_tables = 4;
  popts.batch_max_delay_ms = 1;
  IngestPipeline pipeline(live.get(), popts);

  const Table origin = base().table(0);
  std::future<Result<TableId>> via_table =
      pipeline.SubmitTable(Derived(0, "pipe_table"));
  std::future<Result<TableId>> via_csv = pipeline.SubmitCsvString(
      WriteCsvString(origin), "pipe_csv");
  std::future<Result<TableId>> bad_name =
      pipeline.SubmitTable(Derived(0, "pipe/slash"));
  std::future<Status> remove = pipeline.SubmitRemove(origin.name());

  Result<TableId> id1 = via_table.get();
  Result<TableId> id2 = via_csv.get();
  ASSERT_TRUE(id1.ok()) << id1.status();
  ASSERT_TRUE(id2.ok()) << id2.status();
  EXPECT_EQ(bad_name.get().status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(remove.get().ok());
  pipeline.Flush();

  auto gen = live->Acquire();
  EXPECT_TRUE(gen->FindTable("pipe_table").ok());
  EXPECT_TRUE(gen->FindTable("pipe_csv").ok());
  EXPECT_FALSE(gen->FindTable(origin.name()).ok());
  EXPECT_EQ(pipeline.queue_depth(), 0u);
}

TEST_F(LiveEngineTest, PipelineFailsFastWhenQueueFull) {
  auto live = MakeLive();
  IngestPipeline::Options popts;
  popts.queue_capacity = 0;  // everything rejects immediately
  IngestPipeline pipeline(live.get(), popts);
  std::future<Result<TableId>> f = pipeline.SubmitTable(Derived(0, "nope"));
  EXPECT_EQ(f.get().status().code(), StatusCode::kOverloaded);
  std::future<Status> r = pipeline.SubmitRemove("whatever");
  EXPECT_EQ(r.get().code(), StatusCode::kOverloaded);
}

TEST_F(LiveEngineTest, CompactorTriggersOnDeltaThreshold) {
  auto live = MakeLive();
  Compactor::Options copts;
  copts.max_delta_tables = 2;
  copts.poll_interval_ms = 5;
  Compactor compactor(live.get(), copts);
  ASSERT_TRUE(live->AddTable(Derived(0, "auto_a")).ok());
  ASSERT_TRUE(live->AddTable(Derived(0, "auto_b")).ok());
  // The compactor polls every 5ms; give the heavy rebuild generous time.
  for (int i = 0; i < 1000 && live->compactions() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  compactor.Stop();
  EXPECT_GE(live->compactions(), 1u);
  EXPECT_EQ(live->num_delta_tables(), 0u);
  EXPECT_GE(compactor.runs(), 1u);
  auto gen = live->Acquire();
  EXPECT_TRUE(gen->FindTable("auto_a").ok());
  EXPECT_TRUE(gen->FindTable("auto_b").ok());
  EXPECT_FALSE(gen->has_delta());
}

// --------------------------------------------------- service integration

TEST_F(LiveEngineTest, QueryServiceServesLiveEngineAcrossMutations) {
  auto live = MakeLive();
  serve::QueryService service(live.get(), serve::QueryService::Options{});

  const TableId origin = lake_->unionable_groups[0][0];
  const int tmpl = lake_->template_of[origin];
  serve::QueryRequest req;
  req.kind = serve::QueryKind::kKeyword;
  req.keyword = lake_->topic_of[tmpl];
  req.k = 50;

  serve::QueryResponse before = service.Execute(req);
  ASSERT_TRUE(before.status.ok()) << before.status;
  const size_t visible_before = before.tables.size();

  // Add through the live engine: the service picks it up with no restart,
  // and the stale cached answer is version-keyed away.
  ASSERT_TRUE(live->AddTable(Derived(origin, "service_delta")).ok());
  serve::QueryResponse after = service.Execute(req);
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_FALSE(after.cache_hit);
  auto gen = live->Acquire();
  const TableId delta_id = gen->FindTable("service_delta").value();
  EXPECT_TRUE(ContainsTable(after.tables, delta_id));
  EXPECT_GE(after.tables.size(), visible_before);
  EXPECT_GT(
      service.metrics().GetCounter("serve.ingest.delta_hits")->value(), 0u);

  // Same request again (no mutation in between) is a cache hit.
  serve::QueryResponse cached = service.Execute(req);
  ASSERT_TRUE(cached.status.ok());
  EXPECT_TRUE(cached.cache_hit);

  // Remove the origin: it disappears from served results immediately.
  ASSERT_TRUE(live->RemoveTable(base().table(origin).name()).ok());
  serve::QueryResponse removed = service.Execute(req);
  ASSERT_TRUE(removed.status.ok());
  EXPECT_FALSE(removed.cache_hit);
  EXPECT_FALSE(ContainsTable(removed.tables, origin));

  // Join and union also serve merged answers through the service.
  serve::QueryRequest join;
  join.kind = serve::QueryKind::kJoin;
  join.join_method = JoinMethod::kJosie;
  join.values = base().table(origin).column(0).DistinctStrings();
  join.k = 20;
  serve::QueryResponse jr = service.Execute(join);
  ASSERT_TRUE(jr.status.ok()) << jr.status;
  EXPECT_TRUE(ContainsColumnOf(jr.columns, delta_id));

  serve::QueryRequest uni;
  uni.kind = serve::QueryKind::kUnion;
  uni.union_method = UnionMethod::kStarmie;
  uni.union_table = &base().table(origin);
  uni.k = 20;
  serve::QueryResponse ur = service.Execute(uni);
  ASSERT_TRUE(ur.status.ok()) << ur.status;
  EXPECT_TRUE(ContainsTable(ur.tables, delta_id));
}

}  // namespace
}  // namespace lake::ingest
