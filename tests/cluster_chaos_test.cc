#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"
#include "util/failpoint.h"

namespace lake::cluster {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

/// Fault-injection suite for the cluster layer: replica death, erroring
/// replicas (failover), whole-shard death (degraded partial answers),
/// hung shards under a deadline budget, and online rebalancing. Each test
/// owns its cluster — chaos mutates health state.
class ClusterChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 11;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());
  }

  static void TearDownTestSuite() {
    delete lake_;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static const DataLakeCatalog& lake() { return lake_->catalog; }

  static ClusterEngine::Options ClusterOptions(size_t shards,
                                               size_t replicas) {
    ClusterEngine::Options opts;
    opts.num_shards = shards;
    opts.num_replicas = replicas;
    opts.engine.base_options = BaseOptions();
    opts.engine.kb = &lake_->kb;
    return opts;
  }

  static size_t FullK() { return lake().num_tables() + 8; }

  struct NamedHit {
    std::string name;
    double score = 0;
  };

  static std::vector<NamedHit> Canon(const std::vector<TableHit>& hits) {
    std::vector<NamedHit> out;
    for (const TableHit& h : hits) out.push_back({h.table, h.score});
    std::sort(out.begin(), out.end(), [](const NamedHit& a,
                                         const NamedHit& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.name < b.name;
    });
    return out;
  }

  static void ExpectSameHits(const std::vector<NamedHit>& expected,
                             const std::vector<NamedHit>& actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].name, actual[i].name) << "rank " << i;
      EXPECT_DOUBLE_EQ(expected[i].score, actual[i].score) << "rank " << i;
    }
  }

  static GeneratedLake* lake_;
};

GeneratedLake* ClusterChaosTest::lake_ = nullptr;

TEST_F(ClusterChaosTest, KilledReplicaCostsNothingWithASibling) {
  ClusterEngine cluster(lake(), ClusterOptions(2, /*replicas=*/2));
  const std::string& topic = lake_->topic_of[0];
  const TableQueryResponse healthy = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(healthy.status.ok()) << healthy.status;
  ASSERT_FALSE(healthy.hits.empty());

  // Kill replica 0 of every shard: the read path must route around it
  // with zero result impact — not even a degraded flag.
  for (uint32_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(cluster.KillReplica(s, 0).ok());
  }
  const TableQueryResponse after = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_FALSE(after.degraded);
  EXPECT_TRUE(after.missing_shards.empty());
  ExpectSameHits(Canon(healthy.hits), Canon(after.hits));
  for (const ShardTrace& t : after.traces) {
    EXPECT_EQ(t.replica, 1u);  // every shard served from the survivor
  }

  // Revived replicas rejoin the rotation (mutations kept applying while
  // dead, so no resync is needed).
  for (uint32_t s = 0; s < 2; ++s) {
    ASSERT_TRUE(cluster.ReviveReplica(s, 0).ok());
  }
  const auto health = cluster.Health();
  for (const auto& sh : health) EXPECT_EQ(sh.replicas_alive, 2u);
}

TEST_F(ClusterChaosTest, ErroringReplicaFailsOverWithinTheQuery) {
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/2);
  opts.max_failover_attempts = 3;
  ClusterEngine cluster(lake(), opts);
  const std::string& topic = lake_->topic_of[1];
  const TableQueryResponse healthy = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(healthy.status.ok()) << healthy.status;

  // Both replicas of shard 0 error exactly once, so whichever the
  // round-robin picks first fails, its sibling fails the retry, and the
  // third attempt (back on the first replica, fault budget spent)
  // succeeds — all inside one query, with exact results.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  spec.max_fires = 1;
  FailpointRegistry::Instance().Arm("cluster.exec.0.0", spec);
  FailpointRegistry::Instance().Arm("cluster.exec.0.1", spec);

  const TableQueryResponse after = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_FALSE(after.degraded);
  ExpectSameHits(Canon(healthy.hits), Canon(after.hits));
  size_t failovers = 0;
  for (const ShardTrace& t : after.traces) {
    if (t.shard == 0) {
      EXPECT_EQ(t.attempts, 3u);
      ++failovers;
    } else {
      EXPECT_EQ(t.attempts, 1u);
    }
  }
  EXPECT_EQ(failovers, 1u);
}

TEST_F(ClusterChaosTest, DeadShardDegradesInsteadOfFailing) {
  ClusterEngine cluster(lake(), ClusterOptions(3, /*replicas=*/1));
  const std::string& topic = lake_->topic_of[0];
  const TableQueryResponse healthy = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(healthy.status.ok()) << healthy.status;

  // Pick a shard that actually contributed hits, so its death is visible.
  ASSERT_FALSE(healthy.hits.empty());
  const uint32_t victim = healthy.hits[0].shard;
  ASSERT_TRUE(cluster.KillReplica(victim, 0).ok());

  const TableQueryResponse after = cluster.Keyword(topic, FullK());
  // Partial coverage, never an error: the two surviving shards answer.
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_TRUE(after.degraded);
  ASSERT_EQ(after.missing_shards.size(), 1u);
  EXPECT_EQ(after.missing_shards[0], victim);
  EXPECT_LT(after.hits.size(), healthy.hits.size());
  for (const TableHit& h : after.hits) {
    EXPECT_NE(h.shard, victim);
  }

  // Kill the other shards too: with nobody left the query finally errors.
  for (uint32_t s = 0; s < 3; ++s) {
    if (s != victim) ASSERT_TRUE(cluster.KillReplica(s, 0).ok());
  }
  const TableQueryResponse none = cluster.Keyword(topic, FullK());
  EXPECT_FALSE(none.status.ok());
  EXPECT_TRUE(none.hits.empty());
}

TEST_F(ClusterChaosTest, HungShardIsAbandonedAtItsDeadlineBudget) {
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/1);
  opts.shard_deadline = milliseconds(100);
  opts.max_failover_attempts = 1;
  ClusterEngine cluster(lake(), opts);

  // Shard 0's only replica hangs far past the per-shard budget. The
  // query must come back quickly with the other shard's hits, not hang.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDelay;
  spec.arg = 5000;
  spec.max_fires = 1;
  FailpointRegistry::Instance().Arm("cluster.exec.0.0", spec);

  const auto start = steady_clock::now();
  const TableQueryResponse got = cluster.Keyword(lake_->topic_of[0], FullK());
  const auto elapsed = steady_clock::now() - start;

  ASSERT_TRUE(got.status.ok()) << got.status;
  EXPECT_TRUE(got.degraded);
  ASSERT_EQ(got.missing_shards.size(), 1u);
  EXPECT_EQ(got.missing_shards[0], 0u);
  for (const TableHit& h : got.hits) EXPECT_EQ(h.shard, 1u);
  // Budget + grace is well under a second; the injected hang was 5s.
  EXPECT_LT(elapsed, milliseconds(2500));
}

TEST_F(ClusterChaosTest, QueryServiceSurfacesDegradedClusterAnswers) {
  ClusterEngine::Options opts = ClusterOptions(2, /*replicas=*/1);
  ClusterEngine cluster(lake(), opts);
  serve::QueryService service(&cluster, serve::QueryService::Options{});

  ASSERT_TRUE(cluster.KillReplica(0, 0).ok());

  serve::QueryRequest req;
  req.kind = serve::QueryKind::kKeyword;
  req.keyword = lake_->topic_of[0];
  req.k = FullK();
  const serve::QueryResponse response = service.Execute(req);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.missing_shards.size(), 1u);
  EXPECT_EQ(response.missing_shards[0], 0u);

  // Degraded partial answers must never be cached: the same query again
  // is a fresh execution, and once the shard revives it sees full
  // coverage immediately.
  EXPECT_FALSE(service.Execute(req).cache_hit);
  ASSERT_TRUE(cluster.ReviveReplica(0, 0).ok());
  const serve::QueryResponse healed = service.Execute(req);
  ASSERT_TRUE(healed.status.ok());
  EXPECT_FALSE(healed.degraded);
  EXPECT_FALSE(healed.cache_hit);

  // Service health reflects the (now healed) shard map.
  const auto health = service.Health();
  ASSERT_EQ(health.shards.size(), 2u);
  EXPECT_FALSE(health.degraded);
}

TEST_F(ClusterChaosTest, ServiceHealthFlagsShardWithNoLiveReplica) {
  ClusterEngine cluster(lake(), ClusterOptions(2, /*replicas=*/1));
  serve::QueryService service(&cluster, serve::QueryService::Options{});
  ASSERT_TRUE(cluster.KillReplica(1, 0).ok());
  const auto health = service.Health();
  EXPECT_TRUE(health.degraded);
  EXPECT_FALSE(health.ok);
}

TEST_F(ClusterChaosTest, AddShardLosesNoTables) {
  ClusterEngine cluster(lake(), ClusterOptions(2, /*replicas=*/1));
  const std::string& topic = lake_->topic_of[0];
  const TableQueryResponse before = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(before.status.ok()) << before.status;

  const Result<ClusterEngine::RebalanceStats> stats = cluster.AddShard();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->shard, 2u);
  EXPECT_EQ(stats->tables_total, lake().num_tables());
  EXPECT_EQ(cluster.num_shards(), 3u);
  EXPECT_EQ(cluster.TotalVisibleTables(), lake().num_tables());

  // Exactly the same tables answer. (Scores are compared as membership,
  // not values: donors tombstone their moved tables but keep them in the
  // base BM25 corpus statistics until compaction — the same bounded IDF
  // drift a single-node remove has.)
  const TableQueryResponse after = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(after.status.ok()) << after.status;
  std::vector<std::string> names_before;
  std::vector<std::string> names_after;
  for (const TableHit& h : before.hits) names_before.push_back(h.table);
  for (const TableHit& h : after.hits) names_after.push_back(h.table);
  std::sort(names_before.begin(), names_before.end());
  std::sort(names_after.begin(), names_after.end());
  EXPECT_EQ(names_before, names_after);
  for (const TableHit& h : after.hits) {
    EXPECT_EQ(h.shard, cluster.OwnerOf(h.table));
  }
}

TEST_F(ClusterChaosTest, RemoveShardRedistributesItsTables) {
  ClusterEngine cluster(lake(), ClusterOptions(3, /*replicas=*/1));
  const std::string& topic = lake_->topic_of[1];
  const TableQueryResponse before = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(before.status.ok()) << before.status;

  const Result<ClusterEngine::RebalanceStats> stats = cluster.RemoveShard(1);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(cluster.num_shards(), 2u);
  EXPECT_EQ(cluster.TotalVisibleTables(), lake().num_tables());

  const TableQueryResponse after = cluster.Keyword(topic, FullK());
  ASSERT_TRUE(after.status.ok()) << after.status;
  ExpectSameHits(Canon(before.hits), Canon(after.hits));
  for (const TableHit& h : after.hits) {
    EXPECT_NE(h.shard, 1u);
  }

  EXPECT_EQ(cluster.RemoveShard(7).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(cluster.RemoveShard(0).ok());
  // The last shard must not be removable — the lake has to live somewhere.
  EXPECT_EQ(cluster.RemoveShard(2).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClusterChaosTest, RebalanceUnderIngestKeepsEveryTable) {
  ClusterEngine cluster(lake(), ClusterOptions(2, /*replicas=*/1));
  // Interleave ingests and topology changes; the visible set must track
  // exactly (base + surviving adds) with no loss at any step.
  size_t added = 0;
  for (int round = 0; round < 3; ++round) {
    Table derived = lake().table(round);
    derived.set_name("rebalance_probe_" + std::to_string(round));
    ingest::LiveEngine::Batch batch;
    batch.adds.push_back(std::move(derived));
    ASSERT_TRUE(cluster.ApplyBatch(std::move(batch)).adds[0].ok());
    ++added;

    if (round == 0) {
      ASSERT_TRUE(cluster.AddShard().ok());
    } else if (round == 1) {
      ASSERT_TRUE(cluster.RemoveShard(0).ok());
    }
    EXPECT_EQ(cluster.TotalVisibleTables(), lake().num_tables() + added)
        << "round " << round;
  }

  // Every probe is still findable by union search after all the moves.
  const TableQueryResponse got =
      cluster.Unionable(lake().table(0), UnionMethod::kTus, FullK() + 3);
  ASSERT_TRUE(got.status.ok()) << got.status;
  size_t probes = 0;
  for (const TableHit& h : got.hits) {
    if (h.table.rfind("rebalance_probe_", 0) == 0) ++probes;
    EXPECT_EQ(h.shard, cluster.OwnerOf(h.table));
  }
  EXPECT_GT(probes, 0u);
}

}  // namespace
}  // namespace lake::cluster
