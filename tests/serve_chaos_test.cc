// Overload-resilience chaos tests: the admission controller and circuit
// breaker state machines driven with synthetic clocks, then end-to-end
// fault injection through QueryService — a hung or erroring modality must
// trip its breaker, leave every other modality answering within deadline,
// brown out to the survey's cheap fallback, and re-close once the fault
// clears.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/query_service.h"
#include "util/failpoint.h"

namespace lake::serve {
namespace {

using std::chrono::milliseconds;

// Synthetic steady_clock instants: both state machines take explicit `now`
// so tests never sleep. Offsets start at 1s because the epoch value is the
// machines' "not set" sentinel.
AdmissionController::Clock::time_point At(int64_t ms) {
  return AdmissionController::Clock::time_point{} + milliseconds(1000 + ms);
}

// ------------------------------------------------------------- admission

TEST(AdmissionControllerTest, ZeroInitialLimitStartsAtMax) {
  AdmissionController::Options opts;
  opts.initial_limit = 0;
  opts.max_limit = 32;
  AdmissionController admission(opts);
  EXPECT_EQ(admission.limit(), 32u);
}

TEST(AdmissionControllerTest, AdmitsUpToLimitThenSheds) {
  AdmissionController::Options opts;
  opts.initial_limit = 3;
  opts.min_limit = 1;
  opts.batch_headroom = 1.0;  // no batch distinction in this test
  AdmissionController admission(opts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admission.TryAdmit(Priority::kInteractive),
              AdmissionController::Decision::kAdmit);
  }
  EXPECT_EQ(admission.TryAdmit(Priority::kInteractive),
            AdmissionController::Decision::kShedLimit);
  EXPECT_EQ(admission.in_flight(), 3u);
  admission.Release();
  EXPECT_EQ(admission.TryAdmit(Priority::kInteractive),
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionControllerTest, BatchHeadroomShedsBatchBeforeInteractive) {
  AdmissionController::Options opts;
  opts.initial_limit = 4;
  opts.min_limit = 1;
  opts.batch_headroom = 0.5;  // batch may hold at most 2 of the 4 slots
  AdmissionController admission(opts);
  EXPECT_EQ(admission.TryAdmit(Priority::kBatch),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.TryAdmit(Priority::kBatch),
            AdmissionController::Decision::kAdmit);
  // Batch headroom exhausted while interactive capacity remains.
  EXPECT_EQ(admission.TryAdmit(Priority::kBatch),
            AdmissionController::Decision::kShedBatch);
  EXPECT_EQ(admission.TryAdmit(Priority::kInteractive),
            AdmissionController::Decision::kAdmit);
  EXPECT_EQ(admission.TryAdmit(Priority::kInteractive),
            AdmissionController::Decision::kAdmit);
  // Fully saturated: everyone sheds on the hard limit now.
  EXPECT_EQ(admission.TryAdmit(Priority::kInteractive),
            AdmissionController::Decision::kShedLimit);
  EXPECT_EQ(admission.TryAdmit(Priority::kBatch),
            AdmissionController::Decision::kShedLimit);
}

TEST(AdmissionControllerTest, AimdDecreasesOnCongestionWithCooldown) {
  AdmissionController::Options opts;
  opts.initial_limit = 100;
  opts.min_limit = 4;
  opts.max_limit = 256;
  opts.latency_target_ms = 50;
  opts.decrease_factor = 0.5;
  opts.decrease_cooldown = milliseconds(100);
  AdmissionController admission(opts);

  admission.OnCompletion(/*latency_ms=*/200, /*congested=*/false, At(0));
  EXPECT_EQ(admission.limit(), 50u);  // over target: multiplicative decrease
  admission.OnCompletion(200, false, At(50));
  EXPECT_EQ(admission.limit(), 50u);  // within cooldown: no second decrease
  admission.OnCompletion(10, true, At(200));
  EXPECT_EQ(admission.limit(), 25u);  // congested flag forces the decrease
  for (int i = 0; i < 20; ++i) {
    admission.OnCompletion(200, true, At(300 + 200 * i));
  }
  EXPECT_EQ(admission.limit(), opts.min_limit);  // floor holds
}

TEST(AdmissionControllerTest, AimdGrowsAdditivelyOnGoodCompletions) {
  AdmissionController::Options opts;
  opts.initial_limit = 4;
  opts.min_limit = 4;
  opts.max_limit = 8;
  opts.latency_target_ms = 50;
  AdmissionController admission(opts);
  for (int i = 0; i < 200; ++i) {
    admission.OnCompletion(/*latency_ms=*/1.0, /*congested=*/false, At(i));
  }
  EXPECT_EQ(admission.limit(), 8u);  // grew ~1/limit per completion to cap
}

TEST(AdmissionControllerTest, CodelDropsAfterSustainedSojournAboveTarget) {
  AdmissionController::Options opts;
  opts.initial_limit = 16;
  opts.codel_target = milliseconds(10);
  opts.codel_interval = milliseconds(100);
  AdmissionController admission(opts);
  const auto over = milliseconds(20);

  // Under target: never drops.
  EXPECT_FALSE(admission.ShouldDrop(Priority::kInteractive, milliseconds(5),
                                    At(0)));
  // First excursion above target arms the interval, no drop yet.
  EXPECT_FALSE(admission.ShouldDrop(Priority::kInteractive, over, At(0)));
  EXPECT_FALSE(admission.ShouldDrop(Priority::kInteractive, over, At(50)));
  // Sojourn stayed above target for a full interval: dropping starts.
  EXPECT_TRUE(admission.ShouldDrop(Priority::kInteractive, over, At(100)));
  // While dropping, every batch query sheds...
  EXPECT_TRUE(admission.ShouldDrop(Priority::kBatch, over, At(101)));
  // ...but interactive only sheds on the sqrt-control-law cadence.
  EXPECT_FALSE(admission.ShouldDrop(Priority::kInteractive, over, At(150)));
  EXPECT_TRUE(admission.ShouldDrop(Priority::kInteractive, over, At(200)));
  // Sojourn back under target: dropping stops immediately.
  EXPECT_FALSE(admission.ShouldDrop(Priority::kInteractive, milliseconds(5),
                                    At(250)));
  EXPECT_FALSE(admission.ShouldDrop(Priority::kBatch, milliseconds(5),
                                    At(251)));
  // A fresh excursion needs a fresh interval before dropping again.
  EXPECT_FALSE(admission.ShouldDrop(Priority::kInteractive, over, At(300)));
}

// dropping() mirrors the CoDel state so the serving layer can refuse new
// arrivals at the door while the queue is already shedding at dequeue.
TEST(AdmissionControllerTest, DroppingStateIsVisibleForDoorShedding) {
  AdmissionController::Options opts;
  opts.initial_limit = 16;
  opts.codel_target = milliseconds(10);
  opts.codel_interval = milliseconds(100);
  AdmissionController admission(opts);
  const auto over = milliseconds(20);

  EXPECT_FALSE(admission.dropping());
  admission.ShouldDrop(Priority::kInteractive, over, At(0));  // arms interval
  EXPECT_FALSE(admission.dropping());
  admission.ShouldDrop(Priority::kInteractive, over, At(100));  // trips
  EXPECT_TRUE(admission.dropping());
  // A low-sojourn dequeue clears the state — which is why door shedding
  // must leave the queue drainable.
  admission.ShouldDrop(Priority::kInteractive, milliseconds(5), At(150));
  EXPECT_FALSE(admission.dropping());
}

// --------------------------------------------------------------- breaker

CircuitBreaker::Options FastBreaker() {
  CircuitBreaker::Options opts;
  opts.window_buckets = 4;
  opts.bucket_width = milliseconds(250);
  opts.min_volume = 4;
  opts.failure_threshold = 0.5;
  opts.open_base = milliseconds(100);
  opts.open_max = milliseconds(400);
  opts.half_open_max_probes = 1;
  opts.close_after_successes = 2;
  return opts;
}

TEST(CircuitBreakerTest, StaysClosedBelowMinVolume) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(i));
  EXPECT_EQ(breaker.state(At(10)), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.Allow(At(10)), CircuitBreaker::Permit::kAllowed);
  EXPECT_EQ(breaker.failure_rate(At(10)), 0.0);  // below min_volume
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, TripsAtThresholdAndDeniesWhileOpen) {
  CircuitBreaker breaker(FastBreaker());
  breaker.RecordSuccess(At(0));
  breaker.RecordSuccess(At(1));
  breaker.RecordFailure(At(2));
  EXPECT_EQ(breaker.state(At(3)), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(At(3));  // 2 failures / 4 outcomes = threshold
  EXPECT_EQ(breaker.state(At(4)), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.Allow(At(50)), CircuitBreaker::Permit::kDenied);
}

TEST(CircuitBreakerTest, HalfOpenProbesThenCloses) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(At(i));
  ASSERT_EQ(breaker.state(At(5)), CircuitBreaker::State::kOpen);

  // Backoff (open_base = 100ms) elapses: one probe slot, not two.
  EXPECT_EQ(breaker.Allow(At(110)), CircuitBreaker::Permit::kProbe);
  EXPECT_EQ(breaker.Allow(At(111)), CircuitBreaker::Permit::kDenied);
  breaker.RecordSuccess(At(120));
  EXPECT_EQ(breaker.state(At(121)), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Allow(At(122)), CircuitBreaker::Permit::kProbe);
  breaker.RecordSuccess(At(130));  // second success closes
  EXPECT_EQ(breaker.state(At(131)), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.Allow(At(132)), CircuitBreaker::Permit::kAllowed);
}

TEST(CircuitBreakerTest, ProbeFailureReopensWithLongerBackoff) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(At(i));
  ASSERT_EQ(breaker.Allow(At(110)), CircuitBreaker::Permit::kProbe);
  breaker.RecordFailure(At(115));  // failed probe: reopen, backoff doubles
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.Allow(At(115 + 150)),
            CircuitBreaker::Permit::kDenied);  // 200ms backoff still running
  EXPECT_EQ(breaker.Allow(At(115 + 210)), CircuitBreaker::Permit::kProbe);
  // Backoff is capped at open_max even after many reopens.
  breaker.RecordFailure(At(330));
  breaker.Allow(At(330 + 410));  // 400ms cap (not 800ms)
  EXPECT_EQ(breaker.state(At(330 + 411)), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, NeutralOutcomeReleasesProbeWithoutJudging) {
  CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 4; ++i) breaker.RecordFailure(At(i));
  ASSERT_EQ(breaker.Allow(At(110)), CircuitBreaker::Permit::kProbe);
  breaker.RecordNeutral(At(112));  // caller cancelled: says nothing
  EXPECT_EQ(breaker.state(At(113)), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Allow(At(114)), CircuitBreaker::Permit::kProbe);
  breaker.RecordSuccess(At(115));
  breaker.Allow(At(116));
  breaker.RecordSuccess(At(117));
  EXPECT_EQ(breaker.state(At(118)), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, OldOutcomesAgeOutOfTheWindow) {
  CircuitBreaker breaker(FastBreaker());
  // Three failures, then a long quiet gap: the window (4 x 250ms) clears,
  // so later sparse failures cannot combine with the stale ones to trip.
  for (int i = 0; i < 3; ++i) breaker.RecordFailure(At(i));
  breaker.RecordFailure(At(5000));
  EXPECT_EQ(breaker.state(At(5001)), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

// ---------------------------------------------------- end-to-end chaos

/// Lake + engine with both quality tiers of each modality pair built:
/// Starmie and its TUS fallback for union, JOSIE and its LSH-Ensemble
/// fallback for join.
class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions opts;
    opts.seed = 23;
    opts.num_domains = 6;
    opts.num_templates = 3;
    opts.tables_per_template = 4;
    opts.min_rows = 30;
    opts.max_rows = 60;
    lake_ = new GeneratedLake(LakeGenerator(opts).Generate());

    DiscoveryEngine::Options eopts;
    eopts.build_pexeso = false;
    eopts.build_mate = false;
    eopts.build_santos = false;
    eopts.build_d3l = false;
    eopts.build_correlated = false;
    eopts.synthesize_kb = false;
    eopts.train_annotator = false;
    engine_ = new DiscoveryEngine(&lake_->catalog, &lake_->kb, eopts);
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete lake_;
    engine_ = nullptr;
    lake_ = nullptr;
  }

  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }

  static QueryRequest JosieJoin() {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.join_method = JoinMethod::kJosie;
    req.values = lake_->catalog.table(0).column(0).DistinctStrings();
    req.k = 5;
    req.bypass_cache = true;  // every query must reach the breakers
    return req;
  }

  static QueryRequest StarmieUnion() {
    QueryRequest req;
    req.kind = QueryKind::kUnion;
    req.union_method = UnionMethod::kStarmie;
    req.union_table = &lake_->catalog.table(0);
    req.exclude = 0;
    req.k = 5;
    req.bypass_cache = true;
    return req;
  }

  static QueryRequest Keyword() {
    QueryRequest req;
    req.kind = QueryKind::kKeyword;
    req.keyword = lake_->topic_of[0];
    req.k = 5;
    req.bypass_cache = true;
    return req;
  }

  static const QueryService::BreakerStatus* FindBreaker(
      const QueryService::HealthSnapshot& health, const std::string& name) {
    for (const auto& b : health.breakers) {
      if (b.modality == name) return &b;
    }
    return nullptr;
  }

  static GeneratedLake* lake_;
  static DiscoveryEngine* engine_;
};

GeneratedLake* ServeChaosTest::lake_ = nullptr;
DiscoveryEngine* ServeChaosTest::engine_ = nullptr;

TEST_F(ServeChaosTest, ErrorFaultBrownsOutJoinThenBreakerRecloses) {
  QueryService::Options opts;
  opts.num_workers = 2;
  opts.breaker.window_buckets = 4;
  opts.breaker.bucket_width = milliseconds(500);
  opts.breaker.min_volume = 3;
  opts.breaker.failure_threshold = 0.5;
  opts.breaker.open_base = milliseconds(250);
  opts.breaker.open_max = milliseconds(1000);
  opts.breaker.close_after_successes = 1;
  QueryService service(engine_, opts);

  // 100% error fault on the JOSIE modality: every call fails instantly.
  FailpointRegistry::Instance().Arm(
      "serve.exec.join.josie",
      FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/0, 1.0});

  // Failure brownout: the primary errors, budget remains, so LSH Ensemble
  // answers and the response is flagged degraded.
  uint64_t degraded_seen = 0;
  for (int i = 0; i < 3; ++i) {
    const QueryResponse response = service.Execute(JosieJoin());
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_TRUE(response.degraded);
    // The sampling tier is the preferred join brownout; its answers are
    // flagged approximate on top of degraded.
    EXPECT_EQ(response.served_by, "join.approx");
    EXPECT_TRUE(response.approx);
    EXPECT_FALSE(response.columns.empty());
    ++degraded_seen;
  }

  // Three straight failures tripped the breaker; while open, queries never
  // touch JOSIE (fast-fail straight into the fallback).
  QueryService::HealthSnapshot health = service.Health();
  EXPECT_FALSE(health.ok);
  EXPECT_EQ(health.open_breakers, 1u);
  const QueryService::BreakerStatus* josie =
      FindBreaker(health, "join.josie");
  ASSERT_NE(josie, nullptr);
  EXPECT_EQ(josie->state, CircuitBreaker::State::kOpen);
  EXPECT_GE(josie->trips, 1u);

  const uint64_t fired_before =
      FailpointRegistry::Instance().fires("serve.exec.join.josie");
  const QueryResponse fast = service.Execute(JosieJoin());
  ASSERT_TRUE(fast.status.ok()) << fast.status;
  EXPECT_TRUE(fast.degraded);
  EXPECT_EQ(fast.served_by, "join.approx");
  ++degraded_seen;
  EXPECT_EQ(FailpointRegistry::Instance().fires("serve.exec.join.josie"),
            fired_before);  // open breaker: primary not even attempted
  EXPECT_GE(service.metrics().GetCounter("serve.breaker.fast_fail")->value(),
            1u);

  // A client that insists on the exact method gets kUnavailable instead of
  // a silent downgrade.
  QueryRequest exact = JosieJoin();
  exact.require_exact_method = true;
  EXPECT_EQ(service.Execute(exact).status.code(), StatusCode::kUnavailable);
  EXPECT_GE(service.metrics().GetCounter("serve.queries.unavailable")->value(),
            1u);

  // Isolation: unrelated modalities are untouched by the open breaker.
  const QueryResponse keyword = service.Execute(Keyword());
  ASSERT_TRUE(keyword.status.ok());
  EXPECT_FALSE(keyword.degraded);
  const QueryResponse union_query = service.Execute(StarmieUnion());
  ASSERT_TRUE(union_query.status.ok());
  EXPECT_FALSE(union_query.degraded);
  EXPECT_EQ(union_query.served_by, "union.starmie");

  // The brownout counters match the degraded responses exactly.
  EXPECT_EQ(service.metrics().GetCounter("serve.brownout")->value(),
            degraded_seen);
  EXPECT_EQ(service.metrics().GetCounter("serve.brownout.join")->value(),
            degraded_seen);
  EXPECT_EQ(service.metrics().GetCounter("serve.brownout.union")->value(), 0u);

  // Fault clears; after the backoff a probe reaches JOSIE, succeeds, and
  // closes the breaker — full-quality serving resumes.
  FailpointRegistry::Instance().Disarm("serve.exec.join.josie");
  std::this_thread::sleep_for(milliseconds(300));
  const QueryResponse probe = service.Execute(JosieJoin());
  ASSERT_TRUE(probe.status.ok()) << probe.status;
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(probe.served_by, "join.josie");
  health = service.Health();
  EXPECT_TRUE(health.ok);
  EXPECT_EQ(health.open_breakers, 0u);
  const QueryService::BreakerStatus* recovered =
      FindBreaker(health, "join.josie");
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->state, CircuitBreaker::State::kClosed);
}

TEST_F(ServeChaosTest, LatencyFaultIsIsolatedAndBrownsOutUnion) {
  QueryService::Options opts;
  opts.num_workers = 2;
  opts.breaker.window_buckets = 4;
  opts.breaker.bucket_width = milliseconds(500);
  opts.breaker.min_volume = 2;
  opts.breaker.failure_threshold = 0.5;
  opts.breaker.open_base = milliseconds(400);
  opts.breaker.open_max = milliseconds(1000);
  opts.breaker.close_after_successes = 2;
  QueryService service(engine_, opts);

  const auto deadline = milliseconds(100);

  // 100% latency fault: every Starmie call hangs for 5s — far past any
  // query deadline — until disarmed.
  FailpointRegistry::Instance().Arm(
      "serve.exec.union.starmie",
      FaultSpec{FaultSpec::Kind::kDelay, 0, /*arg=*/5000, /*max_fires=*/0,
                1.0});

  // A hung Starmie query occupies one worker; the other modality answers
  // within its deadline on the other worker (isolation), and the hung
  // query unwinds at ITS deadline, not after the full 5s stall.
  QueryRequest hung = StarmieUnion();
  hung.deadline = deadline;
  Result<SubmittedQuery> submitted = service.Submit(std::move(hung));
  ASSERT_TRUE(submitted.ok());

  QueryRequest join = JosieJoin();
  join.deadline = deadline;
  const QueryResponse join_response = service.Execute(std::move(join));
  ASSERT_TRUE(join_response.status.ok()) << join_response.status;
  EXPECT_FALSE(join_response.degraded);
  EXPECT_LT(join_response.latency_ms, 100.0);

  const QueryResponse hung_response = submitted->response.get();
  EXPECT_EQ(hung_response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(hung_response.latency_ms, 1000.0);  // unwound at the deadline

  // A second deadline death reaches min_volume and trips the breaker.
  QueryRequest second = StarmieUnion();
  second.deadline = deadline;
  EXPECT_EQ(service.Execute(std::move(second)).status.code(),
            StatusCode::kDeadlineExceeded);
  QueryService::HealthSnapshot health = service.Health();
  const QueryService::BreakerStatus* starmie =
      FindBreaker(health, "union.starmie");
  ASSERT_NE(starmie, nullptr);
  EXPECT_EQ(starmie->state, CircuitBreaker::State::kOpen);
  EXPECT_FALSE(health.ok);

  // While open: brownout serves TUS, degraded, comfortably inside the
  // deadline (the hung primary is never attempted).
  QueryRequest browned = StarmieUnion();
  browned.deadline = deadline;
  const QueryResponse degraded = service.Execute(std::move(browned));
  ASSERT_TRUE(degraded.status.ok()) << degraded.status;
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.served_by, "union.tus");
  EXPECT_FALSE(degraded.tables.empty());
  EXPECT_LT(degraded.latency_ms, 90.0);
  EXPECT_EQ(service.metrics().GetCounter("serve.brownout.union")->value(),
            1u);
  EXPECT_EQ(service.metrics().GetCounter("serve.brownout")->value(), 1u);
  EXPECT_GE(FailpointRegistry::Instance().fires("serve.exec.union.starmie"),
            2u);

  // Fault clears; the breaker needs two probe successes to close.
  FailpointRegistry::Instance().Disarm("serve.exec.union.starmie");
  std::this_thread::sleep_for(milliseconds(450));
  for (int i = 0; i < 2; ++i) {
    const QueryResponse probe = service.Execute(StarmieUnion());
    ASSERT_TRUE(probe.status.ok()) << probe.status;
    EXPECT_FALSE(probe.degraded);
    EXPECT_EQ(probe.served_by, "union.starmie");
  }
  health = service.Health();
  EXPECT_TRUE(health.ok);
  const QueryService::BreakerStatus* recovered =
      FindBreaker(health, "union.starmie");
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->state, CircuitBreaker::State::kClosed);
}

TEST_F(ServeChaosTest, ProbabilisticFaultIsSeededAndBounded) {
  // A flaky fault (30%, 5 fires max) drawn from the seeded registry RNG:
  // the exact fire pattern is reproducible for a fixed seed, and the fire
  // budget stops it without a disarm.
  FailpointRegistry::Instance().Reseed(42);
  FailpointRegistry::Instance().Arm(
      "chaos.flaky",
      FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/5, 0.3});
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    if (!ExecFailpoint("chaos.flaky").ok()) ++fired;
  }
  EXPECT_EQ(fired, 5);  // budget exhausted despite 200 eligible hits
  EXPECT_EQ(FailpointRegistry::Instance().fires("chaos.flaky"), 5u);

  // Same seed, same arm: same hit indices fire.
  FailpointRegistry::Instance().Reseed(42);
  FailpointRegistry::Instance().Arm(
      "chaos.flaky2",
      FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/0, 0.3});
  std::vector<int> pattern;
  for (int i = 0; i < 50; ++i) {
    if (!ExecFailpoint("chaos.flaky2").ok()) pattern.push_back(i);
  }
  FailpointRegistry::Instance().Reseed(42);
  FailpointRegistry::Instance().Arm(
      "chaos.flaky3",
      FaultSpec{FaultSpec::Kind::kError, 0, 0, /*max_fires=*/0, 0.3});
  std::vector<int> replay;
  for (int i = 0; i < 50; ++i) {
    if (!ExecFailpoint("chaos.flaky3").ok()) replay.push_back(i);
  }
  EXPECT_EQ(pattern, replay);
  EXPECT_FALSE(pattern.empty());
}

TEST_F(ServeChaosTest, AdaptiveLimitShrinksUnderDeadlineDeaths) {
  // Under a 100%-latency fault with tight deadlines, every completion is a
  // deadline death: the AIMD loop must walk the concurrency limit down
  // from max_pending toward min_limit.
  QueryService::Options opts;
  opts.num_workers = 2;
  opts.max_pending = 64;
  opts.admission.min_limit = 4;
  opts.admission.decrease_factor = 0.5;
  opts.admission.decrease_cooldown = milliseconds(10);
  opts.enable_brownout = false;  // keep every query on the hung primary
  opts.enable_breakers = false;  // isolate the AIMD signal
  QueryService service(engine_, opts);
  ASSERT_EQ(service.admission().limit(), 64u);

  FailpointRegistry::Instance().Arm(
      "serve.exec.union.starmie",
      FaultSpec{FaultSpec::Kind::kDelay, 0, /*arg=*/5000, /*max_fires=*/0,
                1.0});
  for (int i = 0; i < 6; ++i) {
    QueryRequest req = StarmieUnion();
    req.deadline = milliseconds(30);
    EXPECT_EQ(service.Execute(std::move(req)).status.code(),
              StatusCode::kDeadlineExceeded);
  }
  EXPECT_LT(service.admission().limit(), 64u);
  EXPECT_GE(service.admission().limit(),
            opts.admission.min_limit);
}

}  // namespace
}  // namespace lake::serve
