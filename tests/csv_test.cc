#include <gtest/gtest.h>

#include <filesystem>

#include "table/csv.h"
#include "util/random.h"
#include "util/string_util.h"

namespace lake {
namespace {

using internal_csv::ParseRows;

TEST(CsvParseTest, SimpleRows) {
  auto rows = ParseRows("a,b\n1,2\n", ',');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, QuotedFieldWithDelimiter) {
  auto rows = ParseRows("\"a,b\",c\n", ',');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "c");
}

TEST(CsvParseTest, EscapedQuotes) {
  auto rows = ParseRows("\"say \"\"hi\"\"\"\n", ',');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvParseTest, NewlineInsideQuotes) {
  auto rows = ParseRows("\"line1\nline2\",x\n", ',');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfRows) {
  auto rows = ParseRows("a,b\r\n1,2\r\n", ',');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvParseTest, MissingFinalNewline) {
  auto rows = ParseRows("a,b\n1,2", ',');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvParseTest, EmptyLinesSkipped) {
  auto rows = ParseRows("a\n\n\nb\n", ',');
  ASSERT_EQ(rows.size(), 2u);
}

TEST(CsvParseTest, CustomDelimiter) {
  auto rows = ParseRows("a;b\n1;2\n", ';');
  EXPECT_EQ(rows[0].size(), 2u);
}

TEST(CsvReadTest, InferTypes) {
  auto t = ReadCsvString("id,score,name\n1,0.5,ann\n2,0.7,bob\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).type(), DataType::kInt);
  EXPECT_EQ(t->column(1).type(), DataType::kDouble);
  EXPECT_EQ(t->column(2).type(), DataType::kString);
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvReadTest, NoHeader) {
  CsvOptions opts;
  opts.has_header = false;
  auto t = ReadCsvString("1,2\n3,4\n", "t", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).name(), "col0");
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvReadTest, RaggedRowsPadded) {
  auto t = ReadCsvString("a,b,c\n1,2\n1,2,3,4\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 3u);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_TRUE(t->column(2).cell(0).is_null());  // padded short row
}

TEST(CsvReadTest, EmptyHeaderNamesReplaced) {
  auto t = ReadCsvString(",b\n1,2\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).name(), "col0");
}

TEST(CsvReadTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("", "t").ok());
}

TEST(CsvReadTest, NoTypeInference) {
  CsvOptions opts;
  opts.infer_types = false;
  auto t = ReadCsvString("a\n1\n", "t", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).type(), DataType::kString);
}

TEST(CsvWriteTest, RoundTrip) {
  const std::string csv =
      "name,desc,score\n"
      "ann,\"likes, commas\",1.5\n"
      "bob,\"has \"\"quotes\"\"\",2\n";
  auto t = ReadCsvString(csv, "t");
  ASSERT_TRUE(t.ok());
  auto t2 = ReadCsvString(WriteCsvString(*t), "t2");
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t2->num_rows(), t->num_rows());
  ASSERT_EQ(t2->num_columns(), t->num_columns());
  for (size_t c = 0; c < t->num_columns(); ++c) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      EXPECT_EQ(t2->column(c).cell(r).ToString(),
                t->column(c).cell(r).ToString());
    }
  }
}

TEST(CsvFileTest, WriteAndReadFile) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "lakefind_csv_test.csv";
  auto t = ReadCsvString("a,b\n1,x\n", "t");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(WriteCsvFile(*t, path.string()).ok());
  auto t2 = ReadCsvFile(path.string());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->name(), "lakefind_csv_test");
  EXPECT_EQ(t2->metadata().source, path.string());
  EXPECT_EQ(t2->num_rows(), 1u);
  fs::remove(path);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/path.csv").ok());
}

// Property: random tables survive a write/read round trip cell-for-cell.
class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripProperty, RandomTableRoundTrips) {
  Rng rng(GetParam());
  const size_t cols = 1 + rng.NextBounded(5);
  const size_t rows = rng.NextBounded(20);
  Table t("prop");
  const std::string charset = "abc,\"\n xyz01";
  for (size_t c = 0; c < cols; ++c) {
    Column col("c" + std::to_string(c), DataType::kString);
    for (size_t r = 0; r < rows; ++r) {
      const size_t len = 1 + rng.NextBounded(8);
      std::string s;
      for (size_t i = 0; i < len; ++i) {
        s += charset[rng.NextBounded(charset.size())];
      }
      col.Append(Value(s));
    }
    ASSERT_TRUE(t.AddColumn(std::move(col)).ok());
  }
  auto t2 = ReadCsvString(WriteCsvString(t), "prop2");
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t2->num_columns(), cols);
  ASSERT_EQ(t2->num_rows(), rows);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      // Cells whose trimmed form differs (leading/trailing spaces) are the
      // one canonicalization CSV ingestion applies; compare trimmed.
      EXPECT_EQ(std::string(TrimAscii(t2->column(c).cell(r).ToString())),
                std::string(TrimAscii(t.column(c).cell(r).ToString())));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lake
