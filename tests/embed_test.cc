#include <gtest/gtest.h>

#include <cmath>

#include "embed/column_encoder.h"
#include "embed/contextual_encoder.h"
#include "embed/table_encoder.h"
#include "embed/word_embedding.h"
#include "table/table.h"
#include "util/logging.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

TEST(WordEmbeddingTest, DeterministicUnitNorm) {
  WordEmbedding words;
  const Vector a = words.EmbedToken("london");
  const Vector b = words.EmbedToken("london");
  EXPECT_EQ(a, b);
  EXPECT_NEAR(Norm(a), 1.0, 1e-5);
}

TEST(WordEmbeddingTest, EmptyTokenIsZero) {
  WordEmbedding words;
  EXPECT_DOUBLE_EQ(Norm(words.EmbedToken("")), 0.0);
  EXPECT_DOUBLE_EQ(Norm(words.EmbedTokens({})), 0.0);
}

TEST(WordEmbeddingTest, SharedMorphologyMoreSimilar) {
  WordEmbedding words;
  // Same "domain" morphology (shared syllables) vs unrelated surface.
  const double same =
      CosineSimilarity(words.EmbedToken("kelomira"), words.EmbedToken("kelomina"));
  const double diff =
      CosineSimilarity(words.EmbedToken("kelomira"), words.EmbedToken("ztvprqx"));
  EXPECT_GT(same, diff);
  EXPECT_GT(same, 0.3);
}

TEST(WordEmbeddingTest, SeedChangesSpace) {
  WordEmbedding a(WordEmbedding::Options{.seed = 1});
  WordEmbedding b(WordEmbedding::Options{.seed = 2});
  EXPECT_NE(a.EmbedToken("x"), b.EmbedToken("x"));
}

TEST(WordEmbeddingTest, TextAveragesTokens) {
  WordEmbedding words;
  const Vector t = words.EmbedText("london paris");
  EXPECT_NEAR(Norm(t), 1.0, 1e-5);
  EXPECT_GT(CosineSimilarity(t, words.EmbedToken("london")), 0.2);
}

TEST(ColumnEncoderTest, SimilarColumnsCloser) {
  WordEmbedding words;
  ColumnEncoder enc(&words);
  const Column a = MakeColumn("city", {"kelora", "kelavi", "keluna"});
  const Column b = MakeColumn("town", {"kelora", "kelavi", "keluva"});
  const Column c = MakeColumn("metric", {"zzt991", "qqp442", "wwx13"});
  const Vector va = enc.Encode(a);
  EXPECT_GT(CosineSimilarity(va, enc.Encode(b)),
            CosineSimilarity(va, enc.Encode(c)));
}

TEST(ColumnEncoderTest, NameWeightMixesIn) {
  WordEmbedding words;
  ColumnEncoder with_name(&words, ColumnEncoder::Options{256, 0.5});
  ColumnEncoder without_name(&words, ColumnEncoder::Options{256, 0.0});
  const Column a = MakeColumn("population", {"x1", "x2"});
  const Column b = MakeColumn("elevation", {"x1", "x2"});
  // Without names the embeddings agree; with names they diverge.
  EXPECT_NEAR(
      CosineSimilarity(without_name.Encode(a), without_name.Encode(b)), 1.0,
      1e-5);
  EXPECT_LT(CosineSimilarity(with_name.Encode(a), with_name.Encode(b)), 0.999);
}

TEST(ColumnEncoderTest, AllNullColumnIsZeroVector) {
  WordEmbedding words;
  ColumnEncoder enc(&words, ColumnEncoder::Options{256, 0.0});
  Column c("x", DataType::kString);
  c.Append(Value::Null());
  EXPECT_DOUBLE_EQ(Norm(enc.Encode(c)), 0.0);
}

Table TwoColumnTable(const std::string& name,
                     const std::vector<std::string>& col1,
                     const std::vector<std::string>& col1_vals,
                     const std::vector<std::string>& col2_vals) {
  Table t(name);
  LAKE_CHECK(t.AddColumn(MakeColumn(col1[0], col1_vals)).ok());
  LAKE_CHECK(t.AddColumn(MakeColumn(col1[1], col2_vals)).ok());
  return t;
}

TEST(ContextualEncoderTest, ContextDisambiguatesIdenticalColumns) {
  WordEmbedding words;
  ColumnEncoder base(&words, ColumnEncoder::Options{256, 0.0});
  ContextualColumnEncoder ctx(&base);

  // The same "name" column in two very different table contexts.
  const std::vector<std::string> shared = {"kelora", "kelavi", "keluna"};
  Table t1 = TwoColumnTable("animals", {"name", "species"}, shared,
                            {"lionas", "tigras", "pumava"});
  Table t2 = TwoColumnTable("cars", {"name", "engine"}, shared,
                            {"v8motor", "v6motor", "turbov12"});
  const Vector v1 = ctx.EncodeTable(t1)[0];
  const Vector v2 = ctx.EncodeTable(t2)[0];
  // Context-free embeddings of the shared column are identical...
  EXPECT_NEAR(CosineSimilarity(base.Encode(t1.column(0)),
                               base.Encode(t2.column(0))),
              1.0, 1e-5);
  // ...contextual ones differ (Starmie's disambiguation property).
  EXPECT_LT(CosineSimilarity(v1, v2), 0.999);
}

TEST(ContextualEncoderTest, AlphaZeroReducesToContextFree) {
  WordEmbedding words;
  ColumnEncoder base(&words, ColumnEncoder::Options{256, 0.0});
  ContextualColumnEncoder ctx(&base,
                              ContextualColumnEncoder::Options{0.0, 0.25});
  Table t = TwoColumnTable("t", {"a", "b"}, {"x1", "x2"}, {"y1", "y2"});
  const auto vecs = ctx.EncodeTable(t);
  EXPECT_NEAR(CosineSimilarity(vecs[0], base.Encode(t.column(0))), 1.0, 1e-5);
}

TEST(ContextualEncoderTest, SingleColumnUnchanged) {
  WordEmbedding words;
  ColumnEncoder base(&words, ColumnEncoder::Options{256, 0.0});
  ContextualColumnEncoder ctx(&base);
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("only", {"a", "b"})).ok());
  const auto vecs = ctx.EncodeTable(t);
  EXPECT_NEAR(CosineSimilarity(vecs[0], base.Encode(t.column(0))), 1.0, 1e-5);
}

TEST(TableEncoderTest, SameTopicTablesCloser) {
  WordEmbedding words;
  ColumnEncoder cols(&words);
  TableEncoder enc(&cols, &words);
  Table a = TwoColumnTable("cities of kel", {"city", "mayor"},
                           {"kelora", "kelavi"}, {"morvan", "morlen"});
  Table b = TwoColumnTable("more kel cities", {"city", "mayor"},
                           {"keluna", "kelora"}, {"morzal", "morvan"});
  Table c = TwoColumnTable("engines", {"engine", "power"},
                           {"v8motor", "turbov12"}, {"450", "820"});
  const Vector va = enc.Encode(a);
  EXPECT_GT(CosineSimilarity(va, enc.Encode(b)),
            CosineSimilarity(va, enc.Encode(c)));
  EXPECT_NEAR(Norm(va), 1.0, 1e-5);
}

}  // namespace
}  // namespace lake
