#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/backoff.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/top_k.h"
#include "util/windowed_quantile.h"

namespace lake {
namespace {

// --- Status / Result ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing table");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(StatusTest, EveryCodeHasName) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  LAKE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
}

// --- Hash -----------------------------------------------------------------

TEST(HashTest, DeterministicAcrossCalls) {
  EXPECT_EQ(Hash64("hello"), Hash64("hello"));
  EXPECT_EQ(Hash64("hello", 7), Hash64("hello", 7));
}

TEST(HashTest, SeedChangesValue) {
  EXPECT_NE(Hash64("hello", 1), Hash64("hello", 2));
}

TEST(HashTest, DifferentInputsRarelyCollide) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(Hash64("value" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, LongInputsExerciseBlockPath) {
  std::string long_a(1000, 'a');
  std::string long_b = long_a;
  long_b[999] = 'b';
  EXPECT_NE(Hash64(long_a), Hash64(long_b));
}

TEST(HashTest, HashToUnitInRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    const double u = HashToUnit(Hash64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, UnitMeanNearHalf) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextUnit();
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsSane) {
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, Rank0MostFrequent) {
  Rng rng(7);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTest, ZeroSkewIsUniformish) {
  Rng rng(8);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

// --- String utils ---------------------------------------------------------

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo World"), "hello world");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimAscii("  x  "), "x");
  EXPECT_EQ(TrimAscii("\t\n a b \r"), "a b");
  EXPECT_EQ(TrimAscii("   "), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseDouble) {
  double d;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &d));
  EXPECT_DOUBLE_EQ(d, -1000);
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("nan", &d));  // non-finite rejected
}

TEST(StringUtilTest, ParseInt64) {
  int64_t i;
  EXPECT_TRUE(ParseInt64("42", &i));
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(ParseInt64("-7", &i));
  EXPECT_EQ(i, -7);
  EXPECT_FALSE(ParseInt64("4.2", &i));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &i));
}

TEST(StringUtilTest, ParseBool) {
  bool b;
  EXPECT_TRUE(ParseBool("TRUE", &b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(ParseBool("no", &b));
  EXPECT_FALSE(b);
  EXPECT_FALSE(ParseBool("maybe", &b));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// --- TopK -----------------------------------------------------------------

TEST(TopKTest, KeepsLargest) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Push(i, i);
  auto out = top.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, 9);
  EXPECT_EQ(out[1].second, 8);
  EXPECT_EQ(out[2].second, 7);
}

TEST(TopKTest, TiesKeepFirstInserted) {
  TopK<int> top(2);
  top.Push(1.0, 100);
  top.Push(1.0, 200);
  top.Push(1.0, 300);  // tie with current worst: rejected
  auto out = top.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 100);
  EXPECT_EQ(out[1].second, 200);
}

TEST(TopKTest, ThresholdTracksKth) {
  TopK<int> top(2);
  EXPECT_DOUBLE_EQ(top.Threshold(-1), -1);
  top.Push(5, 1);
  EXPECT_DOUBLE_EQ(top.Threshold(-1), -1);  // not full yet
  top.Push(9, 2);
  EXPECT_DOUBLE_EQ(top.Threshold(-1), 5);
  top.Push(7, 3);
  EXPECT_DOUBLE_EQ(top.Threshold(-1), 7);
}

TEST(TopKTest, ZeroKIsEmpty) {
  TopK<int> top(0);
  top.Push(1, 1);
  EXPECT_TRUE(top.Take().empty());
}

// --- Binary serialization ---------------------------------------------------

TEST(SerializeTest, VarintRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  const uint64_t cases[] = {0, 1, 127, 128, 300, 1ULL << 32, ~0ULL};
  for (uint64_t v : cases) w.WriteVarint(v);
  BinaryReader r(&buf);
  for (uint64_t v : cases) EXPECT_EQ(r.ReadVarint().value(), v);
  EXPECT_FALSE(r.ReadVarint().ok());  // stream exhausted
}

TEST(SerializeTest, StringWithEmbeddedNul) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  const std::string s("a\0b\0", 4);
  w.WriteString(s);
  w.WriteString("");
  BinaryReader r(&buf);
  EXPECT_EQ(r.ReadString().value(), s);
  EXPECT_EQ(r.ReadString().value(), "");
}

TEST(SerializeTest, VectorsAndScalars) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU32Vector({1, 2, 3});
  w.WriteU64Vector({});
  w.WriteFloatVector({1.5f, -2.25f});
  w.WriteFixed64(0xdeadbeefcafef00dULL);
  w.WriteDouble(3.14159);
  BinaryReader r(&buf);
  EXPECT_EQ(r.ReadU32Vector().value(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.ReadU64Vector().value().empty());
  EXPECT_EQ(r.ReadFloatVector().value(), (std::vector<float>{1.5f, -2.25f}));
  EXPECT_EQ(r.ReadFixed64().value(), 0xdeadbeefcafef00dULL);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.14159);
}

TEST(SerializeTest, TruncationDetected) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteString("hello world");
  std::stringstream cut(buf.str().substr(0, 4));
  BinaryReader r(&cut);
  EXPECT_FALSE(r.ReadString().ok());
  std::stringstream empty;
  BinaryReader r2(&empty);
  EXPECT_FALSE(r2.ReadFixed64().ok());
  EXPECT_FALSE(r2.ReadFloat().ok());
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.ElapsedMillis(), 5.0);
  t.Restart();
  EXPECT_LT(t.ElapsedMillis(), 10.0);
}

TEST(RngForkTest, SameTagSameParentIsDeterministic) {
  Rng parent(42);
  Rng a = parent.Fork("workload");
  Rng b = parent.Fork("workload");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngForkTest, DifferentTagsProduceIndependentStreams) {
  Rng parent(42);
  Rng a = parent.Fork("ops");
  Rng b = parent.Fork("faults");
  size_t same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0u);
}

TEST(RngForkTest, ForkDoesNotAdvanceTheParent) {
  Rng with_fork(7), without(7);
  with_fork.Fork("side");
  with_fork.Fork("other");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(with_fork.Next(), without.Next());
}

TEST(RngForkTest, ForkTracksParentState) {
  // Forking after the parent advanced must give a different stream than
  // forking at the start — the fold reads the parent's current state.
  Rng parent(9);
  const uint64_t before = parent.Fork("tag").Next();
  parent.Next();
  const uint64_t after = parent.Fork("tag").Next();
  EXPECT_NE(before, after);
}

TEST(FailpointRegistryTest, ClearAllResetsCountersAndDisarms) {
  auto& registry = FailpointRegistry::Instance();
  registry.ClearAll();
  FaultSpec spec;
  spec.max_fires = 0;
  registry.Arm("util_test.site", spec);
  EXPECT_TRUE(registry.Hit("util_test.site").has_value());
  EXPECT_EQ(registry.hits("util_test.site"), 1u);
  EXPECT_EQ(registry.fires("util_test.site"), 1u);

  registry.ClearAll();
  EXPECT_EQ(registry.hits("util_test.site"), 0u);
  EXPECT_EQ(registry.fires("util_test.site"), 0u);
  EXPECT_FALSE(registry.Hit("util_test.site").has_value());  // disarmed
  registry.ClearAll();
}

TEST(FailpointRegistryTest, ListRegisteredIsSortedAndSurvivesClearAll) {
  auto& registry = FailpointRegistry::Instance();
  registry.ClearAll();
  registry.Register("util_test.zeta");
  registry.Register("util_test.alpha");
  registry.Arm("util_test.armed", FaultSpec{});

  const std::vector<std::string> names = registry.ListRegistered();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  auto has = [&names](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("util_test.zeta"));
  EXPECT_TRUE(has("util_test.alpha"));
  EXPECT_TRUE(has("util_test.armed"));

  registry.ClearAll();
  const std::vector<std::string> after = registry.ListRegistered();
  auto still = [&after](const char* n) {
    return std::find(after.begin(), after.end(), n) != after.end();
  };
  // Registration describes the binary, not a run: it survives ClearAll.
  EXPECT_TRUE(still("util_test.zeta"));
  EXPECT_TRUE(still("util_test.armed"));
}

// --- Backoff --------------------------------------------------------------

TEST(BackoffTest, DelayDoublesFromInitialAndCaps) {
  EXPECT_EQ(BackoffDelay(100, 5000, 1), 100u);
  EXPECT_EQ(BackoffDelay(100, 5000, 2), 200u);
  EXPECT_EQ(BackoffDelay(100, 5000, 3), 400u);
  EXPECT_EQ(BackoffDelay(100, 5000, 6), 3200u);
  EXPECT_EQ(BackoffDelay(100, 5000, 7), 5000u);   // 6400 capped
  EXPECT_EQ(BackoffDelay(100, 5000, 60), 5000u);  // stays capped, no overflow
}

TEST(BackoffTest, DelayEdgeCases) {
  EXPECT_EQ(BackoffDelay(0, 5000, 1), 0u);    // 0 initial stays 0
  EXPECT_EQ(BackoffDelay(0, 5000, 9), 0u);    // ... forever (0*2 = 0)
  EXPECT_EQ(BackoffDelay(100, 50, 1), 50u);   // max below initial clamps
  EXPECT_EQ(BackoffDelay(100, 100, 5), 100u); // max == initial
}

TEST(BackoffTest, StatefulAdvancesAndResets) {
  Backoff b(Backoff::Options{10, 80, 0});
  EXPECT_EQ(b.NextDelayMs(), 10u);
  EXPECT_EQ(b.NextDelayMs(), 20u);
  EXPECT_EQ(b.NextDelayMs(), 40u);
  EXPECT_EQ(b.NextDelayMs(), 80u);
  EXPECT_EQ(b.NextDelayMs(), 80u);  // capped
  EXPECT_EQ(b.attempts(), 5u);
  b.Reset();
  EXPECT_EQ(b.attempts(), 0u);
  EXPECT_EQ(b.NextDelayMs(), 10u);  // schedule starts over
}

TEST(BackoffTest, JitterStaysInBandAndIsDeterministic) {
  Backoff::Options opts{100, 10000, 0.5};
  Backoff a(opts, Rng(42).Fork("backoff"));
  Backoff b(opts, Rng(42).Fork("backoff"));
  uint64_t previous_base = 0;
  for (int i = 1; i <= 8; ++i) {
    const uint64_t base = BackoffDelay(100, 10000, i);
    const uint64_t da = a.NextDelayMs();
    // Jittered delay scales the base by [1 - jitter, 1].
    EXPECT_GE(da, base / 2);
    EXPECT_LE(da, base);
    // Same seed, same stream: the whole schedule replays (the chaos
    // determinism contract).
    EXPECT_EQ(da, b.NextDelayMs());
    EXPECT_GE(base, previous_base);
    previous_base = base;
  }
}

// --- WindowedQuantile -----------------------------------------------------

TEST(WindowedQuantileTest, EmptyWindowReportsZero) {
  WindowedQuantile wq;
  const auto now = WindowedQuantile::Clock::now();
  EXPECT_EQ(wq.count(now), 0u);
  EXPECT_EQ(wq.Quantile(0.5, now), 0.0);
}

TEST(WindowedQuantileTest, QuantilesWithinBucketError) {
  WindowedQuantile::Options opts;
  opts.window_slices = 4;
  opts.slice_width = std::chrono::milliseconds(1000);
  WindowedQuantile wq(opts);
  const auto now = WindowedQuantile::Clock::now();
  // 1..1000 us uniformly: p50 ~ 500, p95 ~ 950, p99 ~ 990.
  for (int v = 1; v <= 1000; ++v) wq.Record(v, now);
  EXPECT_EQ(wq.count(now), 1000u);
  // Log-bucketing bounds relative error at ~12.5%.
  EXPECT_NEAR(wq.Quantile(0.50, now), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(wq.Quantile(0.95, now), 950.0, 950.0 * 0.15);
  EXPECT_NEAR(wq.Quantile(0.99, now), 990.0, 990.0 * 0.15);
  // Extremes are exact-ish: min lands in an exact bucket.
  EXPECT_LE(wq.Quantile(0.0, now), 2.0);
}

TEST(WindowedQuantileTest, OldSlicesRollOffTheWindow) {
  WindowedQuantile::Options opts;
  opts.window_slices = 4;
  opts.slice_width = std::chrono::milliseconds(100);
  WindowedQuantile wq(opts);
  const auto t0 = WindowedQuantile::Clock::now();
  for (int i = 0; i < 100; ++i) wq.Record(10000.0, t0);  // slow past
  // One window later the slow samples have decayed away entirely and the
  // replica stops *looking* slow.
  const auto t1 = t0 + std::chrono::milliseconds(100 * 5);
  for (int i = 0; i < 100; ++i) wq.Record(100.0, t1);
  EXPECT_EQ(wq.count(t1), 100u);
  EXPECT_LT(wq.Quantile(0.95, t1), 200.0);
}

TEST(WindowedQuantileTest, MixedSlicesMergeAndResetDrops) {
  WindowedQuantile::Options opts;
  opts.window_slices = 8;
  opts.slice_width = std::chrono::milliseconds(100);
  WindowedQuantile wq(opts);
  const auto t0 = WindowedQuantile::Clock::now();
  const auto t1 = t0 + std::chrono::milliseconds(100);
  for (int i = 0; i < 50; ++i) wq.Record(100.0, t0);
  for (int i = 0; i < 50; ++i) wq.Record(1000.0, t1);
  // Both slices are inside the window: the quantile sees all 100 samples.
  EXPECT_EQ(wq.count(t1), 100u);
  const double p75 = wq.Quantile(0.75, t1);
  EXPECT_GT(p75, 500.0);
  wq.Reset();
  EXPECT_EQ(wq.count(t1), 0u);
  EXPECT_EQ(wq.Quantile(0.75, t1), 0.0);
}

TEST(WindowedQuantileTest, LargeValuesClampToLastBucket) {
  WindowedQuantile wq;
  const auto now = WindowedQuantile::Clock::now();
  wq.Record(1e18, now);  // absurd sample must not crash or wrap
  EXPECT_EQ(wq.count(now), 1u);
  EXPECT_GT(wq.Quantile(0.5, now), 1e6);
}

}  // namespace
}  // namespace lake
