#include <gtest/gtest.h>

#include "embed/column_encoder.h"
#include "lakegen/benchmark_lakes.h"
#include "search/union_d3l.h"
#include "util/logging.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

Column MakeNumeric(const std::string& name, const std::vector<double>& vals) {
  Column c(name, DataType::kDouble);
  for (double v : vals) c.Append(Value(v));
  return c;
}

// --- Format patterns ------------------------------------------------------

TEST(ValueFormatTest, CollapsesRuns) {
  EXPECT_EQ(ValueFormatPattern("2021-04-01"), "d-d-d");
  EXPECT_EQ(ValueFormatPattern("abc123"), "ad");
  EXPECT_EQ(ValueFormatPattern("AB 12"), "a_d");
  EXPECT_EQ(ValueFormatPattern(""), "");
  EXPECT_EQ(ValueFormatPattern("$1,234.56"), "$d,d.d");
}

TEST(ValueFormatTest, SameFormatDifferentValues) {
  EXPECT_EQ(ValueFormatPattern("2021-04-01"), ValueFormatPattern("1999-12-31"));
  EXPECT_NE(ValueFormatPattern("2021-04-01"), ValueFormatPattern("04/01/2021"));
}

// --- D3L engine -------------------------------------------------------------

class D3lTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Dates tables: same format, disjoint values. Codes table: different
    // format entirely.
    Table dates1("dates1");
    LAKE_CHECK(dates1.AddColumn(MakeColumn(
        "event date", {"2021-04-01", "2021-05-02", "2021-06-03"})).ok());
    LAKE_CHECK(catalog_.AddTable(std::move(dates1)).ok());
    Table dates2("dates2");
    LAKE_CHECK(dates2.AddColumn(MakeColumn(
        "Event_Date", {"1999-12-31", "2000-01-01", "2000-02-02"})).ok());
    LAKE_CHECK(catalog_.AddTable(std::move(dates2)).ok());
    Table codes("codes");
    LAKE_CHECK(codes.AddColumn(MakeColumn(
        "code", {"AB/12x", "CD/34y", "EF/56z"})).ok());
    LAKE_CHECK(catalog_.AddTable(std::move(codes)).ok());
    Table metrics("metrics");
    LAKE_CHECK(metrics.AddColumn(MakeNumeric(
        "temperature", {10.5, 11.0, 12.5, 13.0})).ok());
    LAKE_CHECK(catalog_.AddTable(std::move(metrics)).ok());
    Table metrics2("metrics2");
    LAKE_CHECK(metrics2.AddColumn(MakeNumeric(
        "temp reading", {10.0, 11.5, 12.0, 13.5})).ok());
    LAKE_CHECK(catalog_.AddTable(std::move(metrics2)).ok());
  }

  DataLakeCatalog catalog_;
  WordEmbedding words_;
  ColumnEncoder encoder_{&words_};
};

TEST_F(D3lTest, FormatEvidenceLinksDisjointDates) {
  D3lUnionSearch d3l(&catalog_, &encoder_);
  Table query("q");
  LAKE_CHECK(query.AddColumn(MakeColumn(
      "date", {"2030-01-01", "2030-02-02", "2030-03-03"})).ok());
  const auto results = d3l.Search(query, 3).value();
  ASSERT_GE(results.size(), 2u);
  // The two date tables outrank the codes table despite zero value
  // overlap — format + name evidence carries them.
  EXPECT_TRUE(catalog_.table(results[0].table_id).name().rfind("dates", 0) ==
              0);
  EXPECT_TRUE(catalog_.table(results[1].table_id).name().rfind("dates", 0) ==
              0);
}

TEST_F(D3lTest, NumericDistributionEvidence) {
  D3lUnionSearch d3l(&catalog_, &encoder_);
  const TableId m1 = catalog_.FindTable("metrics").value();
  const TableId m2 = catalog_.FindTable("metrics2").value();
  const TableId codes = catalog_.FindTable("codes").value();
  const double sim = d3l.ScoreTable(catalog_.table(m1), m2);
  const double dissim = d3l.ScoreTable(catalog_.table(m1), codes);
  EXPECT_GT(sim, dissim);
  EXPECT_GT(sim, 0.4);
}

TEST_F(D3lTest, StringNumericPairsOnlyShareNameEvidence) {
  D3lUnionSearch d3l(&catalog_, &encoder_);
  const TableId dates = catalog_.FindTable("dates1").value();
  const TableId metrics = catalog_.FindTable("metrics").value();
  // Unrelated names and mismatched kinds: near-zero relatedness.
  EXPECT_LT(d3l.ScoreTable(catalog_.table(dates), metrics), 0.3);
}

TEST_F(D3lTest, AblationDisablingAllSignalsScoresZero) {
  D3lUnionSearch::Options off;
  off.use_names = false;
  off.use_values = false;
  off.use_formats = false;
  off.use_embeddings = false;
  off.use_numeric = false;
  D3lUnionSearch d3l(&catalog_, &encoder_, off);
  const TableId d1 = catalog_.FindTable("dates1").value();
  const TableId d2 = catalog_.FindTable("dates2").value();
  EXPECT_DOUBLE_EQ(d3l.ScoreTable(catalog_.table(d1), d2), 0.0);
}

TEST_F(D3lTest, EmptyQueryYieldsNothing) {
  D3lUnionSearch d3l(&catalog_, &encoder_);
  Table empty("empty");
  EXPECT_TRUE(d3l.Search(empty, 3).value().empty());
}

TEST(D3lLakeTest, FindsTemplatePartners) {
  const GeneratedLake lake = MakeUnionBenchmarkLake(
      /*seed=*/19, /*tables_per_template=*/5, /*distractors=*/0);
  WordEmbedding words;
  ColumnEncoder encoder(&words);
  D3lUnionSearch d3l(&lake.catalog, &encoder);

  double p = 0;
  size_t queries = 0;
  for (size_t g = 0; g < lake.unionable_groups.size() && queries < 3;
       ++g, ++queries) {
    const TableId q = lake.unionable_groups[g][0];
    std::vector<TableId> truth;
    for (TableId t : lake.unionable_groups[g]) {
      if (t != q) truth.push_back(t);
    }
    p += PrecisionAtK(d3l.Search(lake.catalog.table(q), 4, q).value(), truth,
                      4);
  }
  EXPECT_GE(p / queries, 0.6);
}

}  // namespace
}  // namespace lake
