#include <gtest/gtest.h>

#include "text/normalizer.h"
#include "text/qgram.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace lake {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(TokenizeWords("Hello, world! 42"),
            (std::vector<std::string>{"hello", "world", "42"}));
}

TEST(TokenizerTest, EmptyAndPunctuation) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("!!! --- ...").empty());
}

TEST(TokenizerTest, StopwordsFiltered) {
  EXPECT_EQ(TokenizeWordsNoStopwords("the cat and the hat"),
            (std::vector<std::string>{"cat", "hat"}));
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_FALSE(IsStopword("cat"));
}

TEST(NormalizerTest, ValueNormalization) {
  EXPECT_EQ(NormalizeValue("  Hello   WORLD "), "hello world");
  EXPECT_EQ(NormalizeValue(""), "");
  EXPECT_EQ(NormalizeValue("a\t\tb"), "a b");
}

TEST(NormalizerTest, AttributeNames) {
  EXPECT_EQ(NormalizeAttributeName("Customer_ID"), "customer id");
  EXPECT_EQ(NormalizeAttributeName("customer-id"), "customer id");
  EXPECT_EQ(NormalizeAttributeName("customer.id"), "customer id");
  EXPECT_EQ(NormalizeAttributeName("CUSTOMER ID"), "customer id");
}

TEST(QGramTest, BasicGrams) {
  EXPECT_EQ(QGrams("abcd", 2),
            (std::vector<std::string>{"ab", "bc", "cd"}));
  EXPECT_EQ(QGrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(QGrams("", 2).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
}

TEST(QGramTest, HashesSortedDeduped) {
  const auto h = QGramHashes("aaaa", 2);  // only gram "aa"
  EXPECT_EQ(h.size(), 1u);
}

TEST(QGramTest, JaccardIdenticalIsOne) {
  EXPECT_DOUBLE_EQ(QGramJaccard("hello", "hello", 3), 1.0);
}

TEST(QGramTest, JaccardDisjointIsZero) {
  EXPECT_DOUBLE_EQ(QGramJaccard("aaaa", "zzzz", 2), 0.0);
}

TEST(QGramTest, SimilarStringsScoreHigher) {
  const double near = QGramJaccard("customer id", "customer_id2", 3);
  const double far = QGramJaccard("customer id", "revenue total", 3);
  EXPECT_GT(near, far);
}

TEST(QGramTest, BothEmptyIsOne) {
  EXPECT_DOUBLE_EQ(QGramJaccard("", "", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramJaccard("a", "", 2), 0.0);
}

TEST(VocabularyTest, InternAndLookup) {
  Vocabulary v;
  const uint32_t a = v.GetOrAdd("apple");
  const uint32_t b = v.GetOrAdd("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.GetOrAdd("apple"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.token(a), "apple");
  EXPECT_EQ(v.Find("banana"), b);
  EXPECT_EQ(v.Find("cherry"), -1);
}

TEST(VocabularyTest, FrequencyOrdering) {
  Vocabulary v;
  const uint32_t common = v.GetOrAdd("common");
  const uint32_t rare = v.GetOrAdd("rare");
  const uint32_t mid = v.GetOrAdd("mid");
  for (int i = 0; i < 5; ++i) v.IncrementFrequency(common);
  for (int i = 0; i < 2; ++i) v.IncrementFrequency(mid);
  v.IncrementFrequency(rare);
  const auto order = v.IdsByAscendingFrequency();
  EXPECT_EQ(order, (std::vector<uint32_t>{rare, mid, common}));
  EXPECT_EQ(v.frequency(common), 5u);
}

TEST(VocabularyTest, TiesBrokenById) {
  Vocabulary v;
  const uint32_t a = v.GetOrAdd("a");
  const uint32_t b = v.GetOrAdd("b");
  const auto order = v.IdsByAscendingFrequency();
  EXPECT_EQ(order, (std::vector<uint32_t>{a, b}));
}

}  // namespace
}  // namespace lake
