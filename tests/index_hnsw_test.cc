#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "index/flat_vector_index.h"
#include "index/hnsw.h"
#include "index/hyperplane_lsh.h"
#include "index/vector_ops.h"
#include "util/random.h"

namespace lake {
namespace {

Vector RandomVector(Rng& rng, size_t dim) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

// --- vector ops -------------------------------------------------------

TEST(VectorOpsTest, DotAndNorm) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 27.0);
}

TEST(VectorOpsTest, CosineBoundsAndZero) {
  const Vector a = {1, 0};
  const Vector b = {0, 1};
  const Vector z = {0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, z), 0.0);
}

TEST(VectorOpsTest, NormalizeInPlace) {
  Vector a = {3, 4};
  NormalizeInPlace(a);
  EXPECT_NEAR(Norm(a), 1.0, 1e-6);
  Vector z = {0, 0};
  NormalizeInPlace(z);  // must not produce NaN
  EXPECT_DOUBLE_EQ(z[0], 0.0);
}

// --- Flat index --------------------------------------------------------

TEST(FlatIndexTest, ExactNearestByCosine) {
  FlatVectorIndex idx(3);
  ASSERT_TRUE(idx.Insert(1, {1, 0, 0}).ok());
  ASSERT_TRUE(idx.Insert(2, {0, 1, 0}).ok());
  ASSERT_TRUE(idx.Insert(3, {0.9f, 0.1f, 0}).ok());
  const auto hits = idx.Search({1, 0, 0}, 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 3u);
  EXPECT_NEAR(hits[0].score, 1.0, 1e-6);
}

TEST(FlatIndexTest, L2Metric) {
  FlatVectorIndex idx(2, VectorMetric::kL2);
  ASSERT_TRUE(idx.Insert(1, {0, 0}).ok());
  ASSERT_TRUE(idx.Insert(2, {5, 5}).ok());
  const auto hits = idx.Search({1, 1}, 1).value();
  EXPECT_EQ(hits[0].id, 1u);
}

TEST(FlatIndexTest, DimMismatchErrors) {
  FlatVectorIndex idx(4);
  EXPECT_FALSE(idx.Insert(1, {1, 2}).ok());
  EXPECT_FALSE(idx.Search({1, 2}, 1).ok());
}

// --- HNSW ---------------------------------------------------------------

TEST(HnswTest, EmptyAndTrivial) {
  HnswIndex idx(HnswIndex::Options{.dim = 8});
  EXPECT_TRUE(idx.Search(Vector(8, 0.5f), 3).value().empty());
  ASSERT_TRUE(idx.Insert(7, Vector(8, 0.5f)).ok());
  const auto hits = idx.Search(Vector(8, 0.5f), 3).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 7u);
}

TEST(HnswTest, DimMismatchErrors) {
  HnswIndex idx(HnswIndex::Options{.dim = 8});
  EXPECT_FALSE(idx.Insert(0, Vector(4, 1.0f)).ok());
  EXPECT_FALSE(idx.Search(Vector(4, 1.0f), 1).ok());
}

TEST(HnswTest, RecallAgainstExact) {
  const size_t dim = 24, n = 600, k = 10;
  Rng rng(99);
  HnswIndex hnsw(HnswIndex::Options{dim, VectorMetric::kCosine, 16, 120, 7});
  FlatVectorIndex flat(dim);
  std::vector<Vector> data;
  for (size_t i = 0; i < n; ++i) {
    Vector v = RandomVector(rng, dim);
    ASSERT_TRUE(hnsw.Insert(i, v).ok());
    ASSERT_TRUE(flat.Insert(i, v).ok());
    data.push_back(std::move(v));
  }
  double recall_sum = 0;
  const int queries = 20;
  for (int q = 0; q < queries; ++q) {
    const Vector query = RandomVector(rng, dim);
    const auto approx = hnsw.Search(query, k, /*ef_search=*/80).value();
    const auto exact = flat.Search(query, k).value();
    std::unordered_set<uint64_t> truth;
    for (const auto& h : exact) truth.insert(h.id);
    size_t found = 0;
    for (const auto& h : approx) {
      if (truth.count(h.id)) ++found;
    }
    recall_sum += static_cast<double>(found) / k;
  }
  EXPECT_GT(recall_sum / queries, 0.85);
}

TEST(HnswTest, ScoresDescending) {
  Rng rng(5);
  HnswIndex idx(HnswIndex::Options{.dim = 16});
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(idx.Insert(i, RandomVector(rng, 16)).ok());
  }
  const auto hits = idx.Search(RandomVector(rng, 16), 10).value();
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
}

TEST(HnswTest, DeterministicForSeed) {
  auto build = [] {
    Rng rng(31);
    HnswIndex idx(HnswIndex::Options{16, VectorMetric::kCosine, 8, 60, 3});
    for (size_t i = 0; i < 200; ++i) {
      EXPECT_TRUE(idx.Insert(i, RandomVector(rng, 16)).ok());
    }
    Rng qrng(77);
    return idx.Search(RandomVector(qrng, 16), 5).value();
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(HnswTest, L2MetricWorks) {
  HnswIndex idx(HnswIndex::Options{.dim = 2, .metric = VectorMetric::kL2});
  ASSERT_TRUE(idx.Insert(1, {0, 0}).ok());
  ASSERT_TRUE(idx.Insert(2, {10, 10}).ok());
  ASSERT_TRUE(idx.Insert(3, {1, 1}).ok());
  const auto hits = idx.Search({0.4f, 0.4f}, 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 3u);
}

TEST(HnswTest, LinkBudgetRespected) {
  Rng rng(8);
  const size_t m = 6;
  HnswIndex idx(HnswIndex::Options{8, VectorMetric::kCosine, m, 40, 1});
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(idx.Insert(i, RandomVector(rng, 8)).ok());
  }
  // Total directed links bounded by nodes * 2m (layer 0) + upper layers.
  EXPECT_LT(idx.TotalLinks(), 300 * (2 * m + 2 * m));
  EXPECT_GE(idx.max_level(), 0);
}

TEST(HnswSerializationTest, SaveLoadPreservesSearch) {
  Rng rng(12);
  HnswIndex idx(HnswIndex::Options{16, VectorMetric::kCosine, 8, 60, 3});
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(idx.Insert(i, RandomVector(rng, 16)).ok());
  }
  std::stringstream buffer;
  ASSERT_TRUE(idx.Save(&buffer).ok());

  HnswIndex loaded(HnswIndex::Options{.dim = 4});  // replaced by Load
  ASSERT_TRUE(loaded.Load(&buffer).ok());
  EXPECT_EQ(loaded.size(), idx.size());
  EXPECT_EQ(loaded.TotalLinks(), idx.TotalLinks());
  EXPECT_EQ(loaded.max_level(), idx.max_level());

  Rng qrng(55);
  for (int q = 0; q < 5; ++q) {
    const Vector query = RandomVector(qrng, 16);
    const auto a = idx.Search(query, 5).value();
    const auto b = loaded.Search(query, 5).value();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
  // The loaded index accepts further inserts.
  ASSERT_TRUE(loaded.Insert(999, RandomVector(qrng, 16)).ok());
  EXPECT_EQ(loaded.size(), 301u);
}

TEST(HnswSerializationTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("nope");
  HnswIndex target(HnswIndex::Options{.dim = 8});
  EXPECT_FALSE(target.Load(&garbage).ok());

  Rng rng(9);
  HnswIndex idx(HnswIndex::Options{.dim = 8});
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(idx.Insert(i, RandomVector(rng, 8)).ok());
  }
  std::stringstream full;
  ASSERT_TRUE(idx.Save(&full).ok());
  const std::string bytes = full.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 3));
  EXPECT_FALSE(target.Load(&truncated).ok());
}

// --- Hyperplane LSH -----------------------------------------------------

TEST(HyperplaneLshTest, NearDuplicatesCollide) {
  Rng rng(3);
  HyperplaneLsh lsh(HyperplaneLsh::Options{16, 10, 8, 5});
  const Vector base = RandomVector(rng, 16);
  Vector nearby = base;
  nearby[0] += 0.01f;
  ASSERT_TRUE(lsh.Insert(42, base).ok());
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(lsh.Insert(100 + i, RandomVector(rng, 16)).ok());
  }
  const auto candidates = lsh.Query(nearby).value();
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 42u),
            candidates.end());
}

TEST(HyperplaneLshTest, MostRandomVectorsDoNotCollide) {
  Rng rng(4);
  HyperplaneLsh lsh(HyperplaneLsh::Options{32, 4, 16, 6});
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(lsh.Insert(i, RandomVector(rng, 32)).ok());
  }
  const auto candidates = lsh.Query(RandomVector(rng, 32)).value();
  EXPECT_LT(candidates.size(), 30u);
}

TEST(HyperplaneLshTest, DimMismatchErrors) {
  HyperplaneLsh lsh(HyperplaneLsh::Options{16, 2, 4, 1});
  EXPECT_FALSE(lsh.Insert(0, Vector(8, 1.0f)).ok());
  EXPECT_FALSE(lsh.Query(Vector(8, 1.0f)).ok());
}

}  // namespace
}  // namespace lake
