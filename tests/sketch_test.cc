#include <gtest/gtest.h>

#include <cmath>

#include "sketch/correlation_sketch.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "sketch/set_ops.h"
#include "sketch/simhash.h"
#include "util/hash.h"
#include "util/random.h"

namespace lake {
namespace {

std::vector<std::string> Values(size_t begin, size_t end) {
  std::vector<std::string> out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back("v" + std::to_string(i));
  return out;
}

// --- HashedSet (exact ground truth) ----------------------------------------

TEST(HashedSetTest, ExactJaccardAndContainment) {
  // A = {0..99}, B = {50..199}: |A∩B|=50, |A∪B|=200.
  const HashedSet a = HashedSet::FromValues(Values(0, 100));
  const HashedSet b = HashedSet::FromValues(Values(50, 200));
  EXPECT_EQ(a.IntersectionSize(b), 50u);
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.25);
  EXPECT_DOUBLE_EQ(a.ContainmentIn(b), 0.5);
  EXPECT_DOUBLE_EQ(b.ContainmentIn(a), 50.0 / 150.0);
}

TEST(HashedSetTest, Duplicates) {
  const HashedSet a = HashedSet::FromValues({"x", "x", "y"});
  EXPECT_EQ(a.size(), 2u);
}

TEST(HashedSetTest, EmptyEdgeCases) {
  const HashedSet e;
  const HashedSet a = HashedSet::FromValues({"x"});
  EXPECT_DOUBLE_EQ(e.Jaccard(e), 1.0);
  EXPECT_DOUBLE_EQ(e.Jaccard(a), 0.0);
  EXPECT_DOUBLE_EQ(e.ContainmentIn(a), 0.0);
}

// --- MinHash ---------------------------------------------------------------

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  const auto a = MinHashSignature::Build(Values(0, 200), 128);
  const auto b = MinHashSignature::Build(Values(0, 200), 128);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b).value(), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  const auto a = MinHashSignature::Build(Values(0, 200), 128);
  const auto b = MinHashSignature::Build(Values(1000, 1200), 128);
  EXPECT_LT(a.EstimateJaccard(b).value(), 0.05);
}

TEST(MinHashTest, WidthMismatchIsError) {
  const auto a = MinHashSignature::Build(Values(0, 10), 64);
  const auto b = MinHashSignature::Build(Values(0, 10), 128);
  EXPECT_FALSE(a.EstimateJaccard(b).ok());
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(MinHashTest, MergeEqualsUnionSignature) {
  const auto a = MinHashSignature::Build(Values(0, 100), 64);
  const auto b = MinHashSignature::Build(Values(100, 200), 64);
  const auto u = MinHashSignature::Build(Values(0, 200), 64);
  const auto merged = a.Merge(b).value();
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(merged.value(i), u.value(i));
  }
}

// Property: estimation error shrinks with signature width (~1/sqrt(k)).
class MinHashAccuracy : public ::testing::TestWithParam<size_t> {};

TEST_P(MinHashAccuracy, EstimatesWithinTolerance) {
  const size_t width = GetParam();
  // True Jaccard 1/3: A={0..200}, B={100..300}.
  const auto a = MinHashSignature::Build(Values(0, 200), width);
  const auto b = MinHashSignature::Build(Values(100, 300), width);
  const double est = a.EstimateJaccard(b).value();
  const double tol = 4.0 / std::sqrt(static_cast<double>(width));
  EXPECT_NEAR(est, 1.0 / 3.0, tol);
}

INSTANTIATE_TEST_SUITE_P(Widths, MinHashAccuracy,
                         ::testing::Values(32, 64, 128, 256, 512));

TEST(MinHashTest, ContainmentEstimateReasonable) {
  // containment(A in B) = 0.5 with |A|=100, |B|=150.
  const auto a = MinHashSignature::Build(Values(0, 100), 256);
  const auto b = MinHashSignature::Build(Values(50, 200), 256);
  EXPECT_NEAR(a.EstimateContainment(b, 100, 150).value(), 0.5, 0.15);
}

// --- KMV --------------------------------------------------------------------

TEST(KmvTest, ExactWhenUndersaturated) {
  const KmvSketch s = KmvSketch::Build(Values(0, 50), 128);
  EXPECT_TRUE(s.IsExact());
  EXPECT_DOUBLE_EQ(s.EstimateDistinct(), 50.0);
}

TEST(KmvTest, DistinctEstimateAccuracy) {
  const KmvSketch s = KmvSketch::Build(Values(0, 10000), 256);
  EXPECT_FALSE(s.IsExact());
  EXPECT_NEAR(s.EstimateDistinct(), 10000.0, 10000.0 * 0.2);
}

TEST(KmvTest, DuplicatesIgnored) {
  KmvSketch s(16);
  for (int i = 0; i < 100; ++i) s.Update(42);
  EXPECT_EQ(s.size(), 1u);
}

TEST(KmvTest, JaccardEstimate) {
  const KmvSketch a = KmvSketch::Build(Values(0, 2000), 256);
  const KmvSketch b = KmvSketch::Build(Values(1000, 3000), 256);
  // True J = 1000/3000.
  EXPECT_NEAR(a.EstimateJaccard(b).value(), 1.0 / 3.0, 0.12);
}

TEST(KmvTest, ContainmentEstimate) {
  const KmvSketch a = KmvSketch::Build(Values(0, 1000), 256);
  const KmvSketch b = KmvSketch::Build(Values(0, 4000), 256);
  EXPECT_NEAR(a.EstimateContainment(b).value(), 1.0, 0.15);
}

TEST(KmvTest, MergeSizeMismatchError) {
  KmvSketch a(16), b(32);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.EstimateJaccard(b).ok());
}

// --- HLL --------------------------------------------------------------------

class HllAccuracy : public ::testing::TestWithParam<size_t> {};

TEST_P(HllAccuracy, ErrorWithinBound) {
  const size_t n = GetParam();
  const HllSketch s = HllSketch::Build(Values(0, n), 12);
  // Standard error ~1.04/sqrt(4096) ≈ 1.6%; allow 5 sigma.
  EXPECT_NEAR(s.Estimate(), static_cast<double>(n),
              std::max(5.0, 0.082 * static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         ::testing::Values(10, 100, 1000, 10000, 100000));

TEST(HllTest, MergeEqualsUnion) {
  const HllSketch a = HllSketch::Build(Values(0, 5000), 12);
  const HllSketch b = HllSketch::Build(Values(2500, 7500), 12);
  const HllSketch u = a.Merge(b).value();
  EXPECT_NEAR(u.Estimate(), 7500.0, 7500.0 * 0.1);
}

TEST(HllTest, PrecisionMismatchError) {
  HllSketch a(10), b(12);
  EXPECT_FALSE(a.Merge(b).ok());
}

// --- SimHash ----------------------------------------------------------------

TEST(SimHashTest, IdenticalTokensIdenticalFingerprint) {
  const std::vector<std::string> tokens = {"a", "b", "c"};
  EXPECT_EQ(SimHash::Fingerprint(tokens), SimHash::Fingerprint(tokens));
}

TEST(SimHashTest, SimilarCloserThanDissimilar) {
  std::vector<std::string> base, similar, different;
  for (int i = 0; i < 50; ++i) base.push_back("tok" + std::to_string(i));
  similar = base;
  similar[0] = "changed";
  for (int i = 0; i < 50; ++i) different.push_back("other" + std::to_string(i));
  const uint64_t fb = SimHash::Fingerprint(base);
  EXPECT_LT(SimHash::HammingDistance(fb, SimHash::Fingerprint(similar)),
            SimHash::HammingDistance(fb, SimHash::Fingerprint(different)));
}

TEST(SimHashTest, SimilarityBounds) {
  EXPECT_DOUBLE_EQ(SimHash::Similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(SimHash::Similarity(0, ~0ULL), 0.0);
}

// --- Correlation sketch -----------------------------------------------------

TEST(PearsonTest, ExactCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 1.0, 1e-12);
  const std::vector<double> ny = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, ny).value(), -1.0, 1e-12);
}

TEST(PearsonTest, Errors) {
  EXPECT_FALSE(PearsonCorrelation({1}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());  // zero var
}

std::pair<CorrelationSketch, CorrelationSketch> MakeCorrelatedPair(
    double rho, size_t rows, size_t sketch_size, uint64_t seed) {
  Rng rng(seed);
  CorrelationSketch a(sketch_size), b(sketch_size);
  for (size_t i = 0; i < rows; ++i) {
    const double x = rng.NextGaussian();
    const double y =
        rho * x + std::sqrt(std::max(0.0, 1 - rho * rho)) * rng.NextGaussian();
    const uint64_t key = Hash64("k" + std::to_string(i));
    a.Update(key, x);
    b.Update(key, y);
  }
  return {std::move(a), std::move(b)};
}

TEST(CorrelationSketchTest, PearsonEstimateNearPlanted) {
  const auto [a, b] = MakeCorrelatedPair(0.9, 3000, 256, 42);
  EXPECT_NEAR(a.EstimatePearson(b).value(), 0.9, 0.12);
}

TEST(CorrelationSketchTest, QcrSignAgreesWithPlanted) {
  const auto [pos_a, pos_b] = MakeCorrelatedPair(0.8, 3000, 256, 1);
  EXPECT_GT(pos_a.EstimateQcr(pos_b).value(), 0.3);
  const auto [neg_a, neg_b] = MakeCorrelatedPair(-0.8, 3000, 256, 2);
  EXPECT_LT(neg_a.EstimateQcr(neg_b).value(), -0.3);
  const auto [z_a, z_b] = MakeCorrelatedPair(0.0, 3000, 256, 3);
  EXPECT_NEAR(z_a.EstimateQcr(z_b).value(), 0.0, 0.25);
}

TEST(CorrelationSketchTest, JoinSampleRequiresSharedKeys) {
  CorrelationSketch a(64), b(64);
  a.Update(Hash64("x"), 1.0);
  b.Update(Hash64("y"), 2.0);
  EXPECT_EQ(a.JoinSampleSize(b), 0u);
  EXPECT_FALSE(a.EstimatePearson(b).ok());
}

TEST(CorrelationSketchTest, KeyContainmentEstimate) {
  CorrelationSketch a(512), b(512);
  // a's keys are a subset of b's keys.
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = Hash64("k" + std::to_string(i));
    a.Update(key, i);
  }
  for (int i = 0; i < 900; ++i) {
    const uint64_t key = Hash64("k" + std::to_string(i));
    b.Update(key, i);
  }
  EXPECT_NEAR(a.EstimateKeyContainment(b), 1.0, 0.1);
  EXPECT_LT(b.EstimateKeyContainment(a), 0.7);
}

TEST(CorrelationSketchTest, BottomKKeepsSmallestKeys) {
  CorrelationSketch s(4);
  for (uint64_t k = 10; k > 0; --k) s.Update(k, 1.0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.entries()[0].key_hash, 1u);
  EXPECT_EQ(s.entries()[3].key_hash, 4u);
}

TEST(CorrelationSketchTest, DuplicateKeysKeepFirstValue) {
  CorrelationSketch s(8);
  s.Update(5, 1.0);
  s.Update(5, 99.0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries()[0].value, 1.0);
}

}  // namespace
}  // namespace lake
