#include <gtest/gtest.h>

#include <unordered_set>

#include "annotate/domain_discovery.h"
#include "annotate/features.h"
#include "annotate/kb_synthesis.h"
#include "annotate/knowledge_base.h"
#include "annotate/semantic_type_detector.h"
#include "annotate/softmax_model.h"
#include "lakegen/generator.h"
#include "util/logging.h"
#include "util/random.h"

namespace lake {
namespace {

Column MakeColumn(const std::string& name,
                  const std::vector<std::string>& vals) {
  Column c(name, DataType::kString);
  for (const auto& v : vals) c.Append(Value(v));
  return c;
}

// --- Features -----------------------------------------------------------

TEST(FeaturesTest, DimsMatchOptions) {
  WordEmbedding words(WordEmbedding::Options{.dim = 32});
  FeatureExtractor stats_only(
      &words, FeatureExtractor::Options{true, false, false, 64});
  FeatureExtractor full(&words,
                        FeatureExtractor::Options{true, true, true, 64});
  const Column c = MakeColumn("x", {"a", "b"});
  EXPECT_EQ(stats_only.Extract(c).size(), stats_only.FeatureDim());
  Table t("t");
  LAKE_CHECK(t.AddColumn(c).ok());
  EXPECT_EQ(full.ExtractInContext(t, 0).size(), full.FeatureDim());
  EXPECT_EQ(full.FeatureDim(), stats_only.FeatureDim() + 2 * 32);
}

TEST(FeaturesTest, ContextZeroWithoutTable) {
  WordEmbedding words(WordEmbedding::Options{.dim = 16});
  FeatureExtractor full(&words,
                        FeatureExtractor::Options{false, false, true, 64});
  const auto f = full.Extract(MakeColumn("x", {"a"}));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

// --- Softmax model -------------------------------------------------------

TEST(SoftmaxModelTest, LearnsSeparableData) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 300; ++i) {
    const int label = static_cast<int>(rng.NextBounded(3));
    const double cx = label == 0 ? -3.0 : (label == 1 ? 0.0 : 3.0);
    x.push_back({cx + rng.NextGaussian() * 0.4, rng.NextGaussian()});
    y.push_back(label);
  }
  SoftmaxModel model;
  ASSERT_TRUE(model.Train(x, y, 3).ok());
  EXPECT_GT(model.Evaluate(x, y).value(), 0.95);
  const auto probs = model.PredictProba({-3.0, 0.0}).value();
  EXPECT_GT(probs[0], 0.8);
}

TEST(SoftmaxModelTest, InputValidation) {
  SoftmaxModel model;
  EXPECT_FALSE(model.Train({}, {}, 2).ok());
  EXPECT_FALSE(model.Train({{1.0}}, {0}, 1).ok());
  EXPECT_FALSE(model.Train({{1.0}, {2.0}}, {0, 5}, 2).ok());
  EXPECT_FALSE(model.Train({{1.0}, {2.0, 3.0}}, {0, 1}, 2).ok());
  EXPECT_FALSE(model.PredictProba({1.0}).ok());  // untrained
  ASSERT_TRUE(model.Train({{0.0}, {1.0}, {0.1}, {0.9}}, {0, 1, 0, 1}, 2).ok());
  EXPECT_FALSE(model.PredictProba({1.0, 2.0}).ok());  // dim mismatch
}

TEST(SoftmaxModelTest, ProbabilitiesSumToOne) {
  SoftmaxModel model;
  ASSERT_TRUE(model.Train({{0.0}, {1.0}, {2.0}}, {0, 1, 2}, 3).ok());
  const auto probs = model.PredictProba({1.5}).value();
  double sum = 0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --- Semantic type detection over a generated lake -------------------------

class TypeDetectorTest : public ::testing::Test {
 protected:
  static GeneratedLake MakeLake() {
    GeneratorOptions opts;
    opts.seed = 3;
    opts.num_domains = 6;
    opts.num_templates = 4;
    opts.tables_per_template = 6;
    opts.values_per_domain = 150;
    return LakeGenerator(opts).Generate();
  }

  // Labels: a column's domain topic is recoverable through the KB.
  static std::vector<LabeledColumn> LabelColumns(const GeneratedLake& lake,
                                                 size_t from_table,
                                                 size_t to_table) {
    std::vector<LabeledColumn> out;
    for (TableId t = from_table; t < to_table && t < lake.catalog.num_tables();
         ++t) {
      const Table& table = lake.catalog.table(t);
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (table.column(c).IsNumeric()) continue;
        auto vote = lake.kb.ColumnType(table.column(c).DistinctStrings());
        if (!vote.ok()) continue;
        out.push_back(LabeledColumn{&table, c, vote.value().type});
      }
    }
    return out;
  }
};

TEST_F(TypeDetectorTest, BeatsChanceOnHeldOutTables) {
  const GeneratedLake lake = MakeLake();
  WordEmbedding words(WordEmbedding::Options{.dim = 48});
  SemanticTypeDetector detector(
      &words, FeatureExtractor::Options{true, true, false, 96});

  const size_t n = lake.catalog.num_tables();
  const auto train = LabelColumns(lake, 0, n * 3 / 4);
  const auto test = LabelColumns(lake, n * 3 / 4, n);
  ASSERT_GT(train.size(), 20u);
  ASSERT_GT(test.size(), 5u);
  ASSERT_TRUE(detector.Train(train).ok());

  const double acc = detector.Evaluate(test).value();
  const double chance = 1.0 / detector.labels().size();
  EXPECT_GT(acc, chance + 0.2);
}

TEST_F(TypeDetectorTest, AnnotateCatalogCoversEverything) {
  const GeneratedLake lake = MakeLake();
  WordEmbedding words(WordEmbedding::Options{.dim = 32});
  SemanticTypeDetector detector(
      &words, FeatureExtractor::Options{true, true, false, 64});
  const auto train = LabelColumns(lake, 0, lake.catalog.num_tables());
  ASSERT_TRUE(detector.Train(train).ok());
  const auto annotations = detector.AnnotateCatalog(lake.catalog).value();
  EXPECT_EQ(annotations.size(), lake.catalog.num_columns());
  for (const auto& [ref, ann] : annotations) {
    EXPECT_FALSE(ann.type_label.empty());
    EXPECT_GT(ann.confidence, 0.0);
    EXPECT_LE(ann.confidence, 1.0);
  }
}

TEST(TypeDetectorErrors, RejectsBadTraining) {
  WordEmbedding words;
  SemanticTypeDetector detector(&words);
  EXPECT_FALSE(detector.Train({}).ok());
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("a", {"x"})).ok());
  // Single class is not trainable.
  EXPECT_FALSE(detector.Train({{&t, 0, "only"}, {&t, 0, "only"}}).ok());
}

// --- Domain discovery ------------------------------------------------------

TEST(DomainDiscoveryTest, RecoversPlantedDomains) {
  GeneratorOptions opts;
  opts.seed = 11;
  opts.num_domains = 5;
  opts.num_templates = 3;
  opts.tables_per_template = 5;
  opts.values_per_domain = 120;
  const GeneratedLake lake = LakeGenerator(opts).Generate();

  const auto domains = DomainDiscovery().Discover(lake.catalog);
  ASSERT_FALSE(domains.empty());
  // The big discovered domains should each be dominated by one planted
  // domain: all member columns of a cluster share the template position's
  // domain, so values from different planted domains should not mix much.
  const Domain& top = domains[0];
  EXPECT_GT(top.member_columns.size(), 3u);
  EXPECT_FALSE(top.representative.empty());
  // Representative is a member value.
  EXPECT_TRUE(std::binary_search(top.values.begin(), top.values.end(),
                                 top.representative));
}

TEST(DomainDiscoveryTest, MinDistinctFiltersSmallColumns) {
  DataLakeCatalog cat;
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("tiny", {"a", "a", "a"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  DomainDiscovery::Options opts;
  opts.min_distinct = 3;
  EXPECT_TRUE(DomainDiscovery(opts).Discover(cat).empty());
}

// --- Knowledge base ---------------------------------------------------------

TEST(KnowledgeBaseTest, TypesAndHierarchy) {
  KnowledgeBase kb;
  kb.AddType("city", "place");
  kb.AddType("capital", "city");
  EXPECT_TRUE(kb.HasType("place"));  // auto-declared parent
  EXPECT_EQ(kb.ParentOf("capital"), "city");
  EXPECT_TRUE(kb.IsSubtypeOf("capital", "place"));
  EXPECT_TRUE(kb.IsSubtypeOf("city", "city"));
  EXPECT_FALSE(kb.IsSubtypeOf("place", "capital"));
}

TEST(KnowledgeBaseTest, EntitiesAndRelations) {
  KnowledgeBase kb;
  kb.AddEntity("paris", "city");
  kb.AddEntity("paris", "city");  // idempotent
  kb.AddEntity("paris", "myth");
  EXPECT_EQ(kb.TypesOf("paris").size(), 2u);
  EXPECT_TRUE(kb.TypesOf("unknown").empty());
  kb.AddRelation("paris", "capital_of", "france");
  EXPECT_EQ(kb.RelationsBetween("paris", "france"),
            (std::vector<std::string>{"capital_of"}));
  EXPECT_TRUE(kb.RelationsBetween("france", "paris").empty());  // directed
}

TEST(KnowledgeBaseTest, ColumnTypeMajorityVote) {
  KnowledgeBase kb;
  kb.AddEntity("a", "city");
  kb.AddEntity("b", "city");
  kb.AddEntity("c", "person");
  const auto vote = kb.ColumnType({"a", "b", "c", "zzz"}).value();
  EXPECT_EQ(vote.type, "city");
  EXPECT_DOUBLE_EQ(vote.coverage, 0.5);
  EXPECT_FALSE(kb.ColumnType({"nope"}).ok());
  EXPECT_FALSE(kb.ColumnType({}).ok());
}

TEST(KnowledgeBaseTest, ColumnPairRelationVote) {
  KnowledgeBase kb;
  kb.AddRelation("a", "in", "x");
  kb.AddRelation("b", "in", "y");
  kb.AddRelation("a", "other", "x");
  const auto vote =
      kb.ColumnPairRelation({"a", "b", "c"}, {"x", "y", "z"}).value();
  EXPECT_EQ(vote.predicate, "in");
  EXPECT_NEAR(vote.coverage, 2.0 / 3, 1e-9);
  EXPECT_FALSE(kb.ColumnPairRelation({"q"}, {"w"}).ok());
}

// --- KB synthesis ------------------------------------------------------------

TEST(KbSynthesisTest, GroundsLakeRelationships) {
  GeneratorOptions opts;
  opts.seed = 5;
  opts.num_domains = 5;
  opts.num_templates = 2;
  opts.tables_per_template = 4;
  const GeneratedLake lake = LakeGenerator(opts).Generate();

  const KnowledgeBase synth = KbSynthesizer().Synthesize(lake.catalog);
  EXPECT_GT(synth.num_entities(), 0u);
  EXPECT_GT(synth.num_relation_instances(), 0u);

  // A table's own column pairs must ground in the synthesized KB.
  const Table& t0 = lake.catalog.table(0);
  std::vector<std::string> subj, obj;
  int string_cols[2] = {-1, -1};
  for (size_t c = 0; c < t0.num_columns() && string_cols[1] < 0; ++c) {
    if (t0.column(c).IsNumeric()) continue;
    (string_cols[0] < 0 ? string_cols[0] : string_cols[1]) =
        static_cast<int>(c);
  }
  ASSERT_GE(string_cols[1], 0);
  for (size_t r = 0; r < t0.num_rows(); ++r) {
    subj.push_back(t0.column(string_cols[0]).cell(r).ToString());
    obj.push_back(t0.column(string_cols[1]).cell(r).ToString());
  }
  const auto vote = synth.ColumnPairRelation(subj, obj);
  ASSERT_TRUE(vote.ok());
  EXPECT_GT(vote.value().coverage, 0.5);
}

TEST(KbSynthesisTest, MinSupportFilters) {
  DataLakeCatalog cat;
  Table t("t");
  LAKE_CHECK(t.AddColumn(MakeColumn("a", {"x", "y"})).ok());
  LAKE_CHECK(t.AddColumn(MakeColumn("b", {"1a", "2b"})).ok());
  LAKE_CHECK(cat.AddTable(std::move(t)).ok());
  KbSynthesizer::Options opts;
  opts.min_support = 2;  // each pair occurs once -> filtered
  const KnowledgeBase kb = KbSynthesizer(opts).Synthesize(cat);
  EXPECT_EQ(kb.num_relation_instances(), 0u);
}

}  // namespace
}  // namespace lake
