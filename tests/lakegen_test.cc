#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "lakegen/benchmark_lakes.h"
#include "lakegen/generator.h"
#include "sketch/correlation_sketch.h"
#include "sketch/set_ops.h"

namespace lake {
namespace {

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions opts;
  opts.seed = 42;
  opts.num_templates = 3;
  opts.tables_per_template = 3;
  const GeneratedLake a = LakeGenerator(opts).Generate();
  const GeneratedLake b = LakeGenerator(opts).Generate();
  ASSERT_EQ(a.catalog.num_tables(), b.catalog.num_tables());
  for (TableId t = 0; t < a.catalog.num_tables(); ++t) {
    const Table& ta = a.catalog.table(t);
    const Table& tb = b.catalog.table(t);
    ASSERT_EQ(ta.name(), tb.name());
    ASSERT_EQ(ta.num_rows(), tb.num_rows());
    ASSERT_EQ(ta.num_columns(), tb.num_columns());
    for (size_t c = 0; c < ta.num_columns(); ++c) {
      for (size_t r = 0; r < ta.num_rows(); ++r) {
        ASSERT_EQ(ta.column(c).cell(r).ToString(),
                  tb.column(c).cell(r).ToString());
      }
    }
  }
}

TEST(GeneratorTest, GroundTruthConsistent) {
  GeneratorOptions opts;
  opts.seed = 1;
  opts.num_templates = 4;
  opts.tables_per_template = 5;
  opts.distractor_tables = 6;
  const GeneratedLake lake = LakeGenerator(opts).Generate();

  EXPECT_EQ(lake.catalog.num_tables(), 4 * 5 + 6);
  EXPECT_EQ(lake.unionable_groups.size(), 4u);
  EXPECT_EQ(lake.distractors.size(), 6u);
  EXPECT_EQ(lake.topic_of.size(), 4u);

  // Every table has a template; groups partition the non-distractor ids.
  std::unordered_set<TableId> seen;
  for (const auto& group : lake.unionable_groups) {
    EXPECT_EQ(group.size(), 5u);
    for (TableId t : group) {
      EXPECT_TRUE(seen.insert(t).second);
      EXPECT_TRUE(lake.template_of.count(t));
    }
  }
  for (TableId d : lake.distractors) {
    EXPECT_TRUE(seen.insert(d).second);
  }
  EXPECT_EQ(seen.size(), lake.catalog.num_tables());
}

TEST(GeneratorTest, SameTemplateTablesShareSchemaAndDomains) {
  GeneratorOptions opts;
  opts.seed = 2;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  const auto& group = lake.unionable_groups[0];
  const Table& a = lake.catalog.table(group[0]);
  const Table& b = lake.catalog.table(group[1]);
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.column(c).name(), b.column(c).name());
    if (a.column(c).IsNumeric()) continue;
    // Subject columns must overlap substantially (same domain + zipf).
    const HashedSet sa = HashedSet::FromValues(a.column(c).DistinctStrings());
    const HashedSet sb = HashedSet::FromValues(b.column(c).DistinctStrings());
    EXPECT_GT(sa.Jaccard(sb), 0.05);
  }
}

TEST(GeneratorTest, KbGroundsSubjectColumns) {
  GeneratorOptions opts;
  opts.seed = 3;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  const TableId t = lake.unionable_groups[0][0];
  const Table& table = lake.catalog.table(t);
  const auto vote = lake.kb.ColumnType(table.column(0).DistinctStrings());
  ASSERT_TRUE(vote.ok());
  EXPECT_EQ(vote.value().type, "type:" + lake.topic_of[0]);
  EXPECT_GT(vote.value().coverage, 0.9);
}

TEST(GeneratorTest, HomographsAppearInTwoDomains) {
  GeneratorOptions opts;
  opts.seed = 4;
  opts.homograph_count = 5;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  EXPECT_EQ(lake.homographs.size(), 5u);
  for (const std::string& h : lake.homographs) {
    EXPECT_GE(lake.kb.TypesOf(h).size(), 1u);
  }
}

TEST(GeneratorTest, RowCountsWithinBounds) {
  GeneratorOptions opts;
  opts.seed = 5;
  opts.min_rows = 10;
  opts.max_rows = 20;
  const GeneratedLake lake = LakeGenerator(opts).Generate();
  for (TableId t = 0; t < lake.catalog.num_tables(); ++t) {
    EXPECT_GE(lake.catalog.table(t).num_rows(), 10u);
    EXPECT_LE(lake.catalog.table(t).num_rows(), 20u);
  }
}

// --- Skewed sets workload -----------------------------------------------------

TEST(SkewedSetsTest, SizesSpanRange) {
  SkewedSetsOptions opts;
  opts.num_sets = 200;
  const SkewedSetsWorkload w = MakeSkewedSetsWorkload(opts);
  ASSERT_EQ(w.sets.size(), 200u);
  size_t min_size = SIZE_MAX, max_size = 0;
  for (const auto& s : w.sets) {
    min_size = std::min(min_size, s.size());
    max_size = std::max(max_size, s.size());
  }
  EXPECT_LE(min_size, 2 * opts.min_set_size);
  EXPECT_GE(max_size, opts.max_set_size / 8);  // skew reaches the top decade
}

TEST(SkewedSetsTest, QueriesHavePlantedContainment) {
  const SkewedSetsWorkload w = MakeSkewedSetsWorkload({});
  ASSERT_EQ(w.containment.size(), w.queries.size());
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const double best =
        *std::max_element(w.containment[q].begin(), w.containment[q].end());
    EXPECT_GE(best, 0.5) << "query " << q << " has no strong host";
  }
}

TEST(SkewedSetsTest, ContainmentMatchesExactComputation) {
  const SkewedSetsWorkload w = MakeSkewedSetsWorkload({});
  const HashedSet q0 = HashedSet::FromValues(w.queries[0]);
  const HashedSet s0 = HashedSet::FromValues(w.sets[0]);
  EXPECT_DOUBLE_EQ(w.containment[0][0], q0.ContainmentIn(s0));
}

// --- Correlated workload --------------------------------------------------------

TEST(CorrelatedWorkloadTest, PlantedCorrelationRealized) {
  const CorrelatedWorkload w = MakeCorrelatedWorkload({});
  ASSERT_FALSE(w.pairs.empty());
  // Verify on the strongest positive pair: join on keys, compute exact
  // Pearson, compare with planted.
  const auto& pair = w.pairs.back();  // rho = +0.95 by construction
  ASSERT_GT(pair.planted_correlation, 0.9);
  std::vector<double> x, y;
  for (size_t i = 0; i < w.query_keys.size(); ++i) {
    for (size_t j = 0; j < pair.keys.size(); ++j) {
      if (pair.keys[j] == w.query_keys[i]) {
        x.push_back(w.query_values[i]);
        y.push_back(pair.values[j]);
        break;
      }
    }
  }
  ASSERT_GT(x.size(), 30u);
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), pair.planted_correlation,
              0.15);
}

TEST(CorrelatedWorkloadTest, CatalogBuilds) {
  const CorrelatedWorkload w = MakeCorrelatedWorkload({});
  const DataLakeCatalog cat = CatalogFromCorrelatedWorkload(w);
  EXPECT_EQ(cat.num_tables(), w.pairs.size());
  EXPECT_EQ(cat.table(0).num_columns(), 2u);
  EXPECT_TRUE(cat.table(0).column(1).IsNumeric());
}

TEST(UnionBenchmarkLakeTest, HasDistractorsAndHomographs) {
  const GeneratedLake lake = MakeUnionBenchmarkLake(3, 4, 6);
  EXPECT_EQ(lake.distractors.size(), 6u);
  EXPECT_FALSE(lake.homographs.empty());
  EXPECT_GT(lake.catalog.num_tables(), 20u);
}

}  // namespace
}  // namespace lake
