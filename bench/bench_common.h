#ifndef LAKE_BENCH_BENCH_COMMON_H_
#define LAKE_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harnesses. Each bench binary prints a
// header naming its experiment id (DESIGN.md) and the surveyed claim it
// reproduces, followed by the result rows, so `for b in build/bench/*; do
// $b; done` produces a readable report.

#include <cstdio>
#include <string>

namespace lake::bench {

inline void PrintHeader(const char* experiment_id, const char* claim) {
  std::printf("\n=====================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("claim: %s\n", claim);
  std::printf("=====================================================\n");
}

/// One-line machine-readable result record, greppable as RESULT_JSON.
/// `fields` is a comma-separated list of already-encoded JSON key:value
/// pairs, e.g. "\"qps\":123.4,\"p50_us\":56.7".
inline void PrintJsonLine(const char* experiment_id,
                          const std::string& fields) {
  std::printf("RESULT_JSON {\"bench\":\"%s\",%s}\n", experiment_id,
              fields.c_str());
}

}  // namespace lake::bench

#endif  // LAKE_BENCH_BENCH_COMMON_H_
