#ifndef LAKE_BENCH_BENCH_COMMON_H_
#define LAKE_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harnesses. Each bench binary prints a
// header naming its experiment id (DESIGN.md) and the surveyed claim it
// reproduces, followed by the result rows, so `for b in build/bench/*; do
// $b; done` produces a readable report.

#include <cstdio>

namespace lake::bench {

inline void PrintHeader(const char* experiment_id, const char* claim) {
  std::printf("\n=====================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("claim: %s\n", claim);
  std::printf("=====================================================\n");
}

}  // namespace lake::bench

#endif  // LAKE_BENCH_BENCH_COMMON_H_
