// E17 — Index construction cost and memory across the index families the
// survey's §3 compares (inverted lists / JOSIE, MinHash-LSH, LSH
// Ensemble, HNSW): build time and a memory proxy as the lake grows.
//
// Series reproduced: the qualitative cost ladder the survey discusses —
// inverted lists are cheapest to build, LSH family next (hashing cost ×
// bandings), graph indexes (HNSW) dearest but queryable in sub-linear
// time afterwards.

#include <cstdio>

#include "bench_common.h"
#include "embed/column_encoder.h"
#include "index/hnsw.h"
#include "index/josie.h"
#include "index/lsh_ensemble.h"
#include "index/minhash_lsh.h"
#include "lakegen/benchmark_lakes.h"
#include "util/timer.h"

int main() {
  lake::bench::PrintHeader(
      "E17: bench_index_build",
      "construction-cost ladder: inverted lists < MinHash-LSH < LSH "
      "Ensemble < HNSW");

  std::printf("%-10s %-22s %12s %16s\n", "sets", "index", "build ms",
              "memory proxy");
  for (size_t num_sets : {250, 1000, 4000}) {
    lake::SkewedSetsOptions opts;
    opts.seed = 13;
    opts.num_sets = num_sets;
    opts.num_queries = 1;
    opts.max_set_size = 512;
    const lake::SkewedSetsWorkload w = lake::MakeSkewedSetsWorkload(opts);

    {
      lake::Timer t;
      lake::JosieIndex josie;
      for (size_t s = 0; s < w.sets.size(); ++s) {
        (void)josie.AddSet(s, w.sets[s]);
      }
      (void)josie.Build();
      std::printf("%-10zu %-22s %12.1f %16zu\n", num_sets,
                  "inverted/JOSIE", t.ElapsedMillis(),
                  josie.vocabulary_size());
    }
    {
      lake::Timer t;
      lake::MinHashLsh lsh(128, 0.6);
      for (size_t s = 0; s < w.sets.size(); ++s) {
        (void)lsh.Insert(s, lake::MinHashSignature::Build(w.sets[s], 128));
      }
      std::printf("%-10zu %-22s %12.1f %16zu\n", num_sets, "MinHash-LSH",
                  t.ElapsedMillis(), lsh.BucketEntries());
    }
    {
      lake::Timer t;
      lake::LshEnsemble ensemble(lake::LshEnsemble::Options{128, 8});
      for (size_t s = 0; s < w.sets.size(); ++s) {
        (void)ensemble.Add(s, lake::MinHashSignature::Build(w.sets[s], 128),
                           w.sets[s].size());
      }
      (void)ensemble.Build();
      std::printf("%-10zu %-22s %12.1f %16s\n", num_sets, "LSH Ensemble",
                  t.ElapsedMillis(), "(8 partitions)");
    }
    {
      // HNSW over set embeddings (one vector per set).
      lake::WordEmbedding words(lake::WordEmbedding::Options{.dim = 64});
      lake::ColumnEncoder encoder(&words);
      std::vector<lake::Vector> vecs;
      vecs.reserve(w.sets.size());
      for (const auto& s : w.sets) vecs.push_back(encoder.EncodeValues(s));
      lake::Timer t;  // embed cost excluded: measure the graph build
      lake::HnswIndex hnsw(lake::HnswIndex::Options{
          64, lake::VectorMetric::kCosine, 16, 100, 5});
      for (size_t s = 0; s < vecs.size(); ++s) {
        (void)hnsw.Insert(s, std::move(vecs[s]));
      }
      std::printf("%-10zu %-22s %12.1f %16zu\n", num_sets, "HNSW",
                  t.ElapsedMillis(), hnsw.TotalLinks());
    }
  }
  std::printf(
      "\nshape check: per-set build cost is roughly flat for inverted\n"
      "lists, higher for the LSH family (128 hashes/set), and highest for\n"
      "HNSW (beam search per insert) — the survey's indexing trade-off.\n");
  return 0;
}
