// E2 — Jaccard vs containment for domain search under cardinality skew
// (LSH Ensemble, Zhu et al. VLDB 2016; survey §2.4).
//
// Claim reproduced: ranking candidate columns by Jaccard is biased against
// large attributes — a superset that fully contains the query ranks below
// a small near-duplicate — while set containment ranks all fully-
// containing attributes equally, regardless of their cardinality.
//
// Output: for queries planted into hosts of varying size, the rank of the
// *largest* fully-containing set under each measure.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sketch/set_ops.h"
#include "util/random.h"

namespace {

std::vector<std::string> Values(size_t begin, size_t end) {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) out.push_back("v" + std::to_string(i));
  return out;
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E2: bench_containment",
      "Jaccard is biased against large attributes; containment is not");

  // Lake: one small near-duplicate of the query, fully-containing supersets
  // of growing size, and background noise sets.
  const size_t query_size = 100;
  const std::vector<std::string> query = Values(0, query_size);
  const lake::HashedSet qset = lake::HashedSet::FromValues(query);

  struct Candidate {
    std::string label;
    lake::HashedSet set;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"near-duplicate (n=110)",
                        lake::HashedSet::FromValues(Values(0, 110))});
  for (size_t mult : {2, 8, 32, 128}) {
    const size_t n = query_size * mult;
    candidates.push_back(
        {"superset (n=" + std::to_string(n) + ")",
         lake::HashedSet::FromValues(Values(0, n))});
  }
  lake::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const size_t start = 10000 + i * 2000;
    candidates.push_back(
        {"noise", lake::HashedSet::FromValues(
                      Values(start, start + 50 + rng.NextBounded(400)))});
  }

  struct Scored {
    size_t idx;
    double score;
  };
  auto rank_of = [&](const std::vector<Scored>& sorted, size_t idx) {
    for (size_t r = 0; r < sorted.size(); ++r) {
      if (sorted[r].idx == idx) return r + 1;
    }
    return sorted.size();
  };

  std::vector<Scored> by_jaccard, by_containment;
  for (size_t i = 0; i < candidates.size(); ++i) {
    by_jaccard.push_back({i, qset.Jaccard(candidates[i].set)});
    by_containment.push_back({i, qset.ContainmentIn(candidates[i].set)});
  }
  auto desc = [](const Scored& a, const Scored& b) {
    return a.score > b.score;
  };
  std::stable_sort(by_jaccard.begin(), by_jaccard.end(), desc);
  std::stable_sort(by_containment.begin(), by_containment.end(), desc);

  std::printf("%-24s %10s %14s %10s %14s\n", "candidate", "jaccard",
              "jaccard-rank", "contain", "contain-rank");
  for (size_t i = 0; i < 5; ++i) {
    std::printf("%-24s %10.4f %14zu %10.4f %14zu\n",
                candidates[i].label.c_str(),
                qset.Jaccard(candidates[i].set), rank_of(by_jaccard, i),
                qset.ContainmentIn(candidates[i].set),
                rank_of(by_containment, i));
  }
  std::printf(
      "\nshape check: under Jaccard the 128x superset ranks %zu; under\n"
      "containment every full superset ties at rank <= 5 with score 1.0.\n",
      rank_of(by_jaccard, 4));
  return 0;
}
