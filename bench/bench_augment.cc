// E14 — ARDA-style augmentation: joined lake features improve a
// downstream model, and random-injection selection prunes noise features
// (Chepurko et al., VLDB 2020; survey §2.7).
//
// Series reproduced: cross-validated R² before vs after augmentation as
// the signal strength of the hidden lake feature varies; the selector
// keeps the driver feature and rejects pure-noise columns.

#include <cstdio>

#include "bench_common.h"
#include "apps/augmentation.h"
#include "search/join_josie.h"
#include "table/catalog.h"
#include "util/random.h"

namespace {

struct Workload {
  lake::DataLakeCatalog catalog;
  lake::Table base{"base"};
  std::vector<double> target;
};

/// Base table's target = weak_coef*weak + signal_coef*hidden_driver + eps,
/// where the driver lives only in a lake table reachable by join.
Workload MakeWorkload(double signal_coef, uint64_t seed) {
  lake::Rng rng(seed);
  const size_t n = 150;
  Workload w;

  std::vector<std::string> keys;
  std::vector<double> driver(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("entity" + std::to_string(i));
    driver[i] = rng.NextGaussian();
  }
  {
    lake::Table t("signals");
    lake::Column key("entity", lake::DataType::kString);
    lake::Column value("indicator", lake::DataType::kDouble);
    lake::Column noise1("noise a", lake::DataType::kDouble);
    lake::Column noise2("noise b", lake::DataType::kDouble);
    for (size_t i = 0; i < n; ++i) {
      key.Append(lake::Value(keys[i]));
      value.Append(lake::Value(driver[i]));
      noise1.Append(lake::Value(rng.NextGaussian()));
      noise2.Append(lake::Value(rng.NextGaussian()));
    }
    (void)t.AddColumn(std::move(key));
    (void)t.AddColumn(std::move(value));
    (void)t.AddColumn(std::move(noise1));
    (void)t.AddColumn(std::move(noise2));
    (void)w.catalog.AddTable(std::move(t));
  }

  lake::Column key("entity", lake::DataType::kString);
  lake::Column weak("weak", lake::DataType::kDouble);
  w.target.resize(n);
  for (size_t i = 0; i < n; ++i) {
    key.Append(lake::Value(keys[i]));
    const double weak_v = rng.NextGaussian();
    weak.Append(lake::Value(weak_v));
    w.target[i] =
        0.5 * weak_v + signal_coef * driver[i] + 0.1 * rng.NextGaussian();
  }
  (void)w.base.AddColumn(std::move(key));
  (void)w.base.AddColumn(std::move(weak));
  return w;
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E14: bench_augment",
      "join-discovered features raise downstream R²; noise injection "
      "filters spurious candidates");

  std::printf("%-14s %10s %12s %12s %10s\n", "signal coef", "base R2",
              "augmented R2", "gain", "selected");
  for (double signal : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    Workload w = MakeWorkload(signal, /*seed=*/1000 + signal * 10);
    lake::JosieJoinSearch join(&w.catalog);
    lake::DataAugmenter augmenter(&w.catalog, &join);
    auto report = augmenter.Augment(w.base, 0, {1}, w.target);
    if (!report.ok()) {
      std::printf("%-14.1f augmentation failed: %s\n", signal,
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("%-14.1f %10.3f %12.3f %12.3f %10zu\n", signal,
                report->base_r2, report->augmented_r2,
                report->augmented_r2 - report->base_r2,
                report->selected.size());
  }
  std::printf(
      "\nshape check: gain grows with the planted signal strength; at\n"
      "signal=0 the selector keeps (near) zero features and R² is flat —\n"
      "random injection prevents regressions from noise features.\n");
  return 0;
}
