// E8 — Sketch accuracy and cost: MinHash / KMV / HLL error vs sketch
// size, plus correlation-sketch estimation error (survey §3 indexing;
// Santos et al. ICDE 2022).
//
// Series reproduced: estimation error decays ~1/sqrt(size) for all three
// sketch families; the QCR correlation estimate converges to the planted
// correlation as the sketch grows.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "sketch/correlation_sketch.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "util/hash.h"
#include "util/random.h"

namespace {

std::vector<std::string> Values(size_t begin, size_t end) {
  std::vector<std::string> out;
  for (size_t i = begin; i < end; ++i) out.push_back("v" + std::to_string(i));
  return out;
}

void AccuracyTables() {
  // Jaccard estimation: true J = 1/3 (A = 0..2000, B = 1000..3000).
  std::printf("MinHash Jaccard estimation (true J = 0.3333):\n");
  std::printf("%8s %12s %12s\n", "hashes", "estimate", "abs error");
  const auto a_vals = Values(0, 2000);
  const auto b_vals = Values(1000, 3000);
  for (size_t width : {16, 32, 64, 128, 256, 512}) {
    const auto a = lake::MinHashSignature::Build(a_vals, width);
    const auto b = lake::MinHashSignature::Build(b_vals, width);
    const double est = a.EstimateJaccard(b).value();
    std::printf("%8zu %12.4f %12.4f\n", width, est,
                std::abs(est - 1.0 / 3.0));
  }

  std::printf("\nKMV distinct-count estimation (true n = 50000):\n");
  std::printf("%8s %12s %12s\n", "k", "estimate", "rel error");
  const auto big = Values(0, 50000);
  for (size_t k : {32, 64, 128, 256, 512, 1024}) {
    const auto s = lake::KmvSketch::Build(big, k);
    const double est = s.EstimateDistinct();
    std::printf("%8zu %12.0f %12.4f\n", k, est,
                std::abs(est - 50000.0) / 50000.0);
  }

  std::printf("\nHLL distinct-count estimation (true n = 50000):\n");
  std::printf("%8s %10s %12s %12s\n", "p", "bytes", "estimate", "rel error");
  for (int p : {8, 10, 12, 14}) {
    const auto s = lake::HllSketch::Build(big, p);
    const double est = s.Estimate();
    std::printf("%8d %10zu %12.0f %12.4f\n", p, s.num_registers(), est,
                std::abs(est - 50000.0) / 50000.0);
  }

  std::printf("\nCorrelation sketch QCR estimate (planted rho = 0.80):\n");
  std::printf("%8s %12s %12s\n", "pairs", "qcr", "pearson-est");
  for (size_t size : {32, 64, 128, 256, 512}) {
    lake::Rng rng(7);
    lake::CorrelationSketch a(size), b(size);
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.NextGaussian();
      const double y = 0.8 * x + 0.6 * rng.NextGaussian();
      const uint64_t key = lake::Hash64("k" + std::to_string(i));
      a.Update(key, x);
      b.Update(key, y);
    }
    std::printf("%8zu %12.4f %12.4f\n", size,
                a.EstimateQcr(b).value_or(0.0),
                a.EstimatePearson(b).value_or(0.0));
  }
}

// Throughput benchmarks: sketch update cost.
void BM_MinHashUpdate(benchmark::State& state) {
  lake::MinHashSignature sig(static_cast<size_t>(state.range(0)));
  uint64_t h = 1;
  for (auto _ : state) {
    sig.Update(h = lake::Mix64(h));
  }
}
BENCHMARK(BM_MinHashUpdate)->Arg(64)->Arg(128)->Arg(256);

void BM_KmvUpdate(benchmark::State& state) {
  lake::KmvSketch sketch(static_cast<size_t>(state.range(0)));
  uint64_t h = 1;
  for (auto _ : state) {
    sketch.Update(h = lake::Mix64(h));
  }
}
BENCHMARK(BM_KmvUpdate)->Arg(256)->Arg(1024);

void BM_HllUpdate(benchmark::State& state) {
  lake::HllSketch sketch(12);
  uint64_t h = 1;
  for (auto _ : state) {
    sketch.Update(h = lake::Mix64(h));
  }
}
BENCHMARK(BM_HllUpdate);

}  // namespace

int main(int argc, char** argv) {
  lake::bench::PrintHeader(
      "E8: bench_sketch",
      "sketch error decays with size (~1/sqrt); QCR correlation estimate "
      "converges to the planted correlation");
  AccuracyTables();
  std::printf("\nupdate throughput:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
