// E18 — concurrent query serving: thread-pool scaling, result-cache
// effect on tail latency, and overload behavior under adaptive admission
// (survey §3, "discovery as a service").
//
// Claims demonstrated: (1) throughput scales with workers until the
// machine's cores are saturated (on a multi-core host, >2x from 1 -> 4
// workers); (2) a warm result cache collapses p50 latency versus the cold
// pass while reporting a nonzero hit rate; (3) the admission queue keeps
// the service responsive instead of building unbounded backlog; (4) under
// offered load past capacity (1x/2x/4x sweep), adaptive admission
// (AIMD limit + CoDel dequeue shedding) holds goodput near capacity and
// fails shed queries fast, where a fixed admission bound lets the queue
// grow until queries die of deadline — congestion collapse.
//
// Each row replays the same mixed keyword/join/union workload through a
// fresh QueryService. "cold" bypasses the cache entirely (pure engine
// throughput); "warm" replays the workload after a priming pass, so
// repeated queries hit the cache. A RESULT_JSON line per row plus one
// summary line make the output machine-readable (bench_common.h idiom).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster_engine.h"
#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace {

using lake::DiscoveryEngine;
using lake::GeneratedLake;
using lake::GeneratorOptions;
using lake::LakeGenerator;
using lake::StrFormat;
using lake::StatusCode;
using lake::serve::QueryKind;
using lake::serve::QueryRequest;
using lake::serve::QueryService;
using lake::serve::QueryResponse;
using lake::serve::SubmittedQuery;

/// The replayed workload: a few dozen distinct queries cycled until
/// `kTotalQueries`, so a warm cache sees every query several times.
constexpr size_t kDistinctQueries = 24;
constexpr size_t kTotalQueries = 240;
constexpr size_t kTopK = 10;

std::vector<QueryRequest> MakeWorkload(const GeneratedLake& lake) {
  std::vector<QueryRequest> distinct;
  const size_t num_tables = lake.catalog.num_tables();
  for (size_t i = 0; distinct.size() < kDistinctQueries; ++i) {
    QueryRequest req;
    req.k = kTopK;
    switch (i % 3) {
      case 0: {  // join on a string column of table i
        const lake::Table& t =
            lake.catalog.table(static_cast<lake::TableId>(i % num_tables));
        req.kind = QueryKind::kJoin;
        req.join_method = lake::JoinMethod::kJosie;
        for (size_t c = 0; c < t.num_columns(); ++c) {
          if (!t.column(c).IsNumeric()) {
            req.values = t.column(c).DistinctStrings();
            break;
          }
        }
        if (req.values.empty()) continue;
        break;
      }
      case 1:  // keyword on a template topic
        req.kind = QueryKind::kKeyword;
        req.keyword = lake.topic_of[i % lake.topic_of.size()];
        break;
      default:  // union with the query table excluded
        req.kind = QueryKind::kUnion;
        req.union_method = lake::UnionMethod::kStarmie;
        req.union_table =
            &lake.catalog.table(static_cast<lake::TableId>(i % num_tables));
        req.exclude = static_cast<int64_t>(i % num_tables);
        break;
    }
    distinct.push_back(std::move(req));
  }
  std::vector<QueryRequest> workload;
  workload.reserve(kTotalQueries);
  for (size_t i = 0; i < kTotalQueries; ++i) {
    workload.push_back(distinct[i % distinct.size()]);
  }
  return workload;
}

struct PassResult {
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

/// Replays the workload through `service`, returning throughput and
/// latency percentiles of this pass only.
PassResult Replay(QueryService& service,
                  const std::vector<QueryRequest>& workload,
                  bool bypass_cache) {
  std::vector<SubmittedQuery> inflight;
  inflight.reserve(workload.size());
  const auto start = std::chrono::steady_clock::now();
  for (const QueryRequest& req : workload) {
    QueryRequest copy = req;
    copy.bypass_cache = bypass_cache;
    auto submitted = service.Submit(std::move(copy));
    if (!submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.status().ToString().c_str());
      continue;
    }
    inflight.push_back(std::move(submitted).value());
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(inflight.size());
  for (SubmittedQuery& q : inflight) {
    const QueryResponse response = q.response.get();
    if (response.status.ok()) latencies_ms.push_back(response.latency_ms);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  PassResult r;
  r.qps = wall_s > 0 ? static_cast<double>(latencies_ms.size()) / wall_s : 0;
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p95_ms = Percentile(latencies_ms, 0.95);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  r.hit_rate = service.cache().GetStats().hit_rate();
  return r;
}

// ------------------------------------------------------ overload sweep

double ElapsedMs(std::chrono::steady_clock::time_point start);

constexpr auto kOverloadDeadline = std::chrono::milliseconds(300);

/// Sustainable throughput for the sweep workload: a full-queue closed-loop
/// drain through a fixed-admission service with no deadlines. The sweep's
/// load factors are scaled from this; the short cold replay above is too
/// small a sample (and a different code path — caching, deadlines) to
/// anchor the 1x cell reliably.
double MeasureOverloadCapacity(const DiscoveryEngine& engine,
                               const std::vector<QueryRequest>& workload) {
  QueryService::Options sopts;
  sopts.num_workers = 4;
  sopts.max_pending = 8192;
  sopts.adaptive_admission = false;
  sopts.enable_cache = false;
  sopts.enable_breakers = false;
  sopts.enable_brownout = false;
  QueryService service(&engine, sopts);
  constexpr size_t kCalibration = 1500;
  std::vector<std::future<QueryResponse>> inflight;
  inflight.reserve(kCalibration);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kCalibration; ++i) {
    QueryRequest copy = workload[i % workload.size()];
    auto submitted = service.Submit(std::move(copy));
    if (submitted.ok()) inflight.push_back(std::move(submitted->response));
  }
  size_t ok = 0;
  for (std::future<QueryResponse>& f : inflight) {
    if (f.get().status.ok()) ++ok;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall_s > 0 ? static_cast<double>(ok) / wall_s : 100.0;
}

/// One cell of the overload sweep: fixed-rate open-loop arrivals replayed
/// against a fresh service, queries carrying the default deadline.
struct OverloadCell {
  double offered_qps = 0;
  double goodput_qps = 0;   // ok responses / wall time (incl. drain)
  double shed_rate = 0;     // shed (submit-reject + CoDel) / offered
  double dead_rate = 0;     // died of deadline / offered
  double p50_ms = 0;        // successful queries only
  double p99_ms = 0;
  double shed_fail_ms_p95 = 0;  // submit-to-failure time of shed queries
  size_t final_limit = 0;       // adaptive concurrency limit at the end
};

OverloadCell RunOverloadCell(const DiscoveryEngine& engine,
                             const std::vector<QueryRequest>& workload,
                             double offered_qps, bool adaptive) {
  QueryService::Options sopts;
  sopts.num_workers = 4;
  sopts.max_pending = 4096;
  sopts.adaptive_admission = adaptive;
  // Isolate the admission story: no cache to absorb the load, no breakers
  // or brownout to convert overload into a different failure mode. A
  // short decrease cooldown lets the AIMD loop converge within the
  // warm-up instead of spending the measured window walking down.
  sopts.enable_cache = false;
  sopts.enable_breakers = false;
  sopts.enable_brownout = false;
  sopts.default_deadline = kOverloadDeadline;
  sopts.admission.decrease_cooldown = std::chrono::milliseconds(25);
  // Throughput-leaning CoDel target (the derived default, deadline/10,
  // optimizes sojourn instead): the limit settles where queue wait is
  // ~1/4 of the deadline, which keeps goodput at capacity under 4x load
  // while still failing everything sheddable long before the deadline.
  sopts.admission.codel_target = kOverloadDeadline / 4;
  QueryService service(&engine, sopts);

  // Warm-up arrivals run at the offered rate but are excluded from the
  // stats: the sweep measures steady-state behavior, not the transient
  // while the controller discovers the overload.
  const double warmup_s = 0.6;
  const double duration_s = 2.4;
  const size_t warmup = std::min<size_t>(
      static_cast<size_t>(offered_qps * warmup_s), 4000);
  const size_t total = warmup + std::min<size_t>(
      static_cast<size_t>(offered_qps * duration_s), 16000);
  const auto interarrival =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / offered_qps));

  std::vector<std::future<QueryResponse>> warming;
  warming.reserve(warmup);
  std::vector<std::future<QueryResponse>> inflight;
  inflight.reserve(total - warmup);
  std::vector<double> shed_fail_ms;
  size_t shed = 0, dead = 0, ok = 0, measured = 0;

  auto measure_start = std::chrono::steady_clock::now();
  auto next_arrival = measure_start;
  // Pace in ~1ms bursts: at thousands of offered qps a per-arrival sleep
  // makes the (single-core, shared-with-workers) arrival thread cost scale
  // with offered load; millisecond bursts keep the open-loop rate while
  // costing every cell the same wakeup overhead.
  const size_t burst =
      std::max<size_t>(1, static_cast<size_t>(offered_qps / 1000.0));
  for (size_t i = 0; i < total; ++i) {
    if (i % burst == 0) std::this_thread::sleep_until(next_arrival);
    next_arrival += interarrival;
    const bool in_measurement = i >= warmup;
    if (i == warmup) {
      // Re-align the pacing clock: if the warm-up fell behind the offered
      // rate, leftover lag would otherwise fire the first measured
      // arrivals as a catch-up burst and inflate goodput above offered.
      measure_start = std::chrono::steady_clock::now();
      next_arrival = measure_start + interarrival;
    }
    QueryRequest copy = workload[i % workload.size()];
    const auto submit_start = std::chrono::steady_clock::now();
    auto submitted = service.Submit(std::move(copy));
    if (!in_measurement) {
      if (submitted.ok()) warming.push_back(std::move(submitted->response));
      continue;
    }
    ++measured;
    if (!submitted.ok()) {  // shed at admission: must be near-instant
      ++shed;
      shed_fail_ms.push_back(ElapsedMs(submit_start));
      continue;
    }
    inflight.push_back(std::move(submitted->response));
  }
  for (std::future<QueryResponse>& f : warming) (void)f.get();
  std::vector<double> ok_ms;
  ok_ms.reserve(inflight.size());
  for (std::future<QueryResponse>& f : inflight) {
    const QueryResponse r = f.get();
    if (r.status.ok()) {
      ++ok;
      ok_ms.push_back(r.latency_ms);
    } else if (r.status.code() == StatusCode::kOverloaded) {
      ++shed;  // CoDel drop at dequeue
      shed_fail_ms.push_back(r.latency_ms);
    } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
      ++dead;  // queued past its whole budget: the slow failure mode
    }
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - measure_start)
                            .count();

  std::sort(ok_ms.begin(), ok_ms.end());
  std::sort(shed_fail_ms.begin(), shed_fail_ms.end());
  OverloadCell cell;
  cell.offered_qps = offered_qps;
  cell.goodput_qps = wall_s > 0 ? static_cast<double>(ok) / wall_s : 0;
  cell.shed_rate =
      static_cast<double>(shed) / static_cast<double>(std::max<size_t>(1, measured));
  cell.dead_rate =
      static_cast<double>(dead) / static_cast<double>(std::max<size_t>(1, measured));
  cell.p50_ms = Percentile(ok_ms, 0.50);
  cell.p99_ms = Percentile(ok_ms, 0.99);
  cell.shed_fail_ms_p95 = Percentile(shed_fail_ms, 0.95);
  cell.final_limit = service.admission().limit();
  return cell;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Flips one payload byte of `section` in generation `gen` of `dir`.
void CorruptSection(const std::string& dir, uint64_t gen,
                    const std::string& section) {
  const std::string path =
      dir + "/" + lake::store::SnapshotStore::SnapshotFileName(gen);
  auto reader = lake::store::SnapshotReader::OpenFile(path);
  if (!reader.ok()) return;
  for (const auto& info : reader->sections()) {
    if (info.name != section) continue;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = std::move(buf).str();
    bytes[info.offset + 5] ^= 1;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return;
  }
}

/// Deferred engine + RecoveryManager restore from `store`, timed. Reports
/// the degraded-mode counters the serving layer exports.
struct RecoveryRow {
  double recovery_ms = 0;
  uint64_t sections_recovered = 0;
  int degraded = 0;
  uint64_t quarantined_sections = 0;
};

RecoveryRow RunRecovery(const GeneratedLake& lake,
                        const DiscoveryEngine::Options& eopts,
                        lake::store::SnapshotStore* store) {
  DiscoveryEngine::Options deferred = eopts;
  deferred.defer_index_build = true;
  DiscoveryEngine engine(&lake.catalog, &lake.kb, deferred);
  lake::store::RecoveryManager recovery(store);
  for (const std::string& section : engine.PendingIndexSections()) {
    recovery.Register(section, [&engine, section](const std::string& payload) {
      return engine.LoadIndexSection(section, payload);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  (void)recovery.RecoverAll();
  RecoveryRow row;
  row.recovery_ms = ElapsedMs(start);
  row.sections_recovered = recovery.sections_loaded();
  row.degraded = recovery.degraded() ? 1 : 0;
  row.quarantined_sections = recovery.quarantined().size();
  return row;
}

// ---------------------------------------------------- shard sweep (E20)

/// The cluster addresses tables by name (ids are shard-local), so the
/// union queries' id-based self-exclusion is rewritten to exclude_name.
std::vector<QueryRequest> ClusterWorkload(
    const GeneratedLake& lake, const std::vector<QueryRequest>& workload) {
  std::vector<QueryRequest> out = workload;
  for (QueryRequest& req : out) {
    if (req.kind == QueryKind::kUnion && req.exclude >= 0) {
      req.exclude_name =
          lake.catalog.table(static_cast<lake::TableId>(req.exclude)).name();
      req.exclude = -1;
    }
  }
  return out;
}

// ------------------------------------------- anti-entropy cells (E21)

/// E21: the cost of replica consistency. Two cells: (1) scrub overhead —
/// the same workload replayed with the background scrubber off vs on at
/// an aggressive cadence (the steady-state pass is R digest loads per
/// shard, so the p95s should be statistically indistinguishable); (2)
/// repair convergence — every replica 1 misses one mutation batch
/// (injected apply failure), and the wall time from the divergent ack to
/// cluster-wide digest equality is the time the lake serves with reduced
/// redundancy.
int RunAntiEntropy(const GeneratedLake& lake,
                   const DiscoveryEngine::Options& eopts,
                   const std::vector<QueryRequest>& workload) {
  using lake::cluster::ClusterEngine;
  using lake::cluster::ReplicaSet;
  std::printf(
      "\nE21: anti-entropy — scrub overhead and repair convergence\n");

  auto cluster_options = [&](bool scrub_on) {
    ClusterEngine::Options copts;
    copts.num_shards = 2;
    copts.num_replicas = 2;
    copts.write_quorum = 1;  // R=2: one replica down must not block acks
    copts.engine.base_options = eopts;
    copts.engine.kb = &lake.kb;
    copts.enable_scrubber = scrub_on;
    copts.scrub_interval_ms = 10;  // worst-case cadence for the overhead cell
    return copts;
  };

  // Cell 1: query tail with the scrubber off vs hammering every 10ms.
  double p95_off = 0;
  double p95_on = 0;
  for (const bool scrub_on : {false, true}) {
    ClusterEngine cluster(lake.catalog, cluster_options(scrub_on));
    QueryService::Options sopts;
    sopts.num_workers = 4;
    sopts.max_pending = 4096;
    QueryService service(&cluster, sopts);
    const PassResult r = Replay(service, workload, /*bypass_cache=*/true);
    (scrub_on ? p95_on : p95_off) = r.p95_ms;
    std::printf("scrubber %-3s (2 shards x 2 replicas, 10ms cadence): "
                "qps %.1f  p50 %.3fms  p95 %.3fms\n",
                scrub_on ? "on" : "off", r.qps, r.p50_ms, r.p95_ms);
  }
  const double overhead =
      p95_off > 0 ? (p95_on - p95_off) / p95_off * 100.0 : 0;
  std::printf("scrub overhead: p95 %.3fms -> %.3fms (%+.1f%%)\n", p95_off,
              p95_on, overhead);
  lake::bench::PrintJsonLine(
      "E21:bench_serve:scrub_overhead",
      StrFormat("\"shards\":2,\"replicas\":2,\"scrub_interval_ms\":10,"
                "\"p95_off_ms\":%.3f,\"p95_on_ms\":%.3f,"
                "\"overhead_pct\":%.1f",
                p95_off, p95_on, overhead));

  // Cell 2: inject divergence, time the background repair. Replica 1 of
  // both shards misses one 16-table batch; convergence is Health showing
  // digest equality and zero stale replicas again.
  ClusterEngine::Options copts = cluster_options(true);
  copts.scrub_interval_ms = 25;
  ClusterEngine cluster(lake.catalog, copts);
  constexpr size_t kDivergentTables = 16;
  lake::ingest::LiveEngine::Batch batch;
  for (size_t i = 0; i < kDivergentTables; ++i) {
    lake::Table derived =
        lake.catalog.table(static_cast<lake::TableId>(i));
    derived.set_name("repair_probe_" + std::to_string(i));
    batch.adds.push_back(std::move(derived));
  }
  for (uint32_t s = 0; s < 2; ++s) {
    lake::FaultSpec spec;
    spec.max_fires = 1;
    lake::FailpointRegistry::Instance().Arm(
        ReplicaSet::ApplyFailpointName(s, 1), spec);
  }
  const auto diverge_start = std::chrono::steady_clock::now();
  size_t acked = 0;
  for (const auto& add : cluster.ApplyBatch(std::move(batch)).adds) {
    if (add.ok()) ++acked;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool converged = false;
  while (!converged && std::chrono::steady_clock::now() < deadline) {
    converged = true;
    for (const ClusterEngine::ShardHealth& sh : cluster.Health()) {
      if (!sh.digests_agree || sh.replicas_stale != 0) converged = false;
    }
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double convergence_ms = ElapsedMs(diverge_start);
  lake::FailpointRegistry::Instance().Clear();
  std::printf(
      "repair convergence: %zu/%zu adds acked with replica 1 down on both "
      "shards; background scrub (25ms cadence) restored digest equality "
      "in %.1fms (converged=%d)\n",
      acked, kDivergentTables, convergence_ms, converged ? 1 : 0);
  lake::bench::PrintJsonLine(
      "E21:bench_serve:repair",
      StrFormat("\"shards\":2,\"replicas\":2,\"divergent_tables\":%zu,"
                "\"acked\":%zu,\"scrub_interval_ms\":25,"
                "\"convergence_ms\":%.1f,\"converged\":%d",
                kDivergentTables, acked, convergence_ms, converged ? 1 : 0));
  return converged ? 0 : 1;
}

/// E20: scatter-gather serving over N shards — shard-parallel index build
/// and per-shard top-k, then a failover cell (4 shards, 2 replicas, every
/// primary killed) that must stay exact and keep its tail bounded.
int RunShardSweep(const GeneratedLake& lake,
                  const DiscoveryEngine::Options& eopts) {
  using lake::cluster::ClusterEngine;
  lake::bench::PrintHeader(
      "E20: bench_serve --shards",
      "scatter-gather top-k over a consistent-hash cluster: shard-parallel "
      "build, merged results identical to one engine, failover that costs "
      "a bounded tail instead of correctness");

  const std::vector<QueryRequest> workload =
      ClusterWorkload(lake, MakeWorkload(lake));
  std::printf("%zu tables, %zu queries (%zu distinct), k=%zu\n",
              lake.catalog.num_tables(), workload.size(), kDistinctQueries,
              kTopK);
  std::printf("%-7s %10s %10s %9s %9s\n", "shards", "build_ms", "qps",
              "p50_ms", "p95_ms");

  double build_ms_1 = 0, qps_1 = 0;
  double build_ms_best = 0, qps_best = 0;
  size_t shards_best = 1;
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    ClusterEngine::Options copts;
    copts.num_shards = shards;
    copts.num_replicas = 1;
    copts.engine.base_options = eopts;
    copts.engine.kb = &lake.kb;
    const auto build_start = std::chrono::steady_clock::now();
    ClusterEngine cluster(lake.catalog, copts);
    const double build_ms = ElapsedMs(build_start);

    QueryService::Options sopts;
    sopts.num_workers = 4;
    sopts.max_pending = 4096;
    QueryService service(&cluster, sopts);
    const PassResult r = Replay(service, workload, /*bypass_cache=*/true);

    std::printf("%-7zu %10.1f %10.1f %9.3f %9.3f\n", shards, build_ms, r.qps,
                r.p50_ms, r.p95_ms);
    lake::bench::PrintJsonLine(
        "E20:bench_serve:shards",
        StrFormat("\"shards\":%zu,\"replicas\":1,\"build_ms\":%.1f,"
                  "\"qps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f",
                  shards, build_ms, r.qps, r.p50_ms, r.p95_ms));
    if (shards == 1) {
      build_ms_1 = build_ms;
      qps_1 = r.qps;
    }
    if (r.qps > qps_best) {
      qps_best = r.qps;
      shards_best = shards;
      build_ms_best = build_ms;
    }
  }
  std::printf(
      "\nbest qps at %zu shards (%.1f vs %.1f single-shard); build %.1fms "
      "vs %.1fms single-shard. Shard builds and scatters run on one pool — "
      "on a multi-core host both scale with min(shards, cores); this "
      "container is single-core, so the numbers above show the overhead "
      "floor, not the scaling ceiling.\n",
      shards_best, qps_best, qps_1, build_ms_best, build_ms_1);

  // Failover cell: 4 shards x 2 replicas; kill replica 0 everywhere. The
  // read path must route around the dead primaries with exact results and
  // a tail no worse than ~2x healthy.
  ClusterEngine::Options copts;
  copts.num_shards = 4;
  copts.num_replicas = 2;
  copts.engine.base_options = eopts;
  copts.engine.kb = &lake.kb;
  ClusterEngine cluster(lake.catalog, copts);
  QueryService::Options sopts;
  sopts.num_workers = 4;
  sopts.max_pending = 4096;
  QueryService service(&cluster, sopts);

  // Exactness signatures before the kill: (names, scores) per distinct
  // query, bypassing the cache so both passes execute.
  std::vector<std::vector<std::string>> healthy_names;
  for (size_t i = 0; i < kDistinctQueries; ++i) {
    QueryRequest req = workload[i];
    req.bypass_cache = true;
    healthy_names.push_back(service.Execute(req).table_names);
  }
  const PassResult healthy = Replay(service, workload, /*bypass_cache=*/true);

  for (uint32_t s = 0; s < 4; ++s) (void)cluster.KillReplica(s, 0);

  const PassResult failover = Replay(service, workload, /*bypass_cache=*/true);
  bool exact = true;
  for (size_t i = 0; i < kDistinctQueries; ++i) {
    QueryRequest req = workload[i];
    req.bypass_cache = true;
    const QueryResponse r = service.Execute(req);
    if (r.degraded || r.table_names != healthy_names[i]) exact = false;
  }

  const double tail_ratio =
      healthy.p95_ms > 0 ? failover.p95_ms / healthy.p95_ms : 0;
  std::printf(
      "\nfailover (4 shards x 2 replicas, all primaries killed): healthy "
      "p95 %.3fms -> failover p95 %.3fms (%.2fx), results exact=%d\n",
      healthy.p95_ms, failover.p95_ms, tail_ratio, exact ? 1 : 0);
  lake::bench::PrintJsonLine(
      "E20:bench_serve:failover",
      StrFormat("\"shards\":4,\"replicas\":2,\"healthy_p95_ms\":%.3f,"
                "\"failover_p95_ms\":%.3f,\"tail_ratio\":%.2f,\"exact\":%d",
                healthy.p95_ms, failover.p95_ms, tail_ratio, exact ? 1 : 0));

  return RunAntiEntropy(lake, eopts, workload);
}

// ------------------------------------------- tail-tolerance cell (E23)

/// Ranked (name, score) signature of one response, order-normalized the
/// same way the cluster tests canonicalize hits.
std::vector<std::pair<std::string, double>> HitSignature(
    const lake::cluster::TableQueryResponse& resp) {
  std::vector<std::pair<std::string, double>> sig;
  sig.reserve(resp.hits.size());
  for (const auto& h : resp.hits) sig.emplace_back(h.table, h.score);
  std::sort(sig.begin(), sig.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return sig;
}

struct TailRun {
  std::vector<double> ms;  // per-query wall latency, unsorted
  std::vector<std::vector<std::pair<std::string, double>>> sigs;
};

/// Replays `warmup + n` keyword queries (cycling the template topics)
/// against the cluster. The first `warmup` queries run but are excluded
/// from the latency sample: the cell measures steady state, not the
/// transient while the latency windows fill, the ejector converges, and
/// the retry budget's volume builds (the budget deliberately starves
/// hedges on a cold start — that bound is asserted separately via
/// TailStats, which spans the whole run). Result signatures come from
/// the first topic cycle regardless.
TailRun ReplayTail(lake::cluster::ClusterEngine& cluster,
                   const std::vector<std::string>& topics, size_t warmup,
                   size_t n) {
  TailRun run;
  run.ms.reserve(n);
  for (size_t i = 0; i < warmup + n; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const auto resp = cluster.Keyword(topics[i % topics.size()], kTopK);
    if (i >= warmup) run.ms.push_back(ElapsedMs(start));
    if (i < topics.size()) run.sigs.push_back(HitSignature(resp));
  }
  return run;
}

/// E23: tail tolerance under a persistently slow replica. One replica of
/// shard 0 is slowed ~10x (persistent kDelay failpoint); the same
/// keyword workload replays against a plain failover cluster and against
/// one with hedged reads + latency-outlier ejection. The claims checked:
/// hedged p99 <= 0.5x unhedged p99, hedged results bit-identical to a
/// healthy run, and duplicated sub-queries (hedges + funded retries)
/// within the retry budget's ratio-plus-floor allowance.
int RunTailCell(const GeneratedLake& lake,
                const DiscoveryEngine::Options& eopts) {
  using lake::cluster::ClusterEngine;
  lake::bench::PrintHeader(
      "E23: bench_serve --tail",
      "hedged reads cap the tail a slow replica would otherwise impose: "
      "p99 with hedging <= 0.5x without, results bit-identical, "
      "duplicated work within the retry budget");

  std::vector<std::string> topics = lake.topic_of;
  constexpr size_t kTailWarmup = 150;
  constexpr size_t kTailQueries = 300;

  auto base_options = [&] {
    ClusterEngine::Options copts;
    copts.num_shards = 2;
    copts.num_replicas = 2;
    copts.engine.base_options = eopts;
    copts.engine.kb = &lake.kb;
    return copts;
  };

  // Healthy anchor (no fault, no tail features): result signatures and
  // the p50 the slow replica is scaled from.
  std::vector<std::vector<std::pair<std::string, double>>> healthy_sigs;
  double healthy_p50_ms = 0;
  {
    ClusterEngine healthy(lake.catalog, base_options());
    TailRun run = ReplayTail(healthy, topics, /*warmup=*/0, 100);
    healthy_sigs = std::move(run.sigs);
    std::sort(run.ms.begin(), run.ms.end());
    healthy_p50_ms = Percentile(run.ms, 0.50);
  }
  const uint64_t delay_ms =
      std::max<uint64_t>(20, static_cast<uint64_t>(10.0 * healthy_p50_ms));

  auto arm_slow_replica = [delay_ms] {
    lake::FaultSpec spec;
    spec.kind = lake::FaultSpec::Kind::kDelay;
    spec.arg = delay_ms;
    spec.max_fires = 0;  // persistent: every sub-query on this replica
    lake::FailpointRegistry::Instance().Arm("cluster.exec.0.0", spec);
  };

  // Without hedging: failover-only cluster eats the full delay whenever
  // round-robin lands the slow primary.
  double p99_without = 0;
  {
    ClusterEngine plain(lake.catalog, base_options());
    arm_slow_replica();
    TailRun run = ReplayTail(plain, topics, kTailWarmup, kTailQueries);
    lake::FailpointRegistry::Instance().ClearAll();
    std::sort(run.ms.begin(), run.ms.end());
    p99_without = Percentile(run.ms, 0.99);
  }

  // With the tail layer: hedges race the fast sibling while the slow
  // outlier accumulates samples, then ejection takes it out of the
  // rotation entirely.
  ClusterEngine::Options tail_opts = base_options();
  tail_opts.tail.enable_hedging = true;
  tail_opts.tail.hedge_min_delay = std::chrono::milliseconds(1);
  tail_opts.tail.hedge_max_delay = std::chrono::milliseconds(
      std::max<uint64_t>(2, delay_ms / 4));
  tail_opts.tail.eject_multiple = 3.0;
  tail_opts.tail.eject_min_samples = 16;
  ClusterEngine hedged(lake.catalog, tail_opts);
  arm_slow_replica();
  TailRun hedged_run = ReplayTail(hedged, topics, kTailWarmup, kTailQueries);
  lake::FailpointRegistry::Instance().ClearAll();

  bool exact = hedged_run.sigs.size() == healthy_sigs.size();
  for (size_t i = 0; exact && i < healthy_sigs.size(); ++i) {
    exact = hedged_run.sigs[i] == healthy_sigs[i];
  }
  std::sort(hedged_run.ms.begin(), hedged_run.ms.end());
  const double p99_with = Percentile(hedged_run.ms, 0.99);
  const double p99_ratio = p99_without > 0 ? p99_with / p99_without : 0;

  const ClusterEngine::TailStats stats = hedged.tail_stats();
  const double hedge_win_rate =
      stats.hedges_dispatched > 0
          ? static_cast<double>(stats.hedges_won) /
                static_cast<double>(stats.hedges_dispatched)
          : 0;
  // Duplicated sub-queries (hedges + budget-funded retries) as a fraction
  // of primary volume; the budget bounds this at ratio (0.1) plus the
  // min_tokens floor amortized over the run's windows.
  const double dup_fraction =
      stats.budget_requests > 0
          ? static_cast<double>(stats.budget_acquired) /
                static_cast<double>(stats.budget_requests)
          : 0;
  const bool dup_ok = dup_fraction <= 0.15;
  size_t ejections = 0;
  for (const auto& sh : hedged.Health()) {
    for (const auto& rh : sh.replicas) ejections += rh.slow_ejections;
  }

  std::printf(
      "slow replica (shard 0, +%llums per sub-query, ~10x healthy p50 "
      "%.3fms): p99 without hedging %.3fms -> with %.3fms (%.2fx)\n"
      "hedges %llu dispatched, %llu won (win rate %.2f); budget: %llu/%llu "
      "extras granted (dup fraction %.3f, denied %llu); ejections %zu; "
      "results exact=%d\n",
      static_cast<unsigned long long>(delay_ms), healthy_p50_ms, p99_without,
      p99_with, p99_ratio,
      static_cast<unsigned long long>(stats.hedges_dispatched),
      static_cast<unsigned long long>(stats.hedges_won), hedge_win_rate,
      static_cast<unsigned long long>(stats.budget_acquired),
      static_cast<unsigned long long>(stats.budget_requests), dup_fraction,
      static_cast<unsigned long long>(stats.budget_denied), ejections,
      exact ? 1 : 0);
  lake::bench::PrintJsonLine(
      "E23:bench_serve:tail",
      StrFormat("\"shards\":2,\"replicas\":2,\"slow_delay_ms\":%llu,"
                "\"p99_without_ms\":%.3f,\"p99_with_ms\":%.3f,"
                "\"p99_ratio\":%.2f,\"hedges\":%llu,\"hedge_wins\":%llu,"
                "\"hedge_win_rate\":%.2f,\"dup_fraction\":%.3f,"
                "\"budget_denied\":%llu,\"ejections\":%zu,\"exact\":%d",
                static_cast<unsigned long long>(delay_ms), p99_without,
                p99_with, p99_ratio,
                static_cast<unsigned long long>(stats.hedges_dispatched),
                static_cast<unsigned long long>(stats.hedges_won),
                hedge_win_rate, dup_fraction,
                static_cast<unsigned long long>(stats.budget_denied),
                ejections, exact ? 1 : 0));

  const bool pass = p99_ratio <= 0.5 && exact && dup_ok;
  std::printf("\nE23 %s: p99 ratio %.2f (need <= 0.5), exact=%d, "
              "dup fraction %.3f (need <= 0.15)\n",
              pass ? "PASS" : "FAIL", p99_ratio, exact ? 1 : 0, dup_fraction);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool shard_mode = false;
  bool tail_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--shards") shard_mode = true;
    if (std::string(argv[i]) == "--tail") tail_mode = true;
  }

  GeneratorOptions gopts;
  gopts.seed = 23;
  gopts.num_domains = 8;
  gopts.num_templates = 4;
  gopts.tables_per_template = 6;
  gopts.min_rows = 40;
  gopts.max_rows = 100;
  GeneratedLake lake = LakeGenerator(gopts).Generate();

  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_tus = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.build_correlated = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;

  if (shard_mode) return RunShardSweep(lake, eopts);
  if (tail_mode) return RunTailCell(lake, eopts);

  lake::bench::PrintHeader(
      "E18: bench_serve",
      "a thread-pool query service scales throughput with workers and a "
      "warm result cache collapses p50 vs the cold pass");

  DiscoveryEngine engine(&lake.catalog, &lake.kb, eopts);

  // Durability phase: checkpoint the persistable indexes, then time a
  // deferred engine's restore — once from a clean store, once from a
  // single-generation store whose JOSIE section has a flipped byte (no
  // older generation to fall back to, so recovery must go degraded).
  {
    namespace fs = std::filesystem;
    const std::string clean_dir = fs::temp_directory_path() / "bench_serve_snap";
    const std::string bad_dir = fs::temp_directory_path() / "bench_serve_snap_bad";
    fs::remove_all(clean_dir);
    fs::remove_all(bad_dir);

    const auto ckpt_start = std::chrono::steady_clock::now();
    lake::store::SnapshotStore store(clean_dir);
    lake::store::SnapshotWriter snapshot;
    (void)engine.SaveIndexSections(&snapshot);
    const auto committed = store.Commit(snapshot);
    const double checkpoint_ms = ElapsedMs(ckpt_start);

    lake::store::SnapshotStore::Options bad_opts;
    bad_opts.keep_generations = 1;
    lake::store::SnapshotStore bad_store(bad_dir, bad_opts);
    const auto bad_gen = bad_store.Commit(snapshot);
    if (bad_gen.ok()) {
      CorruptSection(bad_dir, *bad_gen, DiscoveryEngine::kJosieSection);
    }

    const RecoveryRow clean = RunRecovery(lake, eopts, &store);
    const RecoveryRow corrupt = RunRecovery(lake, eopts, &bad_store);
    std::printf(
        "checkpoint %.1fms (gen %llu); recovery clean %.1fms "
        "(%llu sections, degraded=%d), corrupted %.1fms "
        "(%llu sections, degraded=%d, quarantined=%llu)\n\n",
        checkpoint_ms,
        static_cast<unsigned long long>(committed.ok() ? *committed : 0),
        clean.recovery_ms,
        static_cast<unsigned long long>(clean.sections_recovered),
        clean.degraded, corrupt.recovery_ms,
        static_cast<unsigned long long>(corrupt.sections_recovered),
        corrupt.degraded,
        static_cast<unsigned long long>(corrupt.quarantined_sections));
    for (const auto& [pass, row] :
         {std::pair<const char*, const RecoveryRow&>{"clean", clean},
          {"corrupted", corrupt}}) {
      lake::bench::PrintJsonLine(
          "E18:bench_serve:recovery",
          StrFormat("\"pass\":\"%s\",\"checkpoint_ms\":%.1f,"
                    "\"recovery_ms\":%.1f,\"sections_recovered\":%llu,"
                    "\"degraded\":%d,\"quarantined_sections\":%llu",
                    pass, checkpoint_ms, row.recovery_ms,
                    static_cast<unsigned long long>(row.sections_recovered),
                    row.degraded,
                    static_cast<unsigned long long>(row.quarantined_sections)));
    }
    fs::remove_all(clean_dir);
    fs::remove_all(bad_dir);
  }

  const std::vector<QueryRequest> workload = MakeWorkload(lake);
  std::printf("%zu tables, %zu queries (%zu distinct), k=%zu\n",
              lake.catalog.num_tables(), workload.size(), kDistinctQueries,
              kTopK);
  std::printf("%-8s %-5s %10s %9s %9s %9s %9s\n", "workers", "pass", "qps",
              "p50_ms", "p95_ms", "p99_ms", "hit_rate");

  double qps_cold_1 = 0, qps_cold_4 = 0;
  double warm_hit_rate = 0, warm_p50 = 0, cold_p50 = 0;
  double best_warm_qps = 0, best_warm_p95 = 0, best_warm_p99 = 0;
  for (size_t workers : {1, 2, 4, 8}) {
    QueryService::Options sopts;
    sopts.num_workers = workers;
    sopts.max_pending = 4096;
    QueryService service(&engine, sopts);

    const PassResult cold = Replay(service, workload, /*bypass_cache=*/true);
    (void)Replay(service, workload, /*bypass_cache=*/false);  // prime
    const PassResult warm = Replay(service, workload, /*bypass_cache=*/false);

    for (const auto& [pass, r] :
         {std::pair<const char*, const PassResult&>{"cold", cold},
          {"warm", warm}}) {
      std::printf("%-8zu %-5s %10.1f %9.3f %9.3f %9.3f %9.3f\n", workers,
                  pass, r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.hit_rate);
      lake::bench::PrintJsonLine(
          "E18:bench_serve",
          StrFormat("\"workers\":%zu,\"pass\":\"%s\",\"qps\":%.1f,"
                    "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                    "\"cache_hit_rate\":%.3f",
                    workers, pass, r.qps, r.p50_ms, r.p95_ms, r.p99_ms,
                    r.hit_rate));
    }
    if (workers == 1) {
      qps_cold_1 = cold.qps;
      cold_p50 = cold.p50_ms;
    }
    if (workers == 4) qps_cold_4 = cold.qps;
    if (warm.qps > best_warm_qps) {
      best_warm_qps = warm.qps;
      best_warm_p95 = warm.p95_ms;
      best_warm_p99 = warm.p99_ms;
      warm_p50 = warm.p50_ms;
      warm_hit_rate = warm.hit_rate;
    }
  }

  const double scaling = qps_cold_1 > 0 ? qps_cold_4 / qps_cold_1 : 0;
  std::printf(
      "\nscaling (cold qps, 1 -> 4 workers): %.2fx   "
      "warm p50 %.3fms vs cold p50 %.3fms (hit rate %.2f)\n",
      scaling, warm_p50, cold_p50, warm_hit_rate);
  lake::bench::PrintJsonLine(
      "E18:bench_serve:summary",
      StrFormat("\"qps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
                "\"p99_ms\":%.3f,\"cache_hit_rate\":%.3f,"
                "\"scaling_1_to_4\":%.2f",
                best_warm_qps, warm_p50, best_warm_p95, best_warm_p99,
                warm_hit_rate, scaling));

  // Overload sweep: offered load at 1x/2x/4x of measured capacity, with
  // the fixed admission bound of the original design vs the adaptive
  // controller. Every query carries the default deadline, so a backlog
  // the service fails to shed turns into slow deadline deaths.
  const double capacity = MeasureOverloadCapacity(engine, workload);
  std::printf(
      "\noverload sweep: capacity %.0f qps (closed-loop drain, 4 workers), "
      "deadline %lldms\n",
      capacity,
      static_cast<long long>(kOverloadDeadline.count()));
  std::printf("%-6s %-9s %12s %12s %10s %10s %9s %14s %6s\n", "load",
              "admission", "offered_qps", "goodput_qps", "shed_rate",
              "dead_rate", "p99_ms", "shed_fail_p95", "limit");
  double goodput_1x_adaptive = 0, goodput_4x_adaptive = 0;
  double goodput_4x_fixed = 0, shed_fail_p95_worst = 0;
  for (const double factor : {1.0, 2.0, 4.0}) {
    for (const bool adaptive : {false, true}) {
      const OverloadCell cell =
          RunOverloadCell(engine, workload, capacity * factor, adaptive);
      const char* mode = adaptive ? "adaptive" : "fixed";
      std::printf("%-6.0fx %-9s %12.1f %12.1f %10.3f %10.3f %9.3f %14.3f "
                  "%6zu\n",
                  factor, mode, cell.offered_qps, cell.goodput_qps,
                  cell.shed_rate, cell.dead_rate, cell.p99_ms,
                  cell.shed_fail_ms_p95, cell.final_limit);
      lake::bench::PrintJsonLine(
          "E18:bench_serve:overload",
          StrFormat("\"load_factor\":%.0f,\"adaptive\":%d,"
                    "\"offered_qps\":%.1f,\"goodput_qps\":%.1f,"
                    "\"shed_rate\":%.3f,\"dead_rate\":%.3f,"
                    "\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                    "\"shed_fail_ms_p95\":%.3f,\"final_limit\":%zu",
                    factor, adaptive ? 1 : 0, cell.offered_qps,
                    cell.goodput_qps, cell.shed_rate, cell.dead_rate,
                    cell.p50_ms, cell.p99_ms, cell.shed_fail_ms_p95,
                    cell.final_limit));
      if (adaptive) {
        if (factor == 1.0) goodput_1x_adaptive = cell.goodput_qps;
        if (factor == 4.0) goodput_4x_adaptive = cell.goodput_qps;
        // Only cells that shed a meaningful fraction have enough shed
        // samples for a p95 to mean anything.
        if (cell.shed_rate >= 0.05) {
          shed_fail_p95_worst =
              std::max(shed_fail_p95_worst, cell.shed_fail_ms_p95);
        }
      } else if (factor == 4.0) {
        goodput_4x_fixed = cell.goodput_qps;
      }
    }
  }
  // The collapse ratio is the headline number, and on a shared single core
  // one 3-second cell can land inside a noisy-neighbor episode. Re-run the
  // two cells it compares (interleaved, so drift hits both) and take
  // medians.
  std::vector<double> goodput_1x_runs{goodput_1x_adaptive};
  std::vector<double> goodput_4x_runs{goodput_4x_adaptive};
  for (int rep = 0; rep < 2; ++rep) {
    goodput_1x_runs.push_back(
        RunOverloadCell(engine, workload, capacity, true).goodput_qps);
    goodput_4x_runs.push_back(
        RunOverloadCell(engine, workload, capacity * 4.0, true).goodput_qps);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  goodput_1x_adaptive = median(goodput_1x_runs);
  goodput_4x_adaptive = median(goodput_4x_runs);
  const double collapse_ratio = goodput_1x_adaptive > 0
                                    ? goodput_4x_adaptive / goodput_1x_adaptive
                                    : 0;
  std::printf(
      "\nno congestion collapse: adaptive goodput at 4x / 1x = %.2f "
      "(medians of 3; fixed 4x goodput %.1f qps); worst shed-failure p95 "
      "%.2fms (deadline %lldms)\n",
      collapse_ratio, goodput_4x_fixed, shed_fail_p95_worst,
      static_cast<long long>(kOverloadDeadline.count()));
  lake::bench::PrintJsonLine(
      "E18:bench_serve:overload_summary",
      StrFormat("\"capacity_qps\":%.1f,\"goodput_1x_adaptive\":%.1f,"
                "\"goodput_4x_adaptive\":%.1f,"
                "\"goodput_4x_fixed\":%.1f,\"goodput_4x_over_1x\":%.2f,"
                "\"shed_fail_ms_p95_worst\":%.2f,\"deadline_ms\":%lld",
                capacity, goodput_1x_adaptive, goodput_4x_adaptive,
                goodput_4x_fixed, collapse_ratio, shed_fail_p95_worst,
                static_cast<long long>(kOverloadDeadline.count())));
  return 0;
}
