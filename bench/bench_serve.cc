// E18 — concurrent query serving: thread-pool scaling and result-cache
// effect on tail latency (survey §3, "discovery as a service").
//
// Claims demonstrated: (1) throughput scales with workers until the
// machine's cores are saturated (on a multi-core host, >2x from 1 -> 4
// workers); (2) a warm result cache collapses p50 latency versus the cold
// pass while reporting a nonzero hit rate; (3) the admission queue keeps
// the service responsive instead of building unbounded backlog.
//
// Each row replays the same mixed keyword/join/union workload through a
// fresh QueryService. "cold" bypasses the cache entirely (pure engine
// throughput); "warm" replays the workload after a priming pass, so
// repeated queries hit the cache. A RESULT_JSON line per row plus one
// summary line make the output machine-readable (bench_common.h idiom).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "util/string_util.h"

namespace {

using lake::DiscoveryEngine;
using lake::GeneratedLake;
using lake::GeneratorOptions;
using lake::LakeGenerator;
using lake::StrFormat;
using lake::serve::QueryKind;
using lake::serve::QueryRequest;
using lake::serve::QueryService;
using lake::serve::QueryResponse;
using lake::serve::SubmittedQuery;

/// The replayed workload: a few dozen distinct queries cycled until
/// `kTotalQueries`, so a warm cache sees every query several times.
constexpr size_t kDistinctQueries = 24;
constexpr size_t kTotalQueries = 240;
constexpr size_t kTopK = 10;

std::vector<QueryRequest> MakeWorkload(const GeneratedLake& lake) {
  std::vector<QueryRequest> distinct;
  const size_t num_tables = lake.catalog.num_tables();
  for (size_t i = 0; distinct.size() < kDistinctQueries; ++i) {
    QueryRequest req;
    req.k = kTopK;
    switch (i % 3) {
      case 0: {  // join on a string column of table i
        const lake::Table& t =
            lake.catalog.table(static_cast<lake::TableId>(i % num_tables));
        req.kind = QueryKind::kJoin;
        req.join_method = lake::JoinMethod::kJosie;
        for (size_t c = 0; c < t.num_columns(); ++c) {
          if (!t.column(c).IsNumeric()) {
            req.values = t.column(c).DistinctStrings();
            break;
          }
        }
        if (req.values.empty()) continue;
        break;
      }
      case 1:  // keyword on a template topic
        req.kind = QueryKind::kKeyword;
        req.keyword = lake.topic_of[i % lake.topic_of.size()];
        break;
      default:  // union with the query table excluded
        req.kind = QueryKind::kUnion;
        req.union_method = lake::UnionMethod::kStarmie;
        req.union_table =
            &lake.catalog.table(static_cast<lake::TableId>(i % num_tables));
        req.exclude = static_cast<int64_t>(i % num_tables);
        break;
    }
    distinct.push_back(std::move(req));
  }
  std::vector<QueryRequest> workload;
  workload.reserve(kTotalQueries);
  for (size_t i = 0; i < kTotalQueries; ++i) {
    workload.push_back(distinct[i % distinct.size()]);
  }
  return workload;
}

struct PassResult {
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

/// Replays the workload through `service`, returning throughput and
/// latency percentiles of this pass only.
PassResult Replay(QueryService& service,
                  const std::vector<QueryRequest>& workload,
                  bool bypass_cache) {
  std::vector<SubmittedQuery> inflight;
  inflight.reserve(workload.size());
  const auto start = std::chrono::steady_clock::now();
  for (const QueryRequest& req : workload) {
    QueryRequest copy = req;
    copy.bypass_cache = bypass_cache;
    auto submitted = service.Submit(std::move(copy));
    if (!submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.status().ToString().c_str());
      continue;
    }
    inflight.push_back(std::move(submitted).value());
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(inflight.size());
  for (SubmittedQuery& q : inflight) {
    const QueryResponse response = q.response.get();
    if (response.status.ok()) latencies_ms.push_back(response.latency_ms);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  PassResult r;
  r.qps = wall_s > 0 ? static_cast<double>(latencies_ms.size()) / wall_s : 0;
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p95_ms = Percentile(latencies_ms, 0.95);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  r.hit_rate = service.cache().GetStats().hit_rate();
  return r;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Flips one payload byte of `section` in generation `gen` of `dir`.
void CorruptSection(const std::string& dir, uint64_t gen,
                    const std::string& section) {
  const std::string path =
      dir + "/" + lake::store::SnapshotStore::SnapshotFileName(gen);
  auto reader = lake::store::SnapshotReader::OpenFile(path);
  if (!reader.ok()) return;
  for (const auto& info : reader->sections()) {
    if (info.name != section) continue;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = std::move(buf).str();
    bytes[info.offset + 5] ^= 1;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return;
  }
}

/// Deferred engine + RecoveryManager restore from `store`, timed. Reports
/// the degraded-mode counters the serving layer exports.
struct RecoveryRow {
  double recovery_ms = 0;
  uint64_t sections_recovered = 0;
  int degraded = 0;
  uint64_t quarantined_sections = 0;
};

RecoveryRow RunRecovery(const GeneratedLake& lake,
                        const DiscoveryEngine::Options& eopts,
                        lake::store::SnapshotStore* store) {
  DiscoveryEngine::Options deferred = eopts;
  deferred.defer_index_build = true;
  DiscoveryEngine engine(&lake.catalog, &lake.kb, deferred);
  lake::store::RecoveryManager recovery(store);
  for (const std::string& section : engine.PendingIndexSections()) {
    recovery.Register(section, [&engine, section](const std::string& payload) {
      return engine.LoadIndexSection(section, payload);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  (void)recovery.RecoverAll();
  RecoveryRow row;
  row.recovery_ms = ElapsedMs(start);
  row.sections_recovered = recovery.sections_loaded();
  row.degraded = recovery.degraded() ? 1 : 0;
  row.quarantined_sections = recovery.quarantined().size();
  return row;
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E18: bench_serve",
      "a thread-pool query service scales throughput with workers and a "
      "warm result cache collapses p50 vs the cold pass");

  GeneratorOptions gopts;
  gopts.seed = 23;
  gopts.num_domains = 8;
  gopts.num_templates = 4;
  gopts.tables_per_template = 6;
  gopts.min_rows = 40;
  gopts.max_rows = 100;
  GeneratedLake lake = LakeGenerator(gopts).Generate();

  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_tus = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.build_correlated = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  DiscoveryEngine engine(&lake.catalog, &lake.kb, eopts);

  // Durability phase: checkpoint the persistable indexes, then time a
  // deferred engine's restore — once from a clean store, once from a
  // single-generation store whose JOSIE section has a flipped byte (no
  // older generation to fall back to, so recovery must go degraded).
  {
    namespace fs = std::filesystem;
    const std::string clean_dir = fs::temp_directory_path() / "bench_serve_snap";
    const std::string bad_dir = fs::temp_directory_path() / "bench_serve_snap_bad";
    fs::remove_all(clean_dir);
    fs::remove_all(bad_dir);

    const auto ckpt_start = std::chrono::steady_clock::now();
    lake::store::SnapshotStore store(clean_dir);
    lake::store::SnapshotWriter snapshot;
    (void)engine.SaveIndexSections(&snapshot);
    const auto committed = store.Commit(snapshot);
    const double checkpoint_ms = ElapsedMs(ckpt_start);

    lake::store::SnapshotStore::Options bad_opts;
    bad_opts.keep_generations = 1;
    lake::store::SnapshotStore bad_store(bad_dir, bad_opts);
    const auto bad_gen = bad_store.Commit(snapshot);
    if (bad_gen.ok()) {
      CorruptSection(bad_dir, *bad_gen, DiscoveryEngine::kJosieSection);
    }

    const RecoveryRow clean = RunRecovery(lake, eopts, &store);
    const RecoveryRow corrupt = RunRecovery(lake, eopts, &bad_store);
    std::printf(
        "checkpoint %.1fms (gen %llu); recovery clean %.1fms "
        "(%llu sections, degraded=%d), corrupted %.1fms "
        "(%llu sections, degraded=%d, quarantined=%llu)\n\n",
        checkpoint_ms,
        static_cast<unsigned long long>(committed.ok() ? *committed : 0),
        clean.recovery_ms,
        static_cast<unsigned long long>(clean.sections_recovered),
        clean.degraded, corrupt.recovery_ms,
        static_cast<unsigned long long>(corrupt.sections_recovered),
        corrupt.degraded,
        static_cast<unsigned long long>(corrupt.quarantined_sections));
    for (const auto& [pass, row] :
         {std::pair<const char*, const RecoveryRow&>{"clean", clean},
          {"corrupted", corrupt}}) {
      lake::bench::PrintJsonLine(
          "E18:bench_serve:recovery",
          StrFormat("\"pass\":\"%s\",\"checkpoint_ms\":%.1f,"
                    "\"recovery_ms\":%.1f,\"sections_recovered\":%llu,"
                    "\"degraded\":%d,\"quarantined_sections\":%llu",
                    pass, checkpoint_ms, row.recovery_ms,
                    static_cast<unsigned long long>(row.sections_recovered),
                    row.degraded,
                    static_cast<unsigned long long>(row.quarantined_sections)));
    }
    fs::remove_all(clean_dir);
    fs::remove_all(bad_dir);
  }

  const std::vector<QueryRequest> workload = MakeWorkload(lake);
  std::printf("%zu tables, %zu queries (%zu distinct), k=%zu\n",
              lake.catalog.num_tables(), workload.size(), kDistinctQueries,
              kTopK);
  std::printf("%-8s %-5s %10s %9s %9s %9s %9s\n", "workers", "pass", "qps",
              "p50_ms", "p95_ms", "p99_ms", "hit_rate");

  double qps_cold_1 = 0, qps_cold_4 = 0;
  double warm_hit_rate = 0, warm_p50 = 0, cold_p50 = 0;
  double best_warm_qps = 0, best_warm_p95 = 0, best_warm_p99 = 0;
  for (size_t workers : {1, 2, 4, 8}) {
    QueryService::Options sopts;
    sopts.num_workers = workers;
    sopts.max_pending = 4096;
    QueryService service(&engine, sopts);

    const PassResult cold = Replay(service, workload, /*bypass_cache=*/true);
    (void)Replay(service, workload, /*bypass_cache=*/false);  // prime
    const PassResult warm = Replay(service, workload, /*bypass_cache=*/false);

    for (const auto& [pass, r] :
         {std::pair<const char*, const PassResult&>{"cold", cold},
          {"warm", warm}}) {
      std::printf("%-8zu %-5s %10.1f %9.3f %9.3f %9.3f %9.3f\n", workers,
                  pass, r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.hit_rate);
      lake::bench::PrintJsonLine(
          "E18:bench_serve",
          StrFormat("\"workers\":%zu,\"pass\":\"%s\",\"qps\":%.1f,"
                    "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                    "\"cache_hit_rate\":%.3f",
                    workers, pass, r.qps, r.p50_ms, r.p95_ms, r.p99_ms,
                    r.hit_rate));
    }
    if (workers == 1) {
      qps_cold_1 = cold.qps;
      cold_p50 = cold.p50_ms;
    }
    if (workers == 4) qps_cold_4 = cold.qps;
    if (warm.qps > best_warm_qps) {
      best_warm_qps = warm.qps;
      best_warm_p95 = warm.p95_ms;
      best_warm_p99 = warm.p99_ms;
      warm_p50 = warm.p50_ms;
      warm_hit_rate = warm.hit_rate;
    }
  }

  const double scaling = qps_cold_1 > 0 ? qps_cold_4 / qps_cold_1 : 0;
  std::printf(
      "\nscaling (cold qps, 1 -> 4 workers): %.2fx   "
      "warm p50 %.3fms vs cold p50 %.3fms (hit rate %.2f)\n",
      scaling, warm_p50, cold_p50, warm_hit_rate);
  lake::bench::PrintJsonLine(
      "E18:bench_serve:summary",
      StrFormat("\"qps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
                "\"p99_ms\":%.3f,\"cache_hit_rate\":%.3f,"
                "\"scaling_1_to_4\":%.2f",
                best_warm_qps, warm_p50, best_warm_p95, best_warm_p99,
                warm_hit_rate, scaling));
  return 0;
}
