// E9 — Correlated-join search: sketches find joinable-and-correlated
// columns, and correlation-aware ranking beats overlap-only ranking
// (Santos et al., ICDE 2022; survey §2.4).
//
// Series reproduced: ranking candidate (key, numeric) pairs by estimated
// |correlation| surfaces the pairs with the largest planted |rho| first;
// an overlap-only ranking (the pre-QCR approach) orders them by key
// containment and misses the correlation structure entirely.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "lakegen/benchmark_lakes.h"
#include "search/join_correlated.h"
#include "util/timer.h"

int main() {
  lake::bench::PrintHeader(
      "E9: bench_qcr",
      "correlation sketches rank joinable+correlated columns first; "
      "overlap-only ranking cannot");

  lake::CorrelatedOptions opts;
  opts.num_pairs = 32;
  opts.query_rows = 600;
  const lake::CorrelatedWorkload w = lake::MakeCorrelatedWorkload(opts);
  const lake::DataLakeCatalog catalog =
      lake::CatalogFromCorrelatedWorkload(w);
  lake::CorrelatedJoinSearch search(&catalog);
  std::printf("lake: %zu (key, numeric) column pairs sketched\n\n",
              search.num_indexed_pairs());

  lake::Timer timer;
  const auto results = search.Search(w.query_keys, w.query_values, 10).value();
  const double query_ms = timer.ElapsedMillis();

  std::printf("top-10 by |estimated correlation| (QCR):\n");
  std::printf("%-16s %12s %12s %14s\n", "table", "planted rho", "est corr",
              "est contain");
  double mean_abs_err = 0;
  for (const auto& r : results) {
    const auto& pair = w.pairs[r.table_id];
    std::printf("%-16s %12.3f %12.3f %14.3f\n",
                catalog.table(r.table_id).name().c_str(),
                pair.planted_correlation, r.est_correlation,
                r.est_containment);
    mean_abs_err +=
        std::abs(std::abs(pair.planted_correlation) - r.score);
  }
  mean_abs_err /= results.size();

  // Overlap-only baseline: rank every pair by estimated key containment.
  std::vector<std::pair<double, size_t>> by_overlap;
  for (size_t p = 0; p < w.pairs.size(); ++p) {
    by_overlap.push_back({w.pairs[p].planted_containment, p});
  }
  std::sort(by_overlap.rbegin(), by_overlap.rend());
  double overlap_top_rho = 0, qcr_top_rho = 0;
  for (size_t i = 0; i < 5 && i < by_overlap.size(); ++i) {
    overlap_top_rho +=
        std::abs(w.pairs[by_overlap[i].second].planted_correlation) / 5;
  }
  for (size_t i = 0; i < 5 && i < results.size(); ++i) {
    qcr_top_rho +=
        std::abs(w.pairs[results[i].table_id].planted_correlation) / 5;
  }

  std::printf("\nmean |rho| among top-5:\n");
  std::printf("  correlation-aware (QCR) : %.3f\n", qcr_top_rho);
  std::printf("  overlap-only baseline   : %.3f\n", overlap_top_rho);
  std::printf("mean |corr| estimation error over top-10: %.3f\n",
              mean_abs_err);
  std::printf("query latency: %.2f ms over %zu sketched pairs\n", query_ms,
              search.num_indexed_pairs());
  std::printf(
      "\nshape check: QCR's top-5 mean |rho| >> overlap-only's (the whole\n"
      "point of correlation sketches).\n");
  return 0;
}
