// E13 — Homograph detection via graph centrality (DomainNet, Leventidis
// et al. EDBT 2021; survey §3 "data lake as a graph").
//
// Series reproduced: planted homographs (the same string in two unrelated
// domains) rank at the top of the betweenness-centrality ordering of the
// value-column bipartite graph; precision@h and detection recall are
// reported, plus the exact-vs-sampled centrality trade-off.

#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "apps/homograph.h"
#include "lakegen/generator.h"
#include "util/timer.h"

int main() {
  lake::bench::PrintHeader(
      "E13: bench_homograph",
      "homographs bridge column communities and surface as top "
      "betweenness-centrality values");

  lake::GeneratorOptions opts;
  opts.seed = 47;
  opts.num_domains = 10;
  opts.num_templates = 6;
  opts.tables_per_template = 6;
  opts.homograph_count = 10;
  const lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();
  // Ground truth: every value the curated KB grounds in >= 2 domain types.
  // This covers the explicitly planted homographs plus values that land in
  // two domain vocabularies by construction — both are genuine homographs
  // a detector should flag.
  std::unordered_set<std::string> truth;
  lake.catalog.ForEachColumn(
      [&](const lake::ColumnRef&, const lake::Column& col) {
        if (col.IsNumeric()) return;
        for (const std::string& v : col.DistinctStrings()) {
          if (lake.kb.TypesOf(v).size() >= 2) truth.insert(v);
        }
      });
  std::printf("lake: %zu tables, %zu planted + natural homographs\n\n",
              lake.catalog.num_tables(), truth.size());

  std::printf("%-22s %10s %12s %12s\n", "centrality mode", "found@30",
              "recall", "ms");
  for (size_t sources : {64, 256, 0}) {  // 0 = exact
    lake::HomographDetector::Options dopts;
    dopts.sample_sources = sources;
    lake::HomographDetector detector(&lake.catalog, dopts);
    lake::Timer timer;
    const auto top = detector.TopHomographs(30);
    const double ms = timer.ElapsedMillis();
    size_t found = 0;
    for (const auto& s : top) {
      if (truth.count(s.value)) ++found;
    }
    char label[32];
    if (sources == 0) std::snprintf(label, sizeof(label), "exact");
    else std::snprintf(label, sizeof(label), "sampled (%zu)", sources);
    std::printf("%-22s %10zu %12.3f %12.0f\n", label, found,
                static_cast<double>(found) / truth.size(), ms);
  }

  // Show the top of the exact ranking.
  lake::HomographDetector::Options exact;
  exact.sample_sources = 0;
  const auto top = lake::HomographDetector(&lake.catalog, exact)
                       .TopHomographs(10);
  size_t top10_true = 0;
  for (const auto& s : top) top10_true += truth.count(s.value);
  std::printf("\nprecision@10 of the exact ranking: %.2f\n",
              static_cast<double>(top10_true) / top.size());
  std::printf("top-10 values by centrality (* = true homograph):\n");
  for (const auto& s : top) {
    std::printf("  %c %-20s centrality=%.1f columns=%zu\n",
                truth.count(s.value) ? '*' : ' ', s.value.c_str(),
                s.centrality, s.column_count);
  }
  std::printf(
      "\nshape check: planted homographs dominate the top of the exact\n"
      "ranking; sampling trades a little recall for large speedups.\n");
  return 0;
}
