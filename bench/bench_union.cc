// E6 — Union search quality: TUS column ensemble vs SANTOS relationship
// semantics vs Starmie contextual embeddings, on a lake with
// relationship-violating distractors (SANTOS, SIGMOD 2023; survey §2.5).
//
// Claim reproduced: column-only unionability (TUS-style) admits false
// positives whose columns align but whose column-to-column relationships
// differ; SANTOS "reduc[es] false positives significantly". The table
// reports mean precision@k, mean average precision, and the number of
// distractors admitted to the top-k by each method.

#include <cstdio>

#include "bench_common.h"
#include "annotate/kb_synthesis.h"
#include "lakegen/benchmark_lakes.h"
#include "search/union_santos.h"
#include "search/union_starmie.h"
#include "search/union_d3l.h"
#include "search/union_tus.h"
#include "util/timer.h"

int main() {
  lake::bench::PrintHeader(
      "E6: bench_union",
      "relationship-aware union search (SANTOS) cuts false positives that "
      "column-only search (TUS) admits; contextual embeddings (Starmie) "
      "also discriminate");

  lake::GeneratedLake lake = lake::MakeUnionBenchmarkLake(
      /*seed=*/101, /*tables_per_template=*/8, /*distractors=*/16);
  std::printf("lake: %zu tables, %zu relationship-violating distractors\n\n",
              lake.catalog.num_tables(), lake.distractors.size());

  lake::WordEmbedding words(lake::WordEmbedding::Options{.dim = 64});
  lake::ColumnEncoder encoder(&words);
  lake::ContextualColumnEncoder contextual(&encoder);
  lake::KnowledgeBase kb = lake.kb;
  lake::KbSynthesizer().AugmentInPlace(lake.catalog, &kb);

  lake::Timer build_timer;
  lake::TusUnionSearch tus(&lake.catalog, &encoder, &kb);
  const double tus_build = build_timer.ElapsedMillis();
  build_timer.Restart();
  lake::SantosUnionSearch santos(&lake.catalog, &kb);
  const double santos_build = build_timer.ElapsedMillis();
  build_timer.Restart();
  lake::StarmieUnionSearch starmie(&lake.catalog, &contextual);
  const double starmie_build = build_timer.ElapsedMillis();
  build_timer.Restart();
  lake::D3lUnionSearch d3l(&lake.catalog, &encoder);
  const double d3l_build = build_timer.ElapsedMillis();

  const size_t k = 7;  // == partners per template
  struct Row {
    const char* name;
    double build_ms;
    double p_at_k = 0, map_k = 0, distractors = 0, query_ms = 0;
  };
  Row rows[] = {{"TUS (columns)", tus_build},
                {"SANTOS (relationships)", santos_build},
                {"Starmie (contextual)", starmie_build},
                {"D3L (five evidences)", d3l_build}};

  size_t queries = 0;
  for (size_t g = 0; g < lake.unionable_groups.size(); ++g) {
    const lake::TableId q = lake.unionable_groups[g][0];
    const lake::Table& query = lake.catalog.table(q);
    std::vector<lake::TableId> truth;
    for (lake::TableId t : lake.unionable_groups[g]) {
      if (t != q) truth.push_back(t);
    }
    ++queries;
    for (int m = 0; m < 4; ++m) {
      lake::Timer qt;
      auto results =
          m == 0 ? tus.Search(query, k, q)
                 : (m == 1 ? santos.Search(query, k, q)
                           : (m == 2 ? starmie.Search(query, k, q)
                                     : d3l.Search(query, k, q)));
      rows[m].query_ms += qt.ElapsedMillis();
      if (!results.ok()) continue;
      rows[m].p_at_k += lake::PrecisionAtK(*results, truth, k);
      rows[m].map_k += lake::AveragePrecisionAtK(*results, truth, k);
      for (const auto& r : *results) {
        for (lake::TableId d : lake.distractors) {
          if (r.table_id == d) rows[m].distractors += 1;
        }
      }
    }
  }

  std::printf("%-24s %8s %8s %14s %10s %10s\n", "method", "P@7", "MAP@7",
              "distractors", "ms/query", "build ms");
  for (const Row& row : rows) {
    std::printf("%-24s %8.3f %8.3f %14.0f %10.2f %10.1f\n", row.name,
                row.p_at_k / queries, row.map_k / queries, row.distractors,
                row.query_ms / queries, row.build_ms);
  }
  std::printf(
      "\nshape check: SANTOS admits fewer distractors than TUS at similar\n"
      "or better P@7 (the SANTOS false-positive claim).\n");

  // Ablation of the TUS measure ensemble (a DESIGN.md design choice):
  // each measure alone vs the ensemble.
  std::printf("\nTUS attribute-unionability measure ablation (P@%zu):\n", k);
  const struct {
    const char* name;
    bool set, sem, nl;
  } ablations[] = {{"set only", true, false, false},
                   {"semantic only", false, true, false},
                   {"nl only", false, false, true},
                   {"full ensemble", true, true, true}};
  for (const auto& ab : ablations) {
    lake::TusUnionSearch::Options aopts;
    aopts.use_set_measure = ab.set;
    aopts.use_semantic_measure = ab.sem;
    aopts.use_nl_measure = ab.nl;
    lake::TusUnionSearch ablated(&lake.catalog, &encoder, &kb, aopts);
    double p = 0;
    size_t qn = 0;
    for (size_t g = 0; g < lake.unionable_groups.size(); ++g) {
      const lake::TableId q = lake.unionable_groups[g][0];
      std::vector<lake::TableId> truth;
      for (lake::TableId t : lake.unionable_groups[g]) {
        if (t != q) truth.push_back(t);
      }
      auto results = ablated.Search(lake.catalog.table(q), k, q);
      if (!results.ok()) continue;
      p += lake::PrecisionAtK(*results, truth, k);
      ++qn;
    }
    std::printf("  %-18s %.3f\n", ab.name, qn ? p / qn : 0.0);
  }
  return 0;
}
