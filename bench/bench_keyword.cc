// E12 — Keyword/metadata search quality and latency (Google Dataset
// Search / OCTOPUS lineage; survey §2.3).
//
// Series reproduced: BM25 over table metadata retrieves topic-relevant
// tables; adding value indexing (the OCTOPUS-style extension) trades
// index size for recall on queries that name cell values rather than
// topics. Latency is measured with google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "lakegen/generator.h"
#include "search/keyword_search.h"
#include "util/timer.h"

namespace {

lake::GeneratedLake& Lake() {
  static lake::GeneratedLake* lake = [] {
    lake::GeneratorOptions opts;
    opts.seed = 71;
    opts.num_templates = 8;
    opts.tables_per_template = 12;
    return new lake::GeneratedLake(lake::LakeGenerator(opts).Generate());
  }();
  return *lake;
}

void QualityTable() {
  lake::GeneratedLake& lake = Lake();
  lake::KeywordSearchEngine metadata_only(&lake.catalog);
  lake::KeywordSearchEngine::Options vopts;
  vopts.index_values = true;
  lake::KeywordSearchEngine with_values(&lake.catalog, vopts);

  const size_t k = 10;
  double p_meta = 0, p_vals = 0;
  for (size_t g = 0; g < lake.unionable_groups.size(); ++g) {
    p_meta += lake::PrecisionAtK(metadata_only.Search(lake.topic_of[g], k),
                                 lake.unionable_groups[g], k);
    p_vals += lake::PrecisionAtK(with_values.Search(lake.topic_of[g], k),
                                 lake.unionable_groups[g], k);
  }
  const size_t q = lake.unionable_groups.size();
  std::printf("topic queries (query = template topic word), P@10:\n");
  std::printf("  metadata only : %.3f\n", p_meta / q);
  std::printf("  + cell values : %.3f\n", p_vals / q);

  // Value queries: search for an actual cell value; only the value index
  // can answer.
  size_t meta_hits = 0, value_hits = 0, value_queries = 0;
  for (size_t g = 0; g < lake.unionable_groups.size(); ++g) {
    const lake::Table& t = lake.catalog.table(lake.unionable_groups[g][0]);
    if (t.num_rows() == 0) continue;
    const std::string cell = t.column(0).cell(0).ToString();
    ++value_queries;
    if (!metadata_only.Search(cell, 5).empty()) ++meta_hits;
    if (!with_values.Search(cell, 5).empty()) ++value_hits;
  }
  std::printf("\ncell-value queries answered (of %zu):\n", value_queries);
  std::printf("  metadata only : %zu\n", meta_hits);
  std::printf("  + cell values : %zu\n", value_hits);
}

void BM_KeywordSearch(benchmark::State& state) {
  lake::GeneratedLake& lake = Lake();
  static lake::KeywordSearchEngine* engine =
      new lake::KeywordSearchEngine(&lake.catalog);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Search(
        lake.topic_of[i++ % lake.topic_of.size()], 10));
  }
}
BENCHMARK(BM_KeywordSearch);

void BM_KeywordSearchWithValues(benchmark::State& state) {
  lake::GeneratedLake& lake = Lake();
  static lake::KeywordSearchEngine* engine = [] {
    lake::KeywordSearchEngine::Options opts;
    opts.index_values = true;
    return new lake::KeywordSearchEngine(&Lake().catalog, opts);
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Search(
        lake.topic_of[i++ % lake.topic_of.size()], 10));
  }
}
BENCHMARK(BM_KeywordSearchWithValues);

}  // namespace

int main(int argc, char** argv) {
  lake::bench::PrintHeader(
      "E12: bench_keyword",
      "BM25 metadata search finds topic tables; value indexing answers "
      "cell-value queries metadata search cannot");
  QualityTable();
  std::printf("\nlatency:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
