// E4 — JOSIE exact top-k overlap search vs brute-force scan
// (Zhu et al., SIGMOD 2019; survey §2.4).
//
// Claims reproduced: (1) the filtered search returns *exactly* the
// brute-force top-k; (2) rare-first posting reading with prefix/position
// filters reads a small fraction of the index, and the advantage grows
// with lake size; (3) work grows with k.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "index/josie.h"
#include "lakegen/benchmark_lakes.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

/// Lake sets + one query per size tier, shared across benchmark runs.
struct JosieWorkload {
  lake::JosieIndex index;
  std::vector<std::string> query;

  explicit JosieWorkload(size_t num_sets) {
    lake::SkewedSetsOptions opts;
    opts.seed = 31;
    opts.num_sets = num_sets;
    opts.num_queries = 1;
    opts.query_size = 128;
    opts.max_set_size = 1024;
    const lake::SkewedSetsWorkload w = lake::MakeSkewedSetsWorkload(opts);
    for (size_t s = 0; s < w.sets.size(); ++s) {
      (void)index.AddSet(s, w.sets[s]);
    }
    (void)index.Build();
    query = w.queries[0];
  }
};

JosieWorkload& WorkloadFor(size_t num_sets) {
  static std::map<size_t, JosieWorkload*>* cache =
      new std::map<size_t, JosieWorkload*>();
  auto it = cache->find(num_sets);
  if (it == cache->end()) {
    it = cache->emplace(num_sets, new JosieWorkload(num_sets)).first;
  }
  return *it->second;
}

void BM_JosieTopK(benchmark::State& state) {
  JosieWorkload& w = WorkloadFor(static_cast<size_t>(state.range(0)));
  const size_t k = static_cast<size_t>(state.range(1));
  lake::JosieIndex::QueryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.index.TopK(w.query, k, &stats));
  }
  state.counters["postings_read"] = static_cast<double>(stats.posting_entries_read);
  state.counters["lists_read"] = static_cast<double>(stats.lists_read);
  state.counters["verified"] = static_cast<double>(stats.candidates_verified);
}

void BM_BruteForceTopK(benchmark::State& state) {
  JosieWorkload& w = WorkloadFor(static_cast<size_t>(state.range(0)));
  const size_t k = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.index.TopKBruteForce(w.query, k));
  }
}

BENCHMARK(BM_JosieTopK)
    ->Args({500, 5})
    ->Args({2000, 5})
    ->Args({8000, 5})
    ->Args({8000, 1})
    ->Args({8000, 20});
BENCHMARK(BM_BruteForceTopK)
    ->Args({500, 5})
    ->Args({2000, 5})
    ->Args({8000, 5});

}  // namespace

int main(int argc, char** argv) {
  lake::bench::PrintHeader(
      "E4: bench_josie",
      "exact top-k overlap with prefix/position filters beats brute force; "
      "results are identical");

  // Exactness spot-check before timing.
  JosieWorkload& w = WorkloadFor(2000);
  const auto fast = w.index.TopK(w.query, 10).value();
  const auto slow = w.index.TopKBruteForce(w.query, 10).value();
  bool exact = fast.size() == slow.size();
  for (size_t i = 0; exact && i < fast.size(); ++i) {
    exact = fast[i].overlap == slow[i].overlap;
  }
  std::printf("exactness check (k=10, 2000 sets): %s\n",
              exact ? "IDENTICAL to brute force" : "MISMATCH (bug!)");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
