// E19 — online ingestion with incremental index maintenance (survey §6,
// "open problem: dynamic data lakes"): serving latency under concurrent
// ingest load, and time-to-discoverable for a streamed table versus the
// full-rebuild alternative.
//
// Claims demonstrated: (1) the LSM base+delta split keeps serving p95
// under a 1x ingest stream within 2x of the idle baseline — readers never
// lock against ingestion, they only merge a small delta; (2) pushing 4x
// the ingest rate degrades gracefully (compactions overlap serving)
// rather than collapsing; (3) a streamed table becomes discoverable in
// O(delta) publish time, orders of magnitude below the O(lake) full
// rebuild a frozen-index system would need.
//
// Three serving rows replay the same mixed keyword/join/union workload
// (cache bypassed, so every query pays the engine) against a LiveEngine:
// idle, with a 1x ingest stream, and with a 4x stream, both streams
// running an auto-compactor. The freshness row times AddTable-to-visible
// against a cold DiscoveryEngine build over base+1 tables.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ingest/compactor.h"
#include "ingest/live_engine.h"
#include "ingest/pipeline.h"
#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/string_util.h"

namespace {

using lake::DataLakeCatalog;
using lake::DiscoveryEngine;
using lake::GeneratedLake;
using lake::GeneratorOptions;
using lake::LakeGenerator;
using lake::StrFormat;
using lake::Table;
using lake::TableId;
using lake::ingest::Compactor;
using lake::ingest::IngestPipeline;
using lake::ingest::LiveEngine;
using lake::serve::QueryKind;
using lake::serve::QueryRequest;
using lake::serve::QueryResponse;
using lake::serve::QueryService;

constexpr size_t kTopK = 10;
constexpr int kClientThreads = 2;
constexpr double kRunSeconds = 3.0;
// Open-loop offered load, held below single-core saturation so the rows
// compare tail latency at equal load rather than at equal CPU starvation.
constexpr double kOfferedQps = 120.0;
constexpr double kBaseIngestPerSec = 2.0;  // 1x: 10% of the base lake per second

DiscoveryEngine::Options BaseOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

std::vector<QueryRequest> MakeWorkload(const GeneratedLake& lake,
                                       const DataLakeCatalog& catalog) {
  std::vector<QueryRequest> distinct;
  const size_t num_tables = catalog.num_tables();
  for (size_t i = 0; distinct.size() < 18; ++i) {
    QueryRequest req;
    req.k = kTopK;
    req.bypass_cache = true;  // every query pays the engine
    switch (i % 3) {
      case 0: {
        const Table& t = catalog.table(static_cast<TableId>(i % num_tables));
        req.kind = QueryKind::kJoin;
        req.join_method = lake::JoinMethod::kJosie;
        for (size_t c = 0; c < t.num_columns(); ++c) {
          if (!t.column(c).IsNumeric()) {
            req.values = t.column(c).DistinctStrings();
            break;
          }
        }
        if (req.values.empty()) continue;
        break;
      }
      case 1:
        req.kind = QueryKind::kKeyword;
        req.keyword = lake.topic_of[i % lake.topic_of.size()];
        break;
      default:
        req.kind = QueryKind::kUnion;
        req.union_method = lake::UnionMethod::kStarmie;
        req.union_table = &catalog.table(static_cast<TableId>(i % num_tables));
        req.exclude = static_cast<int64_t>(i % num_tables);
        break;
    }
    distinct.push_back(std::move(req));
  }
  return distinct;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

struct Row {
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t ingested = 0;
  uint64_t compactions = 0;
  uint64_t delta_hits = 0;
};

/// Serves the workload for kRunSeconds with kClientThreads closed-loop
/// clients while (optionally) streaming `ingest_per_sec` copies of base
/// tables through the pipeline with an auto-compactor.
Row RunScenario(const GeneratedLake& lake,
                std::shared_ptr<const DataLakeCatalog> catalog,
                std::shared_ptr<const DiscoveryEngine> base,
                double ingest_per_sec, const char* tag) {
  LiveEngine::Options lopts;
  lopts.base_options = BaseOptions();
  lopts.kb = &lake.kb;
  LiveEngine live(catalog, base, lopts);
  QueryService::Options sopts;
  sopts.num_workers = kClientThreads;
  QueryService service(&live, sopts);
  const std::vector<QueryRequest> workload = MakeWorkload(lake, *catalog);

  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<uint64_t> errors(kClientThreads, 0);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      size_t next = static_cast<size_t>(t);
      const auto interval = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(std::chrono::duration<double>(
          static_cast<double>(kClientThreads) / kOfferedQps));
      auto slot = std::chrono::steady_clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_until(slot);
        slot += interval;
        const auto start = std::chrono::steady_clock::now();
        QueryResponse resp = service.Execute(workload[next % workload.size()]);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (resp.status.ok()) {
          latencies[t].push_back(ms);
        } else {
          ++errors[t];
        }
        ++next;
      }
    });
  }

  Row row;
  {
    IngestPipeline pipeline(&live);
    Compactor::Options copts;
    copts.max_delta_tables = 10;
    copts.poll_interval_ms = 10;
    Compactor compactor(&live, copts);

    const auto run_start = std::chrono::steady_clock::now();
    uint64_t submitted = 0;
    std::vector<std::future<lake::Result<TableId>>> pending;
    while (true) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start)
              .count();
      if (elapsed >= kRunSeconds) break;
      if (ingest_per_sec > 0 &&
          static_cast<double>(submitted) < elapsed * ingest_per_sec) {
        Table copy = catalog->table(
            static_cast<TableId>(submitted % catalog->num_tables()));
        copy.set_name(StrFormat("%s_stream_%04llu", tag,
                                static_cast<unsigned long long>(submitted)));
        pending.push_back(pipeline.SubmitTable(std::move(copy)));
        ++submitted;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    stop.store(true);
    for (std::thread& c : clients) c.join();
    for (auto& f : pending) {
      if (f.get().ok()) ++row.ingested;
    }
    pipeline.Flush();
    compactor.Stop();
  }

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (uint64_t e : errors) row.errors += e;
  row.queries = all.size();
  row.qps = static_cast<double>(all.size()) / kRunSeconds;
  row.p50_ms = Percentile(all, 0.50);
  row.p95_ms = Percentile(all, 0.95);
  row.compactions = live.compactions();
  row.delta_hits =
      service.metrics().GetCounter("serve.ingest.delta_hits")->value();
  return row;
}

void PrintRow(const char* mode, double rate, const Row& row) {
  std::printf(
      "  %-10s ingest=%4.1f/s  qps=%7.1f  p50=%6.2fms  p95=%6.2fms  "
      "queries=%llu errors=%llu ingested=%llu compactions=%llu "
      "delta_hits=%llu\n",
      mode, rate, row.qps, row.p50_ms, row.p95_ms,
      static_cast<unsigned long long>(row.queries),
      static_cast<unsigned long long>(row.errors),
      static_cast<unsigned long long>(row.ingested),
      static_cast<unsigned long long>(row.compactions),
      static_cast<unsigned long long>(row.delta_hits));
  lake::bench::PrintJsonLine(
      "E19_ingest",
      StrFormat("\"mode\":\"%s\",\"ingest_per_sec\":%.1f,\"qps\":%.1f,"
                "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"queries\":%llu,"
                "\"errors\":%llu,\"ingested\":%llu,\"compactions\":%llu,"
                "\"delta_hits\":%llu",
                mode, rate, row.qps, row.p50_ms, row.p95_ms,
                static_cast<unsigned long long>(row.queries),
                static_cast<unsigned long long>(row.errors),
                static_cast<unsigned long long>(row.ingested),
                static_cast<unsigned long long>(row.compactions),
                static_cast<unsigned long long>(row.delta_hits)));
}

// --- WAL durability: acknowledgement overhead per sync policy -----------

constexpr int kWalAppends = 150;

struct WalRow {
  double p50_ms = 0;
  double p95_ms = 0;
  uint64_t fsyncs = 0;
  uint64_t wal_bytes = 0;
};

/// Times AddTable acknowledgement latency with the WAL in the write path.
/// Each timed add is followed by an untimed remove so the delta — and with
/// it the publish cost — stays flat while the log keeps growing; the
/// difference between rows is the append + sync cost, not delta size.
WalRow RunWalAppendScenario(const GeneratedLake& lake,
                            std::shared_ptr<const DataLakeCatalog> catalog,
                            std::shared_ptr<const DiscoveryEngine> base,
                            bool enable_wal,
                            lake::store::WalWriter::SyncPolicy sync,
                            const char* tag, std::string* dir_out) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / (std::string("lake_bench_wal_") + tag))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  lake::store::SnapshotStore store(dir);
  lake::serve::MetricsRegistry metrics;
  LiveEngine::Options lopts;
  lopts.base_options = BaseOptions();
  lopts.kb = &lake.kb;
  lopts.store = &store;
  lopts.metrics = &metrics;
  lopts.enable_wal = enable_wal;
  lopts.wal_options.sync = sync;
  LiveEngine live(catalog, base, lopts);
  // Commit a baseline snapshot (durable LSN 0) so the scenario directory
  // is recoverable for the replay measurement: every logged record is
  // past the checkpoint and gets replayed.
  if (!live.Checkpoint().ok()) {
    std::fprintf(stderr, "  wal %s: baseline checkpoint failed\n", tag);
  }

  std::vector<double> lat;
  lat.reserve(kWalAppends);
  for (int i = 0; i < kWalAppends; ++i) {
    Table copy =
        catalog->table(static_cast<TableId>(i % catalog->num_tables()));
    const std::string name = StrFormat("wal_%s_%04d", tag, i);
    copy.set_name(name);
    const auto start = std::chrono::steady_clock::now();
    auto id = live.AddTable(std::move(copy));
    lat.push_back(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
    if (!id.ok()) {
      std::fprintf(stderr, "  wal %s: add failed: %s\n", tag,
                   id.status().ToString().c_str());
    }
    live.RemoveTable(name);
  }
  std::sort(lat.begin(), lat.end());
  WalRow row;
  row.p50_ms = Percentile(lat, 0.50);
  row.p95_ms = Percentile(lat, 0.95);
  row.fsyncs = metrics.GetCounter("ingest.wal.fsyncs")->value();
  row.wal_bytes = metrics.GetCounter("ingest.wal.bytes")->value();
  if (dir_out != nullptr) *dir_out = dir;
  return row;
}

void PrintWalRow(const char* policy, const WalRow& row) {
  std::printf(
      "  wal %-8s p50=%7.3fms  p95=%7.3fms  fsyncs=%-5llu wal_bytes=%llu\n",
      policy, row.p50_ms, row.p95_ms,
      static_cast<unsigned long long>(row.fsyncs),
      static_cast<unsigned long long>(row.wal_bytes));
  lake::bench::PrintJsonLine(
      "E19_ingest",
      StrFormat("\"mode\":\"wal_append\",\"policy\":\"%s\",\"p50_ms\":%.3f,"
                "\"p95_ms\":%.3f,\"appends\":%d,\"fsyncs\":%llu,"
                "\"wal_bytes\":%llu",
                policy, row.p50_ms, row.p95_ms, 2 * kWalAppends,
                static_cast<unsigned long long>(row.fsyncs),
                static_cast<unsigned long long>(row.wal_bytes)));
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E19 ingest: online ingestion vs frozen-index rebuild",
      "LSM base+delta serving keeps p95 near the idle baseline under "
      "ingest; publish is O(delta), rebuild is O(lake)");

  GeneratorOptions gopts;
  gopts.seed = 17;
  gopts.num_domains = 8;
  gopts.num_templates = 4;
  gopts.tables_per_template = 5;
  gopts.min_rows = 60;
  gopts.max_rows = 120;
  GeneratedLake lake = LakeGenerator(gopts).Generate();
  auto catalog =
      std::make_shared<DataLakeCatalog>(std::move(lake.catalog));

  const auto build_start = std::chrono::steady_clock::now();
  auto base = std::make_shared<DiscoveryEngine>(catalog.get(), &lake.kb,
                                                BaseOptions());
  const double full_build_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - build_start)
          .count();
  std::printf("lake: %zu tables, %zu columns; full index build %.1fms\n",
              catalog->num_tables(), catalog->num_columns(), full_build_ms);

  // --- Freshness: AddTable publish vs full rebuild ----------------------
  {
    LiveEngine::Options lopts;
    lopts.base_options = BaseOptions();
    lopts.kb = &lake.kb;
    LiveEngine live(catalog, base, lopts);
    Table streamed = catalog->table(0);
    streamed.set_name("freshness_probe");
    const auto add_start = std::chrono::steady_clock::now();
    auto id = live.AddTable(std::move(streamed));
    const double publish_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - add_start)
            .count();
    const bool visible =
        id.ok() && live.Acquire()->FindTable("freshness_probe").ok();
    std::printf(
        "  freshness: delta publish %.2fms (visible=%d) vs full rebuild "
        "%.1fms (%.0fx)\n",
        publish_ms, visible ? 1 : 0, full_build_ms,
        full_build_ms / std::max(publish_ms, 0.01));
    lake::bench::PrintJsonLine(
        "E19_ingest",
        StrFormat("\"mode\":\"freshness\",\"publish_ms\":%.3f,"
                  "\"full_rebuild_ms\":%.1f,\"visible\":%s",
                  publish_ms, full_build_ms, visible ? "true" : "false"));
  }

  // --- Serving under ingest load ----------------------------------------
  const Row idle = RunScenario(lake, catalog, base, 0.0, "idle");
  PrintRow("no_ingest", 0.0, idle);
  const Row x1 = RunScenario(lake, catalog, base, kBaseIngestPerSec, "x1");
  PrintRow("ingest_1x", kBaseIngestPerSec, x1);
  const Row x4 =
      RunScenario(lake, catalog, base, 4 * kBaseIngestPerSec, "x4");
  PrintRow("ingest_4x", 4 * kBaseIngestPerSec, x4);

  const double ratio = idle.p95_ms > 0 ? x1.p95_ms / idle.p95_ms : 0;
  std::printf("  p95 under 1x ingest / idle p95 = %.2fx %s\n", ratio,
              ratio <= 2.0 ? "(within 2x bound)" : "(EXCEEDS 2x bound)");
  lake::bench::PrintJsonLine(
      "E19_ingest",
      StrFormat("\"mode\":\"summary\",\"p95_ratio_1x\":%.3f,"
                "\"within_2x\":%s",
                ratio, ratio <= 2.0 ? "true" : "false"));

  // --- WAL durability: append overhead per sync policy, then replay -----
  {
    using lake::store::WalWriter;
    std::string fsync_dir;
    const WalRow no_wal = RunWalAppendScenario(
        lake, catalog, base, false, WalWriter::SyncPolicy::kNone, "no_wal",
        nullptr);
    const WalRow none = RunWalAppendScenario(
        lake, catalog, base, true, WalWriter::SyncPolicy::kNone, "none",
        nullptr);
    const WalRow group = RunWalAppendScenario(
        lake, catalog, base, true, WalWriter::SyncPolicy::kGroupCommit,
        "group", nullptr);
    const WalRow fsync = RunWalAppendScenario(
        lake, catalog, base, true, WalWriter::SyncPolicy::kEveryAppend,
        "fsync", &fsync_dir);
    PrintWalRow("no_wal", no_wal);
    PrintWalRow("none", none);
    PrintWalRow("group", group);
    PrintWalRow("fsync", fsync);
    const double wal_ratio =
        no_wal.p95_ms > 0 ? group.p95_ms / no_wal.p95_ms : 0;
    std::printf("  group-commit p95 / no-WAL p95 = %.2fx %s\n", wal_ratio,
                wal_ratio <= 1.3 ? "(within 1.3x bound)"
                                 : "(EXCEEDS 1.3x bound)");
    lake::bench::PrintJsonLine(
        "E19_ingest",
        StrFormat("\"mode\":\"wal_summary\",\"group_p95_over_no_wal\":%.3f,"
                  "\"within_1p3x\":%s",
                  wal_ratio, wal_ratio <= 1.3 ? "true" : "false"));

    // Replay throughput over the fsync scenario's log: raw record parse
    // rate first, then a full engine recovery (snapshot load + replay of
    // every logged batch through ApplyBatch).
    uint64_t raw_records = 0;
    uint64_t raw_bytes = 0;
    const auto raw_start = std::chrono::steady_clock::now();
    auto raw = lake::store::WalReader::Replay(
        fsync_dir + "/wal", 0, [&](uint64_t, std::string_view payload) {
          ++raw_records;
          raw_bytes += payload.size();
          return lake::Status::OK();
        });
    const double raw_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - raw_start)
                              .count();
    lake::store::SnapshotStore store(fsync_dir);
    LiveEngine::Options ropts;
    ropts.base_options = BaseOptions();
    ropts.kb = &lake.kb;
    ropts.enable_wal = true;
    LiveEngine::RecoveryReport report;
    const auto rec_start = std::chrono::steady_clock::now();
    auto recovered = LiveEngine::Recover(&store, ropts, &report);
    const double rec_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - rec_start)
                              .count();
    const double raw_rate =
        raw_ms > 0 ? static_cast<double>(raw_records) / (raw_ms / 1000.0) : 0;
    const double rec_rate =
        rec_ms > 0
            ? static_cast<double>(report.wal_records_replayed) / (rec_ms / 1000.0)
            : 0;
    std::printf(
        "  wal replay: raw parse %llu recs (%.1f KB) at %.0f rec/s; engine "
        "recovery replayed %llu recs in %.1fms (%.0f rec/s)%s\n",
        static_cast<unsigned long long>(raw_records),
        static_cast<double>(raw_bytes) / 1024.0, raw_rate,
        static_cast<unsigned long long>(report.wal_records_replayed), rec_ms,
        rec_rate,
        raw.ok() && recovered.ok() ? "" : " [ERROR]");
    lake::bench::PrintJsonLine(
        "E19_ingest",
        StrFormat("\"mode\":\"wal_replay\",\"raw_records\":%llu,"
                  "\"raw_records_per_sec\":%.0f,\"replayed_records\":%llu,"
                  "\"recover_ms\":%.1f,\"replay_records_per_sec\":%.0f",
                  static_cast<unsigned long long>(raw_records), raw_rate,
                  static_cast<unsigned long long>(report.wal_records_replayed),
                  rec_ms, rec_rate));
  }
  return 0;
}
