// E3 — LSH Ensemble vs single MinHash-LSH for containment search on a
// skewed-cardinality workload (Zhu et al., VLDB 2016; survey §2.4).
//
// Claim reproduced: converting a containment threshold to one global
// Jaccard threshold (single MinHash-LSH) loses recall when candidate
// cardinalities are skewed, because the conversion depends on |X|; the
// ensemble's cardinality partitions restore recall at comparable
// precision. Partition sweep shows recall improving with more partitions.

#include <cstdio>
#include <functional>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "index/lsh_ensemble.h"
#include "index/minhash_lsh.h"
#include "lakegen/benchmark_lakes.h"
#include "sketch/minhash.h"
#include "util/timer.h"

namespace {

struct PrPoint {
  double precision = 0;
  double recall = 0;
  double query_ms = 0;
  double candidates = 0;  // mean candidate-set size (query work proxy)
};

PrPoint Evaluate(const lake::SkewedSetsWorkload& w, double threshold,
                 const std::function<std::vector<uint64_t>(
                     const lake::MinHashSignature&, size_t)>& query_fn) {
  size_t tp = 0, fp = 0, fn = 0;
  double p_candidates = 0;
  lake::Timer timer;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto sig = lake::MinHashSignature::Build(w.queries[q], 128);
    const auto cands = query_fn(sig, w.queries[q].size());
    const std::unordered_set<uint64_t> got(cands.begin(), cands.end());
    p_candidates += static_cast<double>(got.size());
    for (size_t s = 0; s < w.sets.size(); ++s) {
      const bool relevant = w.containment[q][s] >= threshold;
      const bool returned = got.count(s) > 0;
      if (relevant && returned) ++tp;
      else if (!relevant && returned) ++fp;
      else if (relevant && !returned) ++fn;
    }
  }
  PrPoint p;
  p.query_ms = timer.ElapsedMillis() / w.queries.size();
  p.candidates = p_candidates / w.queries.size();
  p.precision = tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  p.recall = tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  return p;
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E3: bench_lsh_ensemble",
      "cardinality partitioning recovers containment recall lost by "
      "single-threshold MinHash-LSH under skew");

  lake::SkewedSetsOptions opts;
  opts.num_sets = 400;
  opts.num_queries = 15;
  const lake::SkewedSetsWorkload w = lake::MakeSkewedSetsWorkload(opts);
  const double threshold = 0.6;

  // Baseline: one MinHash-LSH tuned for the Jaccard threshold implied by
  // the MEDIAN candidate cardinality (the best single compromise).
  std::vector<size_t> sizes;
  for (const auto& s : w.sets) sizes.push_back(s.size());
  std::sort(sizes.begin(), sizes.end());
  const size_t median = sizes[sizes.size() / 2];
  const double j_median = lake::ContainmentToJaccard(
      threshold, /*query_cardinality=*/opts.query_size, median);

  lake::MinHashLsh baseline(128, j_median);
  for (size_t s = 0; s < w.sets.size(); ++s) {
    (void)baseline.Insert(s, lake::MinHashSignature::Build(w.sets[s], 128));
  }
  const PrPoint base = Evaluate(
      w, threshold, [&](const lake::MinHashSignature& sig, size_t) {
        return baseline.Query(sig).value();
      });

  std::printf("%-28s %10s %10s %12s %12s\n", "index", "precision",
              "recall", "cands/query", "ms/query");
  std::printf("%-28s %10.3f %10.3f %12.1f %12.3f\n",
              "MinHash-LSH (median-tuned)", base.precision, base.recall,
              base.candidates, base.query_ms);

  for (size_t partitions : {1, 2, 4, 8, 16}) {
    lake::LshEnsemble ensemble(lake::LshEnsemble::Options{128, partitions});
    for (size_t s = 0; s < w.sets.size(); ++s) {
      (void)ensemble.Add(s, lake::MinHashSignature::Build(w.sets[s], 128),
                         w.sets[s].size());
    }
    (void)ensemble.Build();
    const PrPoint p = Evaluate(
        w, threshold, [&](const lake::MinHashSignature& sig, size_t card) {
          return ensemble.Query(sig, card, threshold).value();
        });
    std::printf("LSH Ensemble (p=%-2zu)          %10.3f %10.3f %12.1f %12.3f\n",
                partitions, p.precision, p.recall, p.candidates,
                p.query_ms);
  }
  std::printf(
      "\nshape check: the ensemble reaches (near-)full recall, which the\n"
      "single-threshold baseline cannot, while examining only a fraction\n"
      "of the %zu lake sets per query; candidates are verified exactly\n"
      "downstream (LshEnsembleJoinSearch), so end-to-end precision is 1.\n",
      w.sets.size());
  return 0;
}
