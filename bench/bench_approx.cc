// E22 — the accuracy/latency knob (survey §7, "approximate discovery with
// guarantees"): exact-vs-sampled crossover for joinable-column search.
//
// Claims demonstrated: (1) the sampling tier's per-query cost is bounded
// by the sample budget plus the rare exact fallbacks, not by the lake's
// value volume, so its advantage over the exact domain scan widens with
// lake size — at the largest benched lake approximate p95 must be <= 0.5x
// exact p95 at the default 0.1 error budget (the acceptance gate);
// (2) recall@k against planted ground truth stays >= 0.95 at every
// budget, because candidates whose interval straddles the final top-k
// boundary are settled by exact verification rather than guessed;
// (3) the reported exact-fallback rate is the price of that guarantee,
// and it stays a small fraction of the candidates screened.
//
// Workload: a skewed background lake (power-law column sizes, random
// values — realistic noise that must be screened out) plus, per query, a
// planted "ladder" of host columns at containments 0.92, 0.85, ..., 0.15.
// The true top-k is the top of the ladder, with well-defined gaps, so
// recall measures ranking fidelity rather than coin-flips among exact
// ties. Recall is tie-aware: a returned column counts if its true
// containment reaches the true k-th best.
//
// Sweep: lakes of {200, 800, 3200} background columns x error budgets
// {0.05, 0.1, 0.2}, plus one exact kExactContainment baseline row per
// lake. Rows are RESULT_JSON with p50/p95 latency, recall@k, and the
// exact-fallback rate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "approx/verifier.h"
#include "bench_common.h"
#include "search/discovery_engine.h"
#include "table/catalog.h"
#include "table/table.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using lake::ColumnResult;
using lake::DataLakeCatalog;
using lake::DataType;
using lake::DiscoveryEngine;
using lake::JoinMethod;
using lake::Rng;
using lake::StrFormat;
using lake::TableId;
using lake::Value;
using lake::approx::ApproxQueryStats;

constexpr size_t kTopK = 10;
constexpr size_t kQueries = 12;
constexpr size_t kQuerySize = 1024;
constexpr size_t kLadderRungs = 12;  // planted hosts per query
constexpr size_t kRounds = 3;        // repeat the query set for stable tails
constexpr double kDefaultBudget = 0.1;
constexpr double kAcceptP95Ratio = 0.5;

struct PlantedWorkload {
  std::vector<std::vector<std::string>> sets;
  std::vector<std::vector<std::string>> queries;
  /// Exact containment of query q in set s (ground truth), [q][s].
  std::vector<std::vector<double>> containment;
};

std::string ValueName(size_t i) { return "v" + std::to_string(i); }

/// Background columns follow a power law (the lake's realistic noise);
/// each query gets a planted ladder of hosts at containments 0.92 down to
/// 0.15 in steps of 0.07, so the true top-k has well-separated scores.
PlantedWorkload MakePlantedWorkload(uint64_t seed, size_t num_background) {
  Rng rng(seed);
  PlantedWorkload w;
  // Universe scales with the lake so background columns stay noise: even
  // the largest (4096 values) covers < 2% of it, well under the ladder's
  // bottom rung — the true top-k is the ladder, at every lake size.
  const size_t universe = num_background * 256;
  const size_t min_size = 256, max_size = 4096;

  for (size_t s = 0; s < num_background; ++s) {
    const double u = std::pow(rng.NextUnit(), 1.2);
    const size_t size = static_cast<size_t>(
        min_size * std::pow(static_cast<double>(max_size) / min_size, u));
    std::unordered_set<size_t> members;
    std::vector<std::string> set;
    while (set.size() < size) {
      const size_t v = rng.NextBounded(universe);
      if (members.insert(v).second) set.push_back(ValueName(v));
    }
    w.sets.push_back(std::move(set));
  }

  for (size_t q = 0; q < kQueries; ++q) {
    std::unordered_set<size_t> qmembers;
    std::vector<size_t> qids;
    while (qids.size() < kQuerySize) {
      const size_t v = rng.NextBounded(universe);
      if (qmembers.insert(v).second) qids.push_back(v);
    }
    std::vector<std::string> query;
    for (size_t v : qids) query.push_back(ValueName(v));
    w.queries.push_back(std::move(query));

    for (size_t rung = 0; rung < kLadderRungs; ++rung) {
      const double fraction = 0.92 - 0.07 * static_cast<double>(rung);
      const size_t planted =
          static_cast<size_t>(fraction * static_cast<double>(kQuerySize));
      std::vector<size_t> shuffled = qids;
      rng.Shuffle(shuffled);
      std::unordered_set<size_t> members(shuffled.begin(),
                                         shuffled.begin() + planted);
      std::vector<std::string> host;
      for (size_t i = 0; i < planted; ++i) host.push_back(ValueName(shuffled[i]));
      const size_t filler = 1024 + rng.NextBounded(4096);
      while (host.size() < planted + filler) {
        const size_t v = rng.NextBounded(universe);
        if (members.insert(v).second) host.push_back(ValueName(v));
      }
      w.sets.push_back(std::move(host));
    }
  }

  // Ground-truth containment of every query in every set. Filler values
  // can collide with query values, so this is measured, not assumed.
  w.containment.resize(w.queries.size());
  for (size_t q = 0; q < w.queries.size(); ++q) {
    std::unordered_set<std::string> qset(w.queries[q].begin(),
                                         w.queries[q].end());
    w.containment[q].resize(w.sets.size());
    for (size_t s = 0; s < w.sets.size(); ++s) {
      size_t overlap = 0;
      for (const std::string& v : w.sets[s]) {
        if (qset.count(v)) ++overlap;
      }
      w.containment[q][s] = static_cast<double>(overlap) /
                            static_cast<double>(w.queries[q].size());
    }
  }
  return w;
}

DataLakeCatalog BuildCatalog(const PlantedWorkload& workload) {
  DataLakeCatalog catalog;
  for (size_t s = 0; s < workload.sets.size(); ++s) {
    lake::Table t("set" + std::to_string(s));
    lake::Column c("values", DataType::kString);
    for (const auto& v : workload.sets[s]) c.Append(Value(v));
    if (!t.AddColumn(std::move(c)).ok()) continue;
    (void)catalog.AddTable(std::move(t));
  }
  return catalog;
}

/// Exact join tier and the sampling tier only; the heavyweight long tail
/// would dominate build time without touching either measured path.
DiscoveryEngine::Options LeanOptions() {
  DiscoveryEngine::Options opts;
  opts.build_keyword = false;
  opts.build_lsh_join = false;
  opts.build_josie = false;
  opts.build_pexeso = false;
  opts.build_mate = false;
  opts.build_correlated = false;
  opts.build_tus = false;
  opts.build_santos = false;
  opts.build_starmie = false;
  opts.build_d3l = false;
  opts.synthesize_kb = false;
  opts.train_annotator = false;
  return opts;
}

struct LatencyStats {
  double p50_us = 0;
  double p95_us = 0;
};

LatencyStats Percentiles(std::vector<double> micros) {
  LatencyStats out;
  if (micros.empty()) return out;
  std::sort(micros.begin(), micros.end());
  out.p50_us = micros[micros.size() / 2];
  out.p95_us = micros[std::min(micros.size() - 1,
                               static_cast<size_t>(micros.size() * 0.95))];
  return out;
}

struct ModeResult {
  LatencyStats latency;
  /// Returned top-k table ids per query (recall subjects).
  std::vector<std::vector<TableId>> tables;
  ApproxQueryStats stats;
};

ModeResult RunMode(const DiscoveryEngine& engine,
                   const PlantedWorkload& workload, JoinMethod method,
                   double error_budget) {
  ModeResult out;
  std::vector<double> micros;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      ApproxQueryStats stats;
      const auto start = std::chrono::steady_clock::now();
      const auto results =
          engine
              .Joinable(workload.queries[q], method, kTopK, nullptr,
                        error_budget,
                        method == JoinMethod::kApprox ? &stats : nullptr)
              .value();
      const auto end = std::chrono::steady_clock::now();
      micros.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
      out.stats.Merge(stats);
      if (round == 0) {
        std::vector<TableId> ids;
        for (const ColumnResult& r : results) ids.push_back(r.column.table_id);
        out.tables.push_back(std::move(ids));
      }
    }
  }
  out.latency = Percentiles(std::move(micros));
  return out;
}

/// Tie-aware recall@k against planted truth: a returned column counts if
/// its true containment reaches the true k-th best (minus float fuzz).
double MeanRecall(const PlantedWorkload& workload,
                  const std::vector<std::vector<TableId>>& returned) {
  double sum = 0;
  for (size_t q = 0; q < returned.size(); ++q) {
    std::vector<double> truth = workload.containment[q];
    std::nth_element(truth.begin(), truth.begin() + (kTopK - 1), truth.end(),
                     std::greater<double>());
    const double kth = truth[kTopK - 1];
    size_t hits = 0;
    for (TableId id : returned[q]) {
      if (workload.containment[q][static_cast<size_t>(id)] >= kth - 1e-9) {
        ++hits;
      }
    }
    sum += static_cast<double>(hits) / static_cast<double>(kTopK);
  }
  return returned.empty() ? 1.0 : sum / static_cast<double>(returned.size());
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E22: bench_approx",
      "sampling-based approximate join search crosses over the exact scan "
      "as the lake grows; recall@k >= 0.95 at every error budget");

  const size_t lake_sizes[] = {200, 800, 3200};
  const double budgets[] = {0.05, 0.1, 0.2};
  bool accept = true;
  double largest_exact_p95 = 0, largest_approx_p95 = 0;

  for (size_t num_sets : lake_sizes) {
    const PlantedWorkload workload = MakePlantedWorkload(61, num_sets);
    const DataLakeCatalog catalog = BuildCatalog(workload);
    const DiscoveryEngine engine(&catalog, nullptr, LeanOptions());

    const ModeResult exact =
        RunMode(engine, workload, JoinMethod::kExactContainment, -1);
    const double exact_recall = MeanRecall(workload, exact.tables);
    std::printf(
        "lake=%zu columns  exact scan: p50 %.0fus p95 %.0fus recall %.3f\n",
        workload.sets.size(), exact.latency.p50_us, exact.latency.p95_us,
        exact_recall);
    lake::bench::PrintJsonLine(
        "E22:bench_approx:exact",
        StrFormat("\"lake_sets\":%zu,\"p50_us\":%.1f,\"p95_us\":%.1f,"
                  "\"recall_at_k\":%.4f",
                  workload.sets.size(), exact.latency.p50_us,
                  exact.latency.p95_us, exact_recall));

    for (double budget : budgets) {
      const ModeResult approx =
          RunMode(engine, workload, JoinMethod::kApprox, budget);
      const double recall = MeanRecall(workload, approx.tables);
      const size_t decisions = approx.stats.decisions();
      const double fallback_rate =
          decisions == 0 ? 0
                         : static_cast<double>(approx.stats.exact_fallbacks) /
                               static_cast<double>(decisions);
      const double mean_sample =
          decisions == 0 ? 0
                         : static_cast<double>(approx.stats.sum_sample_size) /
                               static_cast<double>(decisions);
      std::printf(
          "  approx eb=%.2f: p50 %.0fus p95 %.0fus recall@%zu %.3f "
          "fallback %.3f mean_sample %.0f\n",
          budget, approx.latency.p50_us, approx.latency.p95_us, kTopK,
          recall, fallback_rate, mean_sample);
      lake::bench::PrintJsonLine(
          "E22:bench_approx:approx",
          StrFormat("\"lake_sets\":%zu,\"error_budget\":%.2f,"
                    "\"p50_us\":%.1f,\"p95_us\":%.1f,\"recall_at_k\":%.4f,"
                    "\"fallback_rate\":%.4f,\"mean_sample\":%.1f",
                    workload.sets.size(), budget, approx.latency.p50_us,
                    approx.latency.p95_us, recall, fallback_rate,
                    mean_sample));
      if (recall < 0.95 - 1e-9) {
        std::printf("  FAIL: recall %.3f < 0.95 at eb=%.2f lake=%zu\n",
                    recall, budget, num_sets);
        accept = false;
      }
      if (num_sets == lake_sizes[2] && budget == kDefaultBudget) {
        largest_exact_p95 = exact.latency.p95_us;
        largest_approx_p95 = approx.latency.p95_us;
      }
    }
  }

  const bool crossover =
      largest_approx_p95 <= kAcceptP95Ratio * largest_exact_p95;
  std::printf(
      "\nacceptance: largest lake approx p95 %.0fus vs exact p95 %.0fus "
      "(need <= %.0f%%): %s\n",
      largest_approx_p95, largest_exact_p95, kAcceptP95Ratio * 100,
      crossover ? "PASS" : "FAIL");
  if (!crossover) accept = false;
  lake::bench::PrintJsonLine(
      "E22:bench_approx:acceptance",
      StrFormat("\"approx_p95_us\":%.1f,\"exact_p95_us\":%.1f,"
                "\"ratio\":%.3f,\"pass\":%s",
                largest_approx_p95, largest_exact_p95,
                largest_exact_p95 == 0
                    ? 0.0
                    : largest_approx_p95 / largest_exact_p95,
                accept ? "true" : "false"));
  return accept ? 0 : 1;
}
