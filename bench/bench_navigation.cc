// E15 — Lake organization reduces the number of tables a navigating user
// inspects vs scanning a flat list (Nargesian et al., SIGMOD 2020 / TKDE
// 2023; survey §2.6).
//
// Series reproduced: expected inspection cost of greedy navigation over
// the organization vs the flat-list baseline (n/2 on average), as the
// lake grows; plus the hit rate of greedy navigation and the branching
// trade-off.

#include <cstdio>

#include "bench_common.h"
#include "embed/table_encoder.h"
#include "lakegen/generator.h"
#include "nav/organization.h"
#include "util/timer.h"

int main() {
  lake::bench::PrintHeader(
      "E15: bench_navigation",
      "navigating an organization inspects far fewer tables than scanning "
      "a flat list");

  std::printf("%-10s %10s %14s %14s %12s %10s\n", "tables", "branching",
              "nav cost", "flat cost", "hit rate", "build ms");
  for (size_t tables_per_template : {4, 8, 16}) {
    lake::GeneratorOptions opts;
    opts.seed = 67;
    opts.num_templates = 6;
    opts.tables_per_template = tables_per_template;
    const lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();
    const size_t n = lake.catalog.num_tables();

    lake::WordEmbedding words(lake::WordEmbedding::Options{.dim = 48});
    lake::ColumnEncoder cols(&words);
    lake::TableEncoder enc(&cols, &words);

    for (size_t branching : {2, 4, 8}) {
      lake::LakeOrganization::Options oopts;
      oopts.branching = branching;
      lake::Timer build;
      const lake::LakeOrganization org(&lake.catalog, &enc, oopts);
      const double build_ms = build.ElapsedMillis();

      double nav_cost = 0;
      size_t reached = 0;
      for (lake::TableId t = 0; t < n; ++t) {
        const int cost =
            org.NavigationCost(enc.Encode(lake.catalog.table(t)), t);
        if (cost >= 0) {
          nav_cost += cost;
          ++reached;
        }
      }
      const double hit_rate = static_cast<double>(reached) / n;
      std::printf("%-10zu %10zu %14.1f %14.1f %12.2f %10.0f\n", n, branching,
                  reached ? nav_cost / reached : -1.0, n / 2.0, hit_rate,
                  build_ms);
    }
  }
  std::printf(
      "\nshape check: navigation cost grows ~logarithmically with lake\n"
      "size while the flat baseline grows linearly; larger branching\n"
      "trades per-step cost for shorter paths.\n");
  return 0;
}
