// E16 — MATE multi-attribute join: one row-level super-key index answers
// composite-key queries, and the mask filter prunes most candidates
// before exact verification (Esmailoghli et al., VLDB 2022; survey §2.4).
//
// Series reproduced: pruning power (candidates -> mask survivors ->
// verified joins) as the composite key widens, and correctness vs a
// single-attribute baseline that cannot distinguish misaligned tables.

#include <cstdio>

#include "bench_common.h"
#include "lakegen/generator.h"
#include "search/join_mate.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

lake::Column StringColumn(const std::string& name,
                          const std::vector<std::string>& vals) {
  lake::Column c(name, lake::DataType::kString);
  for (const auto& v : vals) c.Append(lake::Value(v));
  return c;
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E16: bench_mate",
      "super-key masks answer composite-key joins from one index; pruning "
      "power grows with key width");

  // Lake: one aligned table, several misaligned permutations of the same
  // attribute values, and noise tables.
  lake::Rng rng(11);
  const size_t rows = 400;
  std::vector<std::string> a(rows), b(rows), c(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = "first" + std::to_string(i);
    b[i] = "last" + std::to_string(i);
    c[i] = "city" + std::to_string(i % 40);
  }
  lake::DataLakeCatalog catalog;
  {
    lake::Table t("aligned");
    (void)t.AddColumn(StringColumn("first", a));
    (void)t.AddColumn(StringColumn("last", b));
    (void)t.AddColumn(StringColumn("city", c));
    (void)catalog.AddTable(std::move(t));
  }
  for (int s = 0; s < 4; ++s) {
    std::vector<std::string> b2 = b;
    rng.Shuffle(b2);
    lake::Table t("misaligned_" + std::to_string(s));
    (void)t.AddColumn(StringColumn("first", a));
    (void)t.AddColumn(StringColumn("last", b2));
    (void)catalog.AddTable(std::move(t)).ok();
  }
  for (int s = 0; s < 10; ++s) {
    std::vector<std::string> x(rows);
    for (size_t i = 0; i < rows; ++i) {
      x[i] = "noise" + std::to_string(s) + "_" + std::to_string(i);
    }
    lake::Table t("noise_" + std::to_string(s));
    (void)t.AddColumn(StringColumn("x", x));
    (void)catalog.AddTable(std::move(t));
  }

  lake::MateJoinSearch search(&catalog);
  std::printf("lake: %zu tables, %zu indexed rows\n\n", catalog.num_tables(),
              search.num_indexed_rows());

  // Query: a 120-row slice of the aligned table.
  lake::Table query("q");
  (void)query.AddColumn(
      StringColumn("f", {a.begin(), a.begin() + 120}));
  (void)query.AddColumn(
      StringColumn("l", {b.begin(), b.begin() + 120}));
  (void)query.AddColumn(
      StringColumn("c", {c.begin(), c.begin() + 120}));

  std::printf("%-10s %12s %14s %10s %14s %10s\n", "key width", "candidates",
              "mask survive", "verified", "top score", "ms");
  for (size_t width : {1, 2, 3}) {
    std::vector<size_t> key_cols;
    for (size_t i = 0; i < width; ++i) key_cols.push_back(i);
    lake::MateJoinSearch::QueryStats stats;
    lake::Timer timer;
    const auto results = search.Search(query, key_cols, 3, &stats).value();
    const double ms = timer.ElapsedMillis();
    std::printf("%-10zu %12zu %14zu %10zu %14.3f %10.1f\n", width,
                stats.candidate_rows, stats.superkey_survivors,
                stats.verified_rows,
                results.empty() ? 0.0 : results[0].score, ms);
    if (width >= 2 && !results.empty()) {
      // With a composite key only the aligned table joins fully.
      std::printf("           top table: %s (joinable rows: %zu)\n",
                  catalog.table(results[0].table_id).name().c_str(),
                  results[0].joinable_rows);
    }
  }
  std::printf(
      "\nshape check: at width 1 the misaligned tables tie with the\n"
      "aligned one; at width >= 2 only 'aligned' reaches score 1.0, and\n"
      "the super-key mask rejects most candidate rows before verification.\n");
  return 0;
}
