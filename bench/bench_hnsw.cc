// E5 — HNSW vs brute-force kNN on column embeddings
// (Malkov & Yashunin, TPAMI 2020; used by Starmie; survey §3 indexing).
//
// Claims reproduced: HNSW answers kNN queries orders of magnitude faster
// than a linear scan at high (>0.9) recall, and the ef_search parameter
// trades recall for speed along a smooth curve.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "index/flat_vector_index.h"
#include "index/hnsw.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

constexpr size_t kDim = 64;
constexpr size_t kN = 10000;
constexpr size_t kK = 10;

struct AnnWorkload {
  lake::HnswIndex hnsw{lake::HnswIndex::Options{kDim, lake::VectorMetric::kCosine,
                                                16, 100, 17}};
  lake::FlatVectorIndex flat{kDim};
  std::vector<lake::Vector> queries;

  AnnWorkload() {
    lake::Rng rng(41);
    auto random_vec = [&rng] {
      lake::Vector v(kDim);
      for (float& x : v) x = static_cast<float>(rng.NextGaussian());
      return v;
    };
    for (size_t i = 0; i < kN; ++i) {
      lake::Vector v = random_vec();
      (void)hnsw.Insert(i, v);
      (void)flat.Insert(i, std::move(v));
    }
    for (int q = 0; q < 50; ++q) queries.push_back(random_vec());
  }
};

AnnWorkload& Workload() {
  static AnnWorkload* w = new AnnWorkload();
  return *w;
}

double RecallAt(size_t ef) {
  AnnWorkload& w = Workload();
  double recall = 0;
  for (const auto& q : w.queries) {
    const auto exact = w.flat.Search(q, kK).value();
    const auto approx = w.hnsw.Search(q, kK, ef).value();
    std::unordered_set<uint64_t> truth;
    for (const auto& h : exact) truth.insert(h.id);
    size_t hit = 0;
    for (const auto& h : approx) {
      if (truth.count(h.id)) ++hit;
    }
    recall += static_cast<double>(hit) / kK;
  }
  return recall / w.queries.size();
}

void BM_HnswSearch(benchmark::State& state) {
  AnnWorkload& w = Workload();
  const size_t ef = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.hnsw.Search(w.queries[i++ % w.queries.size()], kK, ef));
  }
  state.counters["recall"] = RecallAt(ef);
}

void BM_FlatSearch(benchmark::State& state) {
  AnnWorkload& w = Workload();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.flat.Search(w.queries[i++ % w.queries.size()], kK));
  }
  state.counters["recall"] = 1.0;
}

BENCHMARK(BM_HnswSearch)->Arg(16)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_FlatSearch);

}  // namespace

int main(int argc, char** argv) {
  lake::bench::PrintHeader(
      "E5: bench_hnsw",
      "HNSW >> linear scan QPS at >=0.9 recall on 10k 64-d embeddings; "
      "ef_search sweeps the recall/speed curve");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("index stats: %zu nodes, %zu links, max level %d\n",
              Workload().hnsw.size(), Workload().hnsw.TotalLinks(),
              Workload().hnsw.max_level());
  return 0;
}
