// E11 — Unsupervised domain discovery recovers planted domains (D4, Ota
// et al. VLDB 2020; survey §2.2).
//
// Series reproduced: clustering columns by value co-occurrence recovers
// the generator's semantic domains; purity stays high as the containment
// threshold varies, and the discovered domain count approaches the
// planted count.

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "annotate/domain_discovery.h"
#include "lakegen/generator.h"
#include "text/normalizer.h"
#include "util/timer.h"

namespace {

/// Purity of a discovered domain: the largest fraction of its values drawn
/// from one planted domain vocabulary.
double DomainPurity(
    const lake::Domain& domain,
    const std::vector<std::unordered_set<std::string>>& planted) {
  size_t best = 0;
  for (const auto& vocab : planted) {
    size_t hits = 0;
    for (const std::string& v : domain.values) {
      if (vocab.count(v)) ++hits;
    }
    best = std::max(best, hits);
  }
  return domain.values.empty()
             ? 0.0
             : static_cast<double>(best) / domain.values.size();
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E11: bench_domain",
      "co-occurrence clustering recovers the lake's semantic domains "
      "without supervision");

  lake::GeneratorOptions opts;
  opts.seed = 23;
  opts.num_domains = 8;
  opts.num_templates = 6;
  opts.tables_per_template = 8;
  opts.values_per_domain = 200;
  const lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();

  // Planted vocabularies, reconstructed from the KB (entities per type).
  // Types are "type:<topic>"; collect values by grounding table columns.
  std::vector<std::unordered_set<std::string>> planted;
  {
    std::unordered_map<std::string, std::unordered_set<std::string>> by_type;
    lake.catalog.ForEachColumn([&](const lake::ColumnRef&,
                                   const lake::Column& col) {
      if (col.IsNumeric()) return;
      auto vote = lake.kb.ColumnType(col.DistinctStrings());
      if (!vote.ok()) return;
      for (const std::string& v : col.DistinctStrings()) {
        by_type[vote.value().type].insert(lake::NormalizeValue(v));
      }
    });
    for (auto& [type, vocab] : by_type) planted.push_back(std::move(vocab));
  }
  std::printf("planted domains realized in the lake: %zu\n\n",
              planted.size());

  std::printf("%-12s %10s %10s %12s %10s\n", "threshold", "domains",
              "purity", "big domains", "ms");
  for (double threshold : {0.3, 0.5, 0.7, 0.9}) {
    lake::DomainDiscovery::Options dopts;
    dopts.containment_threshold = threshold;
    lake::Timer timer;
    const auto domains = lake::DomainDiscovery(dopts).Discover(lake.catalog);
    const double ms = timer.ElapsedMillis();
    double purity = 0;
    size_t big = 0;
    size_t counted = 0;
    for (const auto& d : domains) {
      if (d.member_columns.size() < 3) continue;
      ++big;
      purity += DomainPurity(d, planted);
      ++counted;
    }
    std::printf("%-12.1f %10zu %10.3f %12zu %10.0f\n", threshold,
                domains.size(), counted ? purity / counted : 0.0, big, ms);
  }
  std::printf(
      "\nshape check: multi-column domains should be >90%% pure — columns\n"
      "drawing from one planted vocabulary cluster together.\n");
  return 0;
}
