// E1 — End-to-end pipeline (the survey's Figure 1): ingest a lake, build
// every component (table understanding -> indexing -> search engines),
// and answer every query type, reporting per-stage cost and a sanity
// check per query family.
//
// This is the "architecture works" experiment: one binary exercising the
// complete path a production discovery system runs.

#include <cstdio>

#include "bench_common.h"
#include "lakegen/benchmark_lakes.h"
#include "nav/linkage_graph.h"
#include "nav/organization.h"
#include "search/discovery_engine.h"
#include "util/timer.h"

int main() {
  lake::bench::PrintHeader(
      "E1: bench_pipeline",
      "the full Figure-1 architecture: ingest -> understand -> index -> "
      "query, each stage timed");

  lake::Timer total;
  lake::Timer stage;
  lake::GeneratedLake lake = lake::MakeUnionBenchmarkLake(
      /*seed=*/1, /*tables_per_template=*/8, /*distractors=*/8);
  std::printf("[%7.0f ms] generate + ingest: %zu tables, %zu columns\n",
              stage.ElapsedMillis(), lake.catalog.num_tables(),
              lake.catalog.num_columns());

  stage.Restart();
  lake::DiscoveryEngine engine(&lake.catalog, &lake.kb,
                               lake::DiscoveryEngine::Options{});
  std::printf("[%7.0f ms] build all indexes + synthesized KB (%zu facts)\n",
              stage.ElapsedMillis(), engine.kb().num_relation_instances());

  // Keyword.
  stage.Restart();
  const auto kw = engine.Keyword(lake.topic_of[0], 5);
  std::printf("[%7.2f ms] keyword '%s': %zu results, P@5=%.2f\n",
              stage.ElapsedMillis(), lake.topic_of[0].c_str(), kw.size(),
              lake::PrecisionAtK(kw, lake.unionable_groups[0], 5));

  // Joinable (every method).
  const lake::TableId qt = lake.unionable_groups[0][0];
  const auto join_query = lake.catalog.table(qt).column(0).DistinctStrings();
  const struct {
    const char* name;
    lake::JoinMethod method;
  } join_methods[] = {
      {"exact-jaccard", lake::JoinMethod::kExactJaccard},
      {"exact-containment", lake::JoinMethod::kExactContainment},
      {"lsh-ensemble", lake::JoinMethod::kLshEnsemble},
      {"josie", lake::JoinMethod::kJosie},
      {"pexeso", lake::JoinMethod::kPexeso},
  };
  for (const auto& jm : join_methods) {
    stage.Restart();
    const auto r = engine.Joinable(join_query, jm.method, 5);
    std::printf("[%7.2f ms] joinable/%-17s: %zu results%s\n",
                stage.ElapsedMillis(), jm.name,
                r.ok() ? r.value().size() : 0,
                r.ok() && !r.value().empty() &&
                        r.value()[0].column.table_id == qt
                    ? " (self at rank 1: OK)"
                    : "");
  }

  // Unionable (every method).
  const struct {
    const char* name;
    lake::UnionMethod method;
  } union_methods[] = {
      {"tus", lake::UnionMethod::kTus},
      {"santos", lake::UnionMethod::kSantos},
      {"starmie", lake::UnionMethod::kStarmie},
  };
  std::vector<lake::TableId> truth;
  for (lake::TableId t : lake.unionable_groups[0]) {
    if (t != qt) truth.push_back(t);
  }
  for (const auto& um : union_methods) {
    stage.Restart();
    const auto r = engine.Unionable(lake.catalog.table(qt), um.method, 5, qt);
    std::printf("[%7.2f ms] unionable/%-8s: P@5=%.2f\n", stage.ElapsedMillis(),
                um.name,
                r.ok() ? lake::PrecisionAtK(r.value(), truth, 5) : 0.0);
  }

  // Navigation structures.
  stage.Restart();
  lake::LinkageGraph graph(&lake.catalog);
  std::printf("[%7.0f ms] linkage graph: %zu edges\n", stage.ElapsedMillis(),
              graph.num_links());
  stage.Restart();
  lake::LakeOrganization org(&lake.catalog, &engine.table_encoder());
  std::printf("[%7.0f ms] organization: %zu leaves, root branching %zu\n",
              stage.ElapsedMillis(), org.num_leaves(),
              org.root() >= 0 ? org.nodes()[org.root()].children.size() : 0);

  std::printf("\ntotal pipeline: %.0f ms\n", total.ElapsedMillis());
  return 0;
}
