// E10 — Semantic column-type detection feature ablation: statistics-only
// vs +embeddings (Sherlock) vs +table context (Sato) (survey §2.2).
//
// Series reproduced: the accuracy ordering stats-only < Sherlock-style
// (stats+embeddings) <= Sato-style (adding table-context features), on
// held-out tables of a generated lake whose type labels come from the
// curated KB. Accuracy is swept against the number of values sampled per
// column: with plentiful values the embedding signal saturates (both
// Sherlock and Sato near-perfect); under tight sampling budgets — the
// regime query-time annotation (§3) cares about — context features keep
// accuracy up, reproducing Sato's advantage.

#include <cstdio>

#include "bench_common.h"
#include "annotate/semantic_type_detector.h"
#include "lakegen/generator.h"
#include "util/timer.h"

namespace {

/// Labels columns of the lake, splitting *within* each template group:
/// `train == true` selects the first 3/4 of each group's tables, `false`
/// the rest — the standard annotation setting where training covers the
/// lake's topics and held-out tables are new instances of them.
std::vector<lake::LabeledColumn> LabelColumns(const lake::GeneratedLake& lake,
                                              bool train) {
  std::vector<lake::LabeledColumn> out;
  for (const auto& group : lake.unionable_groups) {
    const size_t cut = group.size() * 3 / 4;
    for (size_t i = 0; i < group.size(); ++i) {
      if ((i < cut) != train) continue;
      const lake::Table& table = lake.catalog.table(group[i]);
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (table.column(c).IsNumeric()) continue;
        auto vote = lake.kb.ColumnType(table.column(c).DistinctStrings());
        if (!vote.ok()) continue;
        out.push_back(lake::LabeledColumn{&table, c, vote.value().type});
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E10: bench_annotate",
      "semantic type detection: stats < Sherlock (+embeddings) <= Sato "
      "(+context), with context mattering most under tight value budgets");

  lake::GeneratorOptions opts;
  opts.seed = 17;
  opts.num_domains = 12;
  opts.num_templates = 8;
  opts.tables_per_template = 8;
  opts.values_per_domain = 300;
  opts.homograph_count = 40;  // ambiguous values: context must disambiguate
  const lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();

  const auto train = LabelColumns(lake, /*train=*/true);
  const auto test = LabelColumns(lake, /*train=*/false);
  std::printf("train columns: %zu, test columns: %zu\n\n", train.size(),
              test.size());

  lake::WordEmbedding words(lake::WordEmbedding::Options{.dim = 48});
  std::printf("%-14s %14s %14s %14s\n", "values/col", "stats-only",
              "Sherlock", "Sato");
  for (size_t budget : {1, 2, 4, 16, 96}) {
    double acc[3] = {0, 0, 0};
    const lake::FeatureExtractor::Options configs[3] = {
        {true, false, false, budget},
        {true, true, false, budget},
        {true, true, true, budget},
    };
    for (int m = 0; m < 3; ++m) {
      lake::SemanticTypeDetector detector(&words, configs[m]);
      if (!detector.Train(train).ok()) continue;
      acc[m] = detector.Evaluate(test).value_or(0.0);
    }
    std::printf("%-14zu %14.3f %14.3f %14.3f\n", budget, acc[0], acc[1],
                acc[2]);
  }
  std::printf(
      "\nshape check: every row should order stats <= Sherlock <= Sato;\n"
      "the Sato gap is widest at 1-4 values per column, where a column in\n"
      "isolation is ambiguous but its table context is not.\n");
  return 0;
}
