// E7 — Starmie ablations: contextual vs context-free column embeddings,
// and HNSW retrieval vs exact linear scan (Starmie, Fan et al. 2022;
// survey §2.5).
//
// Claims reproduced: (1) table-context embeddings beat context-free ones
// on union P@k in a homograph-rich lake (context disambiguates); (2) HNSW
// retrieval matches the linear scan's quality at lower query latency once
// the column count is large enough.

#include <cstdio>

#include "bench_common.h"
#include "lakegen/benchmark_lakes.h"
#include "search/union_starmie.h"
#include "util/timer.h"

namespace {

double MeanPrecision(const lake::GeneratedLake& lake,
                     lake::StarmieUnionSearch& engine, size_t k,
                     double* ms_per_query) {
  double p = 0;
  size_t queries = 0;
  lake::Timer timer;
  for (size_t g = 0; g < lake.unionable_groups.size(); ++g) {
    const lake::TableId q = lake.unionable_groups[g][0];
    std::vector<lake::TableId> truth;
    for (lake::TableId t : lake.unionable_groups[g]) {
      if (t != q) truth.push_back(t);
    }
    auto results = engine.Search(lake.catalog.table(q), k, q);
    if (!results.ok()) continue;
    p += lake::PrecisionAtK(*results, truth, k);
    ++queries;
  }
  *ms_per_query = timer.ElapsedMillis() / std::max<size_t>(1, queries);
  return p / std::max<size_t>(1, queries);
}

}  // namespace

int main() {
  lake::bench::PrintHeader(
      "E7: bench_starmie",
      "contextualized column embeddings beat context-free on union P@k in "
      "a homograph-rich lake; HNSW retrieval preserves quality");

  // Only 6 domains for 6 templates: templates are forced to share column
  // domains, so a column's values alone cannot tell which *table topic* it
  // belongs to — the column-level homograph regime Starmie targets.
  lake::GeneratorOptions opts;
  opts.seed = 303;
  opts.num_domains = 6;
  opts.num_templates = 6;
  opts.tables_per_template = 8;
  opts.homograph_count = 24;  // value-level homographs on top
  lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();
  std::printf("lake: %zu tables, %zu homographs, heavy cross-template "
              "domain sharing\n\n",
              lake.catalog.num_tables(), lake.homographs.size());

  lake::WordEmbedding words(lake::WordEmbedding::Options{.dim = 64});
  lake::ColumnEncoder base(&words);
  const size_t k = 7;

  std::printf("%-38s %8s %12s\n", "configuration", "P@7", "ms/query");

  // Context-mixing sweep: alpha = 0 is the context-free ablation.
  for (double alpha : {0.0, 0.15, 0.35, 0.5}) {
    lake::ContextualColumnEncoder ctx(
        &base, lake::ContextualColumnEncoder::Options{alpha, 0.25});
    lake::StarmieUnionSearch engine(&lake.catalog, &ctx);
    double ms;
    const double p = MeanPrecision(lake, engine, k, &ms);
    char label[48];
    std::snprintf(label, sizeof(label), "%s (alpha=%.2f)",
                  alpha == 0 ? "context-free" : "contextual", alpha);
    std::printf("%-38s %8.3f %12.2f\n", label, p, ms);
  }
  // Retrieval ablation: HNSW vs exact linear scan, contextual encoder.
  {
    lake::ContextualColumnEncoder ctx(
        &base, lake::ContextualColumnEncoder::Options{0.5, 0.25});
    lake::StarmieUnionSearch::Options flat_opts;
    flat_opts.use_hnsw = false;
    lake::StarmieUnionSearch flat_engine(&lake.catalog, &ctx, flat_opts);
    double ms;
    const double p = MeanPrecision(lake, flat_engine, k, &ms);
    std::printf("%-38s %8.3f %12.2f\n", "contextual + linear-scan retrieval",
                p, ms);

    lake::StarmieUnionSearch::Options hnsw_opts;
    hnsw_opts.use_hnsw = true;
    lake::StarmieUnionSearch hnsw_engine(&lake.catalog, &ctx, hnsw_opts);
    const double p2 = MeanPrecision(lake, hnsw_engine, k, &ms);
    std::printf("%-38s %8.3f %12.2f\n", "contextual + HNSW retrieval", p2,
                ms);
  }
  std::printf(
      "\nshape check: P@7 rises with alpha when templates share domains —\n"
      "context disambiguates columns whose values alone are ambiguous.\n"
      "HNSW retrieval stays within a few points of the linear scan.\n");
  return 0;
}
