file(REMOVE_RECURSE
  "liblakefind.a"
)
