
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annotate/domain_discovery.cc" "src/CMakeFiles/lakefind.dir/annotate/domain_discovery.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/annotate/domain_discovery.cc.o.d"
  "/root/repo/src/annotate/features.cc" "src/CMakeFiles/lakefind.dir/annotate/features.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/annotate/features.cc.o.d"
  "/root/repo/src/annotate/kb_synthesis.cc" "src/CMakeFiles/lakefind.dir/annotate/kb_synthesis.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/annotate/kb_synthesis.cc.o.d"
  "/root/repo/src/annotate/knowledge_base.cc" "src/CMakeFiles/lakefind.dir/annotate/knowledge_base.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/annotate/knowledge_base.cc.o.d"
  "/root/repo/src/annotate/semantic_type_detector.cc" "src/CMakeFiles/lakefind.dir/annotate/semantic_type_detector.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/annotate/semantic_type_detector.cc.o.d"
  "/root/repo/src/annotate/softmax_model.cc" "src/CMakeFiles/lakefind.dir/annotate/softmax_model.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/annotate/softmax_model.cc.o.d"
  "/root/repo/src/apps/augmentation.cc" "src/CMakeFiles/lakefind.dir/apps/augmentation.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/apps/augmentation.cc.o.d"
  "/root/repo/src/apps/homograph.cc" "src/CMakeFiles/lakefind.dir/apps/homograph.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/apps/homograph.cc.o.d"
  "/root/repo/src/apps/infogather.cc" "src/CMakeFiles/lakefind.dir/apps/infogather.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/apps/infogather.cc.o.d"
  "/root/repo/src/apps/leva.cc" "src/CMakeFiles/lakefind.dir/apps/leva.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/apps/leva.cc.o.d"
  "/root/repo/src/apps/ridge_regression.cc" "src/CMakeFiles/lakefind.dir/apps/ridge_regression.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/apps/ridge_regression.cc.o.d"
  "/root/repo/src/apps/stitching.cc" "src/CMakeFiles/lakefind.dir/apps/stitching.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/apps/stitching.cc.o.d"
  "/root/repo/src/embed/column_encoder.cc" "src/CMakeFiles/lakefind.dir/embed/column_encoder.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/embed/column_encoder.cc.o.d"
  "/root/repo/src/embed/contextual_encoder.cc" "src/CMakeFiles/lakefind.dir/embed/contextual_encoder.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/embed/contextual_encoder.cc.o.d"
  "/root/repo/src/embed/table_encoder.cc" "src/CMakeFiles/lakefind.dir/embed/table_encoder.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/embed/table_encoder.cc.o.d"
  "/root/repo/src/embed/word_embedding.cc" "src/CMakeFiles/lakefind.dir/embed/word_embedding.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/embed/word_embedding.cc.o.d"
  "/root/repo/src/index/flat_vector_index.cc" "src/CMakeFiles/lakefind.dir/index/flat_vector_index.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/flat_vector_index.cc.o.d"
  "/root/repo/src/index/hnsw.cc" "src/CMakeFiles/lakefind.dir/index/hnsw.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/hnsw.cc.o.d"
  "/root/repo/src/index/hyperplane_lsh.cc" "src/CMakeFiles/lakefind.dir/index/hyperplane_lsh.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/hyperplane_lsh.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/lakefind.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/josie.cc" "src/CMakeFiles/lakefind.dir/index/josie.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/josie.cc.o.d"
  "/root/repo/src/index/lsh_ensemble.cc" "src/CMakeFiles/lakefind.dir/index/lsh_ensemble.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/lsh_ensemble.cc.o.d"
  "/root/repo/src/index/minhash_lsh.cc" "src/CMakeFiles/lakefind.dir/index/minhash_lsh.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/index/minhash_lsh.cc.o.d"
  "/root/repo/src/lakegen/benchmark_lakes.cc" "src/CMakeFiles/lakefind.dir/lakegen/benchmark_lakes.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/lakegen/benchmark_lakes.cc.o.d"
  "/root/repo/src/lakegen/generator.cc" "src/CMakeFiles/lakefind.dir/lakegen/generator.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/lakegen/generator.cc.o.d"
  "/root/repo/src/nav/linkage_graph.cc" "src/CMakeFiles/lakefind.dir/nav/linkage_graph.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/nav/linkage_graph.cc.o.d"
  "/root/repo/src/nav/organization.cc" "src/CMakeFiles/lakefind.dir/nav/organization.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/nav/organization.cc.o.d"
  "/root/repo/src/nav/ronin.cc" "src/CMakeFiles/lakefind.dir/nav/ronin.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/nav/ronin.cc.o.d"
  "/root/repo/src/search/bipartite_matching.cc" "src/CMakeFiles/lakefind.dir/search/bipartite_matching.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/bipartite_matching.cc.o.d"
  "/root/repo/src/search/bm25.cc" "src/CMakeFiles/lakefind.dir/search/bm25.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/bm25.cc.o.d"
  "/root/repo/src/search/discovery_engine.cc" "src/CMakeFiles/lakefind.dir/search/discovery_engine.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/discovery_engine.cc.o.d"
  "/root/repo/src/search/join_containment.cc" "src/CMakeFiles/lakefind.dir/search/join_containment.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/join_containment.cc.o.d"
  "/root/repo/src/search/join_correlated.cc" "src/CMakeFiles/lakefind.dir/search/join_correlated.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/join_correlated.cc.o.d"
  "/root/repo/src/search/join_jaccard.cc" "src/CMakeFiles/lakefind.dir/search/join_jaccard.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/join_jaccard.cc.o.d"
  "/root/repo/src/search/join_josie.cc" "src/CMakeFiles/lakefind.dir/search/join_josie.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/join_josie.cc.o.d"
  "/root/repo/src/search/join_mate.cc" "src/CMakeFiles/lakefind.dir/search/join_mate.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/join_mate.cc.o.d"
  "/root/repo/src/search/join_pexeso.cc" "src/CMakeFiles/lakefind.dir/search/join_pexeso.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/join_pexeso.cc.o.d"
  "/root/repo/src/search/keyword_search.cc" "src/CMakeFiles/lakefind.dir/search/keyword_search.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/keyword_search.cc.o.d"
  "/root/repo/src/search/query.cc" "src/CMakeFiles/lakefind.dir/search/query.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/query.cc.o.d"
  "/root/repo/src/search/union_d3l.cc" "src/CMakeFiles/lakefind.dir/search/union_d3l.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/union_d3l.cc.o.d"
  "/root/repo/src/search/union_santos.cc" "src/CMakeFiles/lakefind.dir/search/union_santos.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/union_santos.cc.o.d"
  "/root/repo/src/search/union_starmie.cc" "src/CMakeFiles/lakefind.dir/search/union_starmie.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/union_starmie.cc.o.d"
  "/root/repo/src/search/union_tus.cc" "src/CMakeFiles/lakefind.dir/search/union_tus.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/search/union_tus.cc.o.d"
  "/root/repo/src/sketch/correlation_sketch.cc" "src/CMakeFiles/lakefind.dir/sketch/correlation_sketch.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/sketch/correlation_sketch.cc.o.d"
  "/root/repo/src/sketch/hll.cc" "src/CMakeFiles/lakefind.dir/sketch/hll.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/sketch/hll.cc.o.d"
  "/root/repo/src/sketch/kmv.cc" "src/CMakeFiles/lakefind.dir/sketch/kmv.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/sketch/kmv.cc.o.d"
  "/root/repo/src/sketch/minhash.cc" "src/CMakeFiles/lakefind.dir/sketch/minhash.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/sketch/minhash.cc.o.d"
  "/root/repo/src/sketch/set_ops.cc" "src/CMakeFiles/lakefind.dir/sketch/set_ops.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/sketch/set_ops.cc.o.d"
  "/root/repo/src/sketch/simhash.cc" "src/CMakeFiles/lakefind.dir/sketch/simhash.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/sketch/simhash.cc.o.d"
  "/root/repo/src/table/catalog.cc" "src/CMakeFiles/lakefind.dir/table/catalog.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/catalog.cc.o.d"
  "/root/repo/src/table/column.cc" "src/CMakeFiles/lakefind.dir/table/column.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/column.cc.o.d"
  "/root/repo/src/table/csv.cc" "src/CMakeFiles/lakefind.dir/table/csv.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/csv.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/lakefind.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/schema.cc.o.d"
  "/root/repo/src/table/stats.cc" "src/CMakeFiles/lakefind.dir/table/stats.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/stats.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/lakefind.dir/table/table.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/table.cc.o.d"
  "/root/repo/src/table/type_infer.cc" "src/CMakeFiles/lakefind.dir/table/type_infer.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/type_infer.cc.o.d"
  "/root/repo/src/table/value.cc" "src/CMakeFiles/lakefind.dir/table/value.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/table/value.cc.o.d"
  "/root/repo/src/text/normalizer.cc" "src/CMakeFiles/lakefind.dir/text/normalizer.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/text/normalizer.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/CMakeFiles/lakefind.dir/text/qgram.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/text/qgram.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/lakefind.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/lakefind.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/lakefind.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/util/hash.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/lakefind.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/lakefind.dir/util/random.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/lakefind.dir/util/status.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/lakefind.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/lakefind.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/lakefind.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
