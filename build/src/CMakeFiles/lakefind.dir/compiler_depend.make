# Empty compiler generated dependencies file for lakefind.
# This may be replaced when dependencies are built.
