# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/index_lsh_test[1]_include.cmake")
include("/root/repo/build/tests/index_josie_test[1]_include.cmake")
include("/root/repo/build/tests/index_hnsw_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/annotate_test[1]_include.cmake")
include("/root/repo/build/tests/search_join_test[1]_include.cmake")
include("/root/repo/build/tests/search_union_test[1]_include.cmake")
include("/root/repo/build/tests/search_d3l_test[1]_include.cmake")
include("/root/repo/build/tests/search_misc_test[1]_include.cmake")
include("/root/repo/build/tests/nav_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/infogather_test[1]_include.cmake")
include("/root/repo/build/tests/lakegen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
