file(REMOVE_RECURSE
  "CMakeFiles/search_d3l_test.dir/search_d3l_test.cc.o"
  "CMakeFiles/search_d3l_test.dir/search_d3l_test.cc.o.d"
  "search_d3l_test"
  "search_d3l_test.pdb"
  "search_d3l_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_d3l_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
