# Empty compiler generated dependencies file for search_d3l_test.
# This may be replaced when dependencies are built.
