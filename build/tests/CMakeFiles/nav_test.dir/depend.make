# Empty dependencies file for nav_test.
# This may be replaced when dependencies are built.
