file(REMOVE_RECURSE
  "CMakeFiles/nav_test.dir/nav_test.cc.o"
  "CMakeFiles/nav_test.dir/nav_test.cc.o.d"
  "nav_test"
  "nav_test.pdb"
  "nav_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nav_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
