# Empty dependencies file for index_josie_test.
# This may be replaced when dependencies are built.
