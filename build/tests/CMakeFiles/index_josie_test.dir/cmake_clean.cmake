file(REMOVE_RECURSE
  "CMakeFiles/index_josie_test.dir/index_josie_test.cc.o"
  "CMakeFiles/index_josie_test.dir/index_josie_test.cc.o.d"
  "index_josie_test"
  "index_josie_test.pdb"
  "index_josie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_josie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
