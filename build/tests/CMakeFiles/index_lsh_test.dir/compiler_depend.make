# Empty compiler generated dependencies file for index_lsh_test.
# This may be replaced when dependencies are built.
