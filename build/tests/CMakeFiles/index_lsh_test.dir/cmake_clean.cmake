file(REMOVE_RECURSE
  "CMakeFiles/index_lsh_test.dir/index_lsh_test.cc.o"
  "CMakeFiles/index_lsh_test.dir/index_lsh_test.cc.o.d"
  "index_lsh_test"
  "index_lsh_test.pdb"
  "index_lsh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
