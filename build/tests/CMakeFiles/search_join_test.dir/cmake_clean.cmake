file(REMOVE_RECURSE
  "CMakeFiles/search_join_test.dir/search_join_test.cc.o"
  "CMakeFiles/search_join_test.dir/search_join_test.cc.o.d"
  "search_join_test"
  "search_join_test.pdb"
  "search_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
