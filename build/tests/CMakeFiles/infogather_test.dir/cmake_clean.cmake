file(REMOVE_RECURSE
  "CMakeFiles/infogather_test.dir/infogather_test.cc.o"
  "CMakeFiles/infogather_test.dir/infogather_test.cc.o.d"
  "infogather_test"
  "infogather_test.pdb"
  "infogather_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infogather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
