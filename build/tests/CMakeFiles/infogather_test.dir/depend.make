# Empty dependencies file for infogather_test.
# This may be replaced when dependencies are built.
