# Empty compiler generated dependencies file for search_union_test.
# This may be replaced when dependencies are built.
