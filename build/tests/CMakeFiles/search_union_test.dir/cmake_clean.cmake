file(REMOVE_RECURSE
  "CMakeFiles/search_union_test.dir/search_union_test.cc.o"
  "CMakeFiles/search_union_test.dir/search_union_test.cc.o.d"
  "search_union_test"
  "search_union_test.pdb"
  "search_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
