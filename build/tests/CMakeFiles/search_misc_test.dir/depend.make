# Empty dependencies file for search_misc_test.
# This may be replaced when dependencies are built.
