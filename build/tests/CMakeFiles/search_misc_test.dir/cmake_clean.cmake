file(REMOVE_RECURSE
  "CMakeFiles/search_misc_test.dir/search_misc_test.cc.o"
  "CMakeFiles/search_misc_test.dir/search_misc_test.cc.o.d"
  "search_misc_test"
  "search_misc_test.pdb"
  "search_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
