file(REMOVE_RECURSE
  "CMakeFiles/bench_qcr.dir/bench_qcr.cc.o"
  "CMakeFiles/bench_qcr.dir/bench_qcr.cc.o.d"
  "bench_qcr"
  "bench_qcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
