# Empty dependencies file for bench_qcr.
# This may be replaced when dependencies are built.
