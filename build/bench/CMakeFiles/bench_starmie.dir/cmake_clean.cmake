file(REMOVE_RECURSE
  "CMakeFiles/bench_starmie.dir/bench_starmie.cc.o"
  "CMakeFiles/bench_starmie.dir/bench_starmie.cc.o.d"
  "bench_starmie"
  "bench_starmie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_starmie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
