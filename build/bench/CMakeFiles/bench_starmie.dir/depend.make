# Empty dependencies file for bench_starmie.
# This may be replaced when dependencies are built.
