file(REMOVE_RECURSE
  "CMakeFiles/bench_josie.dir/bench_josie.cc.o"
  "CMakeFiles/bench_josie.dir/bench_josie.cc.o.d"
  "bench_josie"
  "bench_josie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_josie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
