# Empty dependencies file for bench_josie.
# This may be replaced when dependencies are built.
