file(REMOVE_RECURSE
  "CMakeFiles/bench_homograph.dir/bench_homograph.cc.o"
  "CMakeFiles/bench_homograph.dir/bench_homograph.cc.o.d"
  "bench_homograph"
  "bench_homograph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homograph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
