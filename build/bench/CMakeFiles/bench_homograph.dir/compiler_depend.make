# Empty compiler generated dependencies file for bench_homograph.
# This may be replaced when dependencies are built.
