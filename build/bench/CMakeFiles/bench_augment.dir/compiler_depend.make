# Empty compiler generated dependencies file for bench_augment.
# This may be replaced when dependencies are built.
