file(REMOVE_RECURSE
  "CMakeFiles/bench_augment.dir/bench_augment.cc.o"
  "CMakeFiles/bench_augment.dir/bench_augment.cc.o.d"
  "bench_augment"
  "bench_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
