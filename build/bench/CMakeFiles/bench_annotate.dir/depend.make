# Empty dependencies file for bench_annotate.
# This may be replaced when dependencies are built.
