file(REMOVE_RECURSE
  "CMakeFiles/bench_annotate.dir/bench_annotate.cc.o"
  "CMakeFiles/bench_annotate.dir/bench_annotate.cc.o.d"
  "bench_annotate"
  "bench_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
