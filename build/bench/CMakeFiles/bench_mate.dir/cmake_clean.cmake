file(REMOVE_RECURSE
  "CMakeFiles/bench_mate.dir/bench_mate.cc.o"
  "CMakeFiles/bench_mate.dir/bench_mate.cc.o.d"
  "bench_mate"
  "bench_mate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
