# Empty dependencies file for bench_mate.
# This may be replaced when dependencies are built.
