file(REMOVE_RECURSE
  "CMakeFiles/bench_hnsw.dir/bench_hnsw.cc.o"
  "CMakeFiles/bench_hnsw.dir/bench_hnsw.cc.o.d"
  "bench_hnsw"
  "bench_hnsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hnsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
