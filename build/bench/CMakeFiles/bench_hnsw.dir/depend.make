# Empty dependencies file for bench_hnsw.
# This may be replaced when dependencies are built.
