# Empty dependencies file for bench_lsh_ensemble.
# This may be replaced when dependencies are built.
