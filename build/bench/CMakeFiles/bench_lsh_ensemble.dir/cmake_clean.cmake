file(REMOVE_RECURSE
  "CMakeFiles/bench_lsh_ensemble.dir/bench_lsh_ensemble.cc.o"
  "CMakeFiles/bench_lsh_ensemble.dir/bench_lsh_ensemble.cc.o.d"
  "bench_lsh_ensemble"
  "bench_lsh_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsh_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
