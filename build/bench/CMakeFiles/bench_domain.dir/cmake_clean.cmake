file(REMOVE_RECURSE
  "CMakeFiles/bench_domain.dir/bench_domain.cc.o"
  "CMakeFiles/bench_domain.dir/bench_domain.cc.o.d"
  "bench_domain"
  "bench_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
