# Empty compiler generated dependencies file for join_discovery.
# This may be replaced when dependencies are built.
