file(REMOVE_RECURSE
  "CMakeFiles/join_discovery.dir/join_discovery.cpp.o"
  "CMakeFiles/join_discovery.dir/join_discovery.cpp.o.d"
  "join_discovery"
  "join_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
