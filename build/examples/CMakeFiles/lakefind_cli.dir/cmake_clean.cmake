file(REMOVE_RECURSE
  "CMakeFiles/lakefind_cli.dir/lakefind_cli.cpp.o"
  "CMakeFiles/lakefind_cli.dir/lakefind_cli.cpp.o.d"
  "lakefind_cli"
  "lakefind_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefind_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
