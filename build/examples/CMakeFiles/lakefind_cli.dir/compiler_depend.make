# Empty compiler generated dependencies file for lakefind_cli.
# This may be replaced when dependencies are built.
