# Empty compiler generated dependencies file for union_discovery.
# This may be replaced when dependencies are built.
