file(REMOVE_RECURSE
  "CMakeFiles/union_discovery.dir/union_discovery.cpp.o"
  "CMakeFiles/union_discovery.dir/union_discovery.cpp.o.d"
  "union_discovery"
  "union_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
