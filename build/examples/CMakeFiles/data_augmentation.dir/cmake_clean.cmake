file(REMOVE_RECURSE
  "CMakeFiles/data_augmentation.dir/data_augmentation.cpp.o"
  "CMakeFiles/data_augmentation.dir/data_augmentation.cpp.o.d"
  "data_augmentation"
  "data_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
