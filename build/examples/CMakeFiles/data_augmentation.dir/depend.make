# Empty dependencies file for data_augmentation.
# This may be replaced when dependencies are built.
