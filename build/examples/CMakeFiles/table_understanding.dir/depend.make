# Empty dependencies file for table_understanding.
# This may be replaced when dependencies are built.
