file(REMOVE_RECURSE
  "CMakeFiles/table_understanding.dir/table_understanding.cpp.o"
  "CMakeFiles/table_understanding.dir/table_understanding.cpp.o.d"
  "table_understanding"
  "table_understanding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_understanding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
